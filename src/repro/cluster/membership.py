"""Group membership, quorum and the commit agreement protocol.

    Vertica employs a distributed agreement and group membership
    protocol to coordinate actions between nodes in the cluster. [...]
    Failure to receive a message will cause a node to be ejected from
    the cluster [...] Vertica does not employ traditional two-phase
    commit: once a cluster transaction commit message is sent, nodes
    either successfully complete the commit or are ejected from the
    cluster.  A commit succeeds on the cluster if it succeeds on a
    quorum of nodes.  (section 5)

The simulated protocol delivers control messages to every *up* node;
nodes marked failed (or configured to fail the next delivery) miss the
message and are ejected.  A cluster below N/2+1 up nodes performs a
safety shutdown to avoid split brain (section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import faults
from ..errors import QuorumLossError


@dataclass
class Membership:
    """Up/down state of the cluster's nodes plus the quorum rule."""

    node_count: int
    up: set[int] = field(default_factory=set)
    #: Thin shim over the fault layer: nodes listed here drop the next
    #: broadcast, exactly like arming ``membership.delivery``/``drop``
    #: on a :class:`repro.faults.FaultPlan` (the canonical mechanism).
    #: Kept so existing tests and benches keep passing.
    drop_next_delivery: set[int] = field(default_factory=set)
    #: History of ejections, as (node, reason) pairs.
    ejections: list[tuple[int, str]] = field(default_factory=list)
    #: Nodes whose last commit delivery was injected as *delayed*: they
    #: were ejected (commit-or-eject has no retry) but the late message
    #: still reaches them, so the coordinator applies the DML there
    #: anyway — recovery truncates it back to the LGE, which is exactly
    #: why eject-don't-retry is safe.
    late_receivers: list[int] = field(default_factory=list)
    #: Consecutive missed heartbeat ticks a node survives before the
    #: failure detector ejects it (section 5.3's timeout, in simulated
    #: clock ticks).
    heartbeat_timeout: int = 3
    #: Simulated-clock tick of each node's last received heartbeat.
    last_heartbeat: dict[int, int] = field(default_factory=dict)
    #: Consecutive missed heartbeat ticks per node (reset on receipt).
    missed_heartbeats: dict[int, int] = field(default_factory=dict)
    #: Optional Data Collector (duck-typed); the cluster points this at
    #: its collector so heartbeat misses land in ``dc_node_events``.
    collector: object | None = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if not self.up:
            self.up = set(range(self.node_count))

    @property
    def quorum_size(self) -> int:
        """N/2 + 1 nodes needed to stay live."""
        return self.node_count // 2 + 1

    def has_quorum(self) -> bool:
        """Whether enough nodes are up to avoid split brain."""
        return len(self.up) >= self.quorum_size

    def require_quorum(self) -> None:
        """Raise :class:`QuorumLossError` on quorum loss (safety
        shutdown)."""
        if not self.has_quorum():
            raise QuorumLossError(
                f"only {len(self.up)}/{self.node_count} nodes up; "
                f"quorum is {self.quorum_size}"
            )

    def is_up(self, node: int) -> bool:
        """Whether ``node`` is currently a cluster member."""
        return node in self.up

    def eject(self, node: int, reason: str) -> None:
        """Remove a node from the cluster."""
        if node in self.up:
            self.up.discard(node)
            self.ejections.append((node, reason))

    def rejoin(self, node: int) -> None:
        """Re-admit a recovered node; its heartbeat slate starts clean."""
        self.up.add(node)
        self.missed_heartbeats.pop(node, None)
        self.last_heartbeat.pop(node, None)

    # -- the deterministic failure detector -----------------------------

    def heartbeat_round(self, now: int) -> list[tuple[int, str]]:
        """One failure-detector tick at simulated time ``now``.

        Every up node attempts to deliver a heartbeat; delivery
        consults the fault layer (point ``membership.heartbeat``), so
        chaos plans can drop or delay heartbeats per node.  Both
        verdicts count as a missed tick — a delayed heartbeat arrives
        after the detector already sampled, exactly like a delayed
        commit delivery misses the agreement window.  A node missing
        :attr:`heartbeat_timeout` consecutive ticks is ejected, the
        same one-way door as commit-or-eject.  Returns the newly
        ejected nodes as (node, reason) pairs; the caller (the cluster
        supervisor) freezes their epoch/WOS state.
        """
        expired: list[tuple[int, str]] = []
        for node in sorted(self.up):
            verdict = faults.inject("membership.heartbeat", node=node)
            if verdict in ("drop", "delay"):
                missed = self.missed_heartbeats.get(node, 0) + 1
                self.missed_heartbeats[node] = missed
                if self.collector is not None:
                    self.collector.record(
                        "node_events",
                        "heartbeat_miss",
                        node_index=node,
                        node_name=f"node{node:02d}",
                        attempt=missed,
                        detail=f"verdict={verdict} missed={missed}",
                    )
                if missed >= self.heartbeat_timeout:
                    reason = (
                        f"missed {missed} consecutive heartbeats "
                        f"(timeout {self.heartbeat_timeout})"
                    )
                    self.eject(node, reason)
                    expired.append((node, reason))
            else:
                self.last_heartbeat[node] = now
                self.missed_heartbeats[node] = 0
        return expired

    def heartbeat_age(self, node: int, now: int) -> int:
        """Ticks since ``node`` last heartbeated (``now`` if never)."""
        last = self.last_heartbeat.get(node)
        return now if last is None else max(now - last, 0)

    def broadcast_commit(self) -> list[int]:
        """Deliver a commit message to every up node.

        Per-node delivery consults the fault layer (point
        ``membership.delivery``): a *dropped* delivery ejects the node;
        a *delayed* one also ejects it — the agreement protocol has no
        2PC retry (section 5) — but records it in ``late_receivers``
        so the coordinator can model the late message arriving anyway.
        Returns the nodes that received and applied the commit in
        time.  Raises if the survivors fall below quorum.
        """
        receivers = []
        self.late_receivers = []
        for node in sorted(self.up):
            verdict = faults.inject("membership.delivery", node=node)
            if node in self.drop_next_delivery:
                self.drop_next_delivery.discard(node)
                verdict = "drop"
            if verdict == "drop":
                self.eject(node, "missed commit delivery")
            elif verdict == "delay":
                self.eject(node, "delayed commit delivery past timeout")
                self.late_receivers.append(node)
            else:
                receivers.append(node)
        self.require_quorum()
        return receivers

    def up_nodes(self) -> list[int]:
        """Sorted list of up node indexes."""
        return sorted(self.up)

    def down_nodes(self) -> list[int]:
        """Sorted list of down node indexes."""
        return sorted(set(range(self.node_count)) - self.up)
