"""Backup and restore (section 5.2).

    A backup operation takes a snapshot of the database catalog and
    creates hard-links for each Vertica data file on the file system.
    The hard-links ensure that the data files are not removed while
    the backup image is copied off the cluster [...] The backup
    mechanism supports both full and incremental backup.

Because ROS containers are immutable, hard links are a consistent
snapshot for free: the tuple mover may retire a container afterwards,
but the linked inode keeps the backup's view alive.  Incremental
backups link only containers absent from the previous image.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field

from ..errors import ClusterError
from ..txn.epochs import INITIAL_EPOCH
from .cluster import Cluster


@dataclass
class BackupImage:
    """Manifest of one backup."""

    path: str
    epoch: int
    #: (node, projection, container dir name) triples in the image.
    entries: list[tuple[int, str, str]] = field(default_factory=list)
    #: image this one is incremental over (path), if any.
    base_image: str | None = None


def _link_tree(source: str, target: str) -> None:
    """Hard-link every file of ``source`` into ``target`` (fall back to
    copy across filesystems)."""
    os.makedirs(target, exist_ok=True)
    for entry in os.listdir(source):
        source_path = os.path.join(source, entry)
        target_path = os.path.join(target, entry)
        try:
            os.link(source_path, target_path)
        except OSError:
            shutil.copy2(source_path, target_path)


def create_backup(
    cluster: Cluster, backup_dir: str, base: BackupImage | None = None
) -> BackupImage:
    """Snapshot the cluster's ROS state into ``backup_dir``.

    Pass ``base`` for an incremental backup: containers already present
    in the base image are recorded but not re-linked.
    """
    os.makedirs(backup_dir, exist_ok=True)
    image = BackupImage(
        path=backup_dir,
        epoch=cluster.epochs.latest_queryable_epoch,
        base_image=base.path if base else None,
    )
    already = set(base.entries) if base else set()
    for node in cluster.nodes:
        for projection_name in node.manager.projection_names():
            state = node.manager.storage(projection_name)
            for container in state.containers.values():
                entry = (
                    node.index,
                    projection_name,
                    os.path.basename(container.path),
                )
                image.entries.append(entry)
                if entry in already:
                    continue
                target = os.path.join(
                    backup_dir, f"node{node.index:02d}", projection_name, entry[2]
                )
                _link_tree(container.path, target)
    manifest = {
        "epoch": image.epoch,
        "base_image": image.base_image,
        "entries": image.entries,
        "tables": sorted(cluster.catalog.tables),
        "projections": sorted(cluster.catalog.families),
    }
    with open(os.path.join(backup_dir, "manifest.json"), "w") as handle:
        json.dump(manifest, handle)
    return image


def load_manifest(backup_dir: str) -> dict:
    """Read a backup's manifest."""
    with open(os.path.join(backup_dir, "manifest.json")) as handle:
        return json.load(handle)


def _validate_manifest(cluster: Cluster, image: BackupImage) -> None:
    """Check the on-disk manifest against the live catalog before any
    bytes move: restoring into a cluster that lacks the backed-up
    tables or projections would silently orphan their data."""
    manifest_path = os.path.join(image.path, "manifest.json")
    if not os.path.isfile(manifest_path):
        raise ClusterError(f"backup image {image.path} has no manifest.json")
    manifest = load_manifest(image.path)
    missing_tables = sorted(
        set(manifest.get("tables", ())) - set(cluster.catalog.tables)
    )
    if missing_tables:
        raise ClusterError(
            "backup references tables missing from the catalog: "
            + ", ".join(missing_tables)
        )
    missing_projections = sorted(
        set(manifest.get("projections", ())) - set(cluster.catalog.families)
    )
    if missing_projections:
        raise ClusterError(
            "backup references projections missing from the catalog: "
            + ", ".join(missing_projections)
        )
    _validate_image_epoch(cluster, manifest.get("epoch", image.epoch))


def _validate_image_epoch(cluster: Cluster, image_epoch: int) -> None:
    """Refuse images outside the cluster's epoch window.

    An image older than the Ancient History Mark predates the oldest
    epoch the cluster still reasons about — its containers would
    resurrect rows whose delete history has been purged.  An image from
    the *future* (newer than the latest queryable epoch) can only come
    from a different timeline — restoring it would make rows visible at
    epochs this cluster has not committed yet.  A pristine cluster (no
    commits) has no timeline and instead adopts the image's epoch.
    """
    if image_epoch < cluster.epochs.ahm:
        raise ClusterError(
            f"backup image epoch {image_epoch} predates the Ancient "
            f"History Mark {cluster.epochs.ahm}; its history has been "
            "purged and the image can no longer be reconciled"
        )
    pristine = cluster.epochs.current_epoch == INITIAL_EPOCH
    latest = cluster.epochs.latest_queryable_epoch
    if not pristine and image_epoch > latest:
        raise ClusterError(
            f"backup image epoch {image_epoch} is from the future: the "
            f"cluster's latest queryable epoch is {latest}; refusing to "
            "restore an image from a different timeline"
        )


def restore_backup(cluster: Cluster, image: BackupImage) -> int:
    """Restore ROS containers from a backup image into an (empty-state)
    cluster with the same catalog.  Returns containers restored.

    Each container is *adopted* through the storage manager's public
    API: it gets a fresh container id (rewritten in its meta.json) and
    full checksum verification on the way in, so a bit-rotted backup is
    rejected instead of restored.
    """
    _validate_manifest(cluster, image)
    manifest_epoch = load_manifest(image.path).get("epoch", image.epoch)
    pristine = cluster.epochs.current_epoch == INITIAL_EPOCH
    if cluster.journal is not None and not pristine:
        # The restored containers carry epochs the journal knows
        # nothing about.  Drain every WOS first so the pre-restore
        # state is fully on disk, then record the restore — at cold
        # start the record raises the durable floor to the image epoch
        # and scavenge readopts the restored containers from disk.
        if cluster.membership.down_nodes():
            raise ClusterError(
                "restore with an active journal requires all nodes up "
                "(the durable floor must cover the pre-restore state)"
            )
        cluster.run_tuple_movers(advance_ahm=False)
    restored = 0
    for node_index, projection_name, container_dir in image.entries:
        if node_index >= cluster.node_count:
            raise ClusterError("backup has more nodes than the cluster")
        source = os.path.join(
            image.path, f"node{node_index:02d}", projection_name, container_dir
        )
        if not os.path.isdir(source) and image.base_image:
            source = os.path.join(
                image.base_image,
                f"node{node_index:02d}",
                projection_name,
                container_dir,
            )
        manager = cluster.nodes[node_index].manager
        manager.adopt_container(projection_name, source)
        restored += 1
    if pristine and manifest_epoch >= cluster.epochs.current_epoch:
        # A pristine cluster adopts the image's timeline so the
        # restored rows (stamped with the image's epochs) are visible.
        cluster.epochs.current_epoch = manifest_epoch + 1
    if cluster.journal is not None:
        cluster.journal.log_restore(
            epoch=manifest_epoch,
            current_epoch=cluster.epochs.current_epoch,
            entries=restored,
        )
    return restored
