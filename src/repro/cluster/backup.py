"""Backup and restore (section 5.2).

    A backup operation takes a snapshot of the database catalog and
    creates hard-links for each Vertica data file on the file system.
    The hard-links ensure that the data files are not removed while
    the backup image is copied off the cluster [...] The backup
    mechanism supports both full and incremental backup.

Because ROS containers are immutable, hard links are a consistent
snapshot for free: the tuple mover may retire a container afterwards,
but the linked inode keeps the backup's view alive.  Incremental
backups link only containers absent from the previous image.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field

from ..errors import ClusterError
from .cluster import Cluster


@dataclass
class BackupImage:
    """Manifest of one backup."""

    path: str
    epoch: int
    #: (node, projection, container dir name) triples in the image.
    entries: list[tuple[int, str, str]] = field(default_factory=list)
    #: image this one is incremental over (path), if any.
    base_image: str | None = None


def _link_tree(source: str, target: str) -> None:
    """Hard-link every file of ``source`` into ``target`` (fall back to
    copy across filesystems)."""
    os.makedirs(target, exist_ok=True)
    for entry in os.listdir(source):
        source_path = os.path.join(source, entry)
        target_path = os.path.join(target, entry)
        try:
            os.link(source_path, target_path)
        except OSError:
            shutil.copy2(source_path, target_path)


def create_backup(
    cluster: Cluster, backup_dir: str, base: BackupImage | None = None
) -> BackupImage:
    """Snapshot the cluster's ROS state into ``backup_dir``.

    Pass ``base`` for an incremental backup: containers already present
    in the base image are recorded but not re-linked.
    """
    os.makedirs(backup_dir, exist_ok=True)
    image = BackupImage(
        path=backup_dir,
        epoch=cluster.epochs.latest_queryable_epoch,
        base_image=base.path if base else None,
    )
    already = set(base.entries) if base else set()
    for node in cluster.nodes:
        for projection_name in node.manager.projection_names():
            state = node.manager.storage(projection_name)
            for container in state.containers.values():
                entry = (
                    node.index,
                    projection_name,
                    os.path.basename(container.path),
                )
                image.entries.append(entry)
                if entry in already:
                    continue
                target = os.path.join(
                    backup_dir, f"node{node.index:02d}", projection_name, entry[2]
                )
                _link_tree(container.path, target)
    manifest = {
        "epoch": image.epoch,
        "base_image": image.base_image,
        "entries": image.entries,
        "tables": sorted(cluster.catalog.tables),
        "projections": sorted(cluster.catalog.families),
    }
    with open(os.path.join(backup_dir, "manifest.json"), "w") as handle:
        json.dump(manifest, handle)
    return image


def load_manifest(backup_dir: str) -> dict:
    """Read a backup's manifest."""
    with open(os.path.join(backup_dir, "manifest.json")) as handle:
        return json.load(handle)


def restore_backup(cluster: Cluster, image: BackupImage) -> int:
    """Restore ROS containers from a backup image into an (empty-state)
    cluster with the same catalog.  Returns containers restored."""
    from ..storage.ros import ROSContainer

    restored = 0
    for node_index, projection_name, container_dir in image.entries:
        if node_index >= cluster.node_count:
            raise ClusterError("backup has more nodes than the cluster")
        source = os.path.join(
            image.path, f"node{node_index:02d}", projection_name, container_dir
        )
        if not os.path.isdir(source) and image.base_image:
            source = os.path.join(
                image.base_image,
                f"node{node_index:02d}",
                projection_name,
                container_dir,
            )
        manager = cluster.nodes[node_index].manager
        state = manager.storage(projection_name)
        new_id = manager._next_container_id
        manager._next_container_id += 1
        target = os.path.join(manager.root, projection_name, f"ros_{new_id:06d}")
        shutil.copytree(source, target)
        container = ROSContainer.load(target)
        container.meta.container_id = new_id
        state.containers[new_id] = container
        restored += 1
    return restored
