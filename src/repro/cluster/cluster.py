"""The simulated shared-nothing cluster.

Owns the catalog, the epoch clock, the lock manager, group membership
and the per-node storage.  This is the layer where the paper's
distributed behaviours live:

* projection routing — replicated vs ring-segmented placement, buddy
  copies at offset rings (sections 3.6, 5.2);
* the commit protocol — broadcast, commit-or-eject, quorum
  (section 5);
* prejoin projection maintenance during load (section 3.3);
* buddy failover for reads and the K-safety / availability rules
  (sections 5.2-5.3);
* per-node autonomous tuple movers and LGE bookkeeping (section 4).
"""

from __future__ import annotations

import os
from collections import Counter
from typing import TYPE_CHECKING

from .. import faults
from ..dc import DataCollector
from ..core.catalog import Catalog
from ..core.schema import TableDefinition
from ..errors import (
    DataUnavailableError,
    InjectedFaultError,
    KSafetyError,
    SqlAnalysisError,
    UnknownObjectError,
)
from ..monitor import METRICS, FailoverLog
from ..storage import ScavengeReport, StorageManager
from ..projections import (
    HashSegmentation,
    PrejoinSpec,
    ProjectionDefinition,
    ProjectionFamily,
    Replicated,
    make_buddy,
    super_projection,
)
from ..trace import TRACER
from ..tuple_mover import MergePolicy
from ..txn import EpochManager, LockManager
from .clock import SimulatedClock
from .membership import Membership
from .node import ClusterNode

if TYPE_CHECKING:
    from ..durability import Journal


class Cluster:
    """A K-safe, shared-nothing analytic database cluster (simulated)."""

    def __init__(
        self,
        root: str,
        node_count: int = 3,
        k_safety: int = 1,
        segments_per_node: int = 3,
        wos_capacity: int = 65536,
        merge_policy: MergePolicy | None = None,
        journal: "Journal | None" = None,
        dc_persist: bool = False,
        dc_fresh: bool = False,
        dc_retention=None,
    ):
        if k_safety >= node_count and node_count > 1:
            raise KSafetyError(
                f"k_safety={k_safety} requires more than {node_count} nodes"
            )
        if node_count == 1:
            k_safety = 0
        self.root = root
        self.node_count = node_count
        self.k_safety = k_safety
        self.catalog = Catalog()
        #: Optional write-ahead journal.  When set, catalog DDL and
        #: committed DML are journaled *before* the in-memory apply so
        #: :meth:`repro.core.database.Database.open` can replay them
        #: after a crash.  ``None`` for throwaway/test clusters.
        self.journal = journal
        self.epochs = EpochManager()
        self.locks = LockManager()
        self.membership = Membership(node_count)
        self.nodes = [
            ClusterNode.create(
                root,
                index,
                node_count,
                segments_per_node=segments_per_node,
                wos_capacity=wos_capacity,
                merge_policy=merge_policy,
            )
            for index in range(node_count)
        ]
        #: Simulated monotonic time every cluster timing runs off
        #: (heartbeats, recovery backoff) — never the wall clock, so
        #: chaos runs stay seed-reproducible (replint R8 enforces it).
        self.clock = SimulatedClock()
        #: The Data Collector: every operationally interesting event
        #: (requests, admissions, lock waits, node events, tuple-mover
        #: cycles, errors) lands in its retention-bounded rings, served
        #: back by the ``v_monitor.dc_*`` tables.  Persistence is on for
        #: durable databases so history survives ``Database.open()``.
        self.dc = DataCollector(
            os.path.join(root, "dc"),
            clock=self.clock,
            persist=dc_persist,
            fresh=dc_fresh,
            retention=dc_retention,
        )
        # the lower layers emit through duck-typed ``collector``
        # attributes so txn/tuple_mover never import repro.dc.
        self.locks.collector = self.dc
        self.membership.collector = self.dc
        for node in self.nodes:
            node.mover.collector = self.dc
        #: Availability incident log served by
        #: ``v_monitor.failover_events``; every recorded incident is
        #: mirrored into the collector's ``node_events`` component.
        self.failover_log = FailoverLog(sink=self._dc_failover_event)
        from .supervisor import ClusterSupervisor

        #: The auto-recovery supervisor; :meth:`ClusterSupervisor.tick`
        #: detects failures and drives down nodes back to currency.
        self.supervisor = ClusterSupervisor(self)

    def _dc_failover_event(self, event) -> None:
        """FailoverLog sink: mirror availability incidents into the
        Data Collector and flush — node deaths and recovery transitions
        are rare and precious, so they go durable immediately."""
        name = f"node{event.node_index:02d}" if event.node_index >= 0 else "-"
        self.dc.record(
            "node_events",
            event.kind,
            node_index=event.node_index,
            node_name=name,
            attempt=event.attempt,
            detail=event.detail,
        )
        self.dc.flush()

    # -- DDL ---------------------------------------------------------------

    def create_table(
        self,
        table: TableDefinition,
        sort_order: list[str] | None = None,
        segmentation=None,
        encodings: dict[str, str] | None = None,
    ) -> ProjectionFamily:
        """Register a table and build its super projection family
        (primary + K buddies), with storage on every node."""
        self.catalog.add_table(table)
        if self.journal is not None:
            from ..durability import encode_table

            self.journal.log_ddl("create_table", {"table": encode_table(table)})
        primary = super_projection(
            table,
            sort_order=sort_order,
            segmentation=segmentation,
            encodings=encodings,
        )
        return self.add_projection_family(primary, populate=False)

    def add_projection_family(
        self, primary: ProjectionDefinition, populate: bool = True
    ) -> ProjectionFamily:
        """Register a projection (creating buddies per K-safety) and,
        when ``populate`` is set, refresh it from existing table data."""
        table = self.catalog.table(primary.anchor_table)
        buddies = []
        if not primary.segmentation.replicated and self.k_safety > 0:
            buddies = [
                make_buddy(primary, offset)
                for offset in range(1, self.k_safety + 1)
            ]
        family = ProjectionFamily(primary, buddies)
        self.catalog.add_family(family)
        if self.journal is not None:
            from ..durability import encode_family

            self.journal.log_ddl("add_family", {"family": encode_family(family)})
        for node in self.nodes:
            for copy in family.all_copies:
                node.manager.register_projection(copy, table)
        if populate:
            from .recovery import refresh_projection

            refresh_projection(self, family)
        return family

    def drop_table(self, name: str) -> None:
        """Drop a table and all of its projections' storage."""
        removed = self.catalog.drop_table(name)
        if self.journal is not None:
            self.journal.log_ddl("drop_table", {"name": name})
        for node in self.nodes:
            for projection in removed:
                node.manager.drop_projection(projection.name)

    # -- routing --------------------------------------------------------

    def projection_rows(
        self, projection: ProjectionDefinition, table_rows: list[dict], epoch: int
    ) -> list[dict]:
        """Shape table rows for one projection (column subset; prejoin
        expansion for prejoin projections)."""
        if projection.prejoin is None:
            names = projection.column_names
            return [{name: row[name] for name in names} for row in table_rows]
        return self._expand_prejoin(projection, table_rows, epoch)

    def _expand_prejoin(
        self, projection: ProjectionDefinition, table_rows: list[dict], epoch: int
    ) -> list[dict]:
        spec: PrejoinSpec = projection.prejoin
        dimension_rows = self.read_table(spec.dimension_table, epoch)
        index: dict = {}
        for dimension_row in dimension_rows:
            index[dimension_row[spec.dimension_key]] = dimension_row
        carried = spec.carried_columns
        own_names = [
            name for name in projection.column_names if name not in carried.values()
        ]
        out = []
        for row in table_rows:
            dimension_row = index.get(row[spec.anchor_key])
            if dimension_row is None:
                raise SqlAnalysisError(
                    f"prejoin load: no {spec.dimension_table} row with "
                    f"{spec.dimension_key}={row[spec.anchor_key]!r}"
                )
            shaped = {name: row[name] for name in own_names}
            for source, target in carried.items():
                shaped[target] = dimension_row[source]
            out.append(shaped)
        return out

    def route_rows(
        self, projection: ProjectionDefinition, rows: list[dict]
    ) -> dict[int, list[dict]]:
        """node index -> rows that belong on it under the projection's
        segmentation.  Replicated projections map every row to every
        node (down nodes included; they catch up via recovery)."""
        if projection.segmentation.replicated:
            return {node: list(rows) for node in range(self.node_count)}
        routed: dict[int, list[dict]] = {}
        for row in rows:
            node = projection.segmentation.node_for_row(row, self.node_count)
            routed.setdefault(node, []).append(row)
        return routed

    # -- DML application ------------------------------------------------

    def apply_insert(
        self,
        table_name: str,
        rows: list[dict],
        epoch: int,
        direct_to_ros: bool = False,
        only_nodes: set[int] | None = None,
    ) -> None:
        """Store committed rows into every projection of the table on
        the given (up) nodes."""
        table = self.catalog.table(table_name)
        validated = [table.validate_row(row) for row in rows]
        targets = (
            set(self.membership.up) if only_nodes is None else set(only_nodes)
        )
        for family in self.catalog.families_for_table(table_name):
            for copy in family.all_copies:
                shaped = self.projection_rows(copy, validated, epoch)
                for node_index, node_rows in self.route_rows(copy, shaped).items():
                    if not self._deliverable(node_index, targets):
                        continue
                    try:
                        self.nodes[node_index].manager.insert(
                            copy.name, node_rows, epoch, direct_to_ros
                        )
                    except InjectedFaultError:
                        # one node dying mid-apply does not abort the
                        # cluster commit: it is ejected and the commit
                        # proceeds on the survivors (section 5).
                        self._node_crashed(
                            node_index, "crashed applying committed insert"
                        )

    def _materialize_delete(
        self, table_name: str, predicate, snapshot_epoch: int
    ) -> list[dict]:
        """The full table rows ``predicate`` selects at the snapshot.

        Evaluated once, coordinator-side, against the super projection;
        the journal records this multiset (not the predicate, which is
        an arbitrary callable) so replay can re-delete the same rows.
        """
        super_family = self.catalog.super_projection_for(table_name)
        deleted_rows: list[dict] = []
        for node_index, projection_name in self.scan_sources(super_family):
            for row in self.nodes[node_index].manager.read_visible_rows(
                projection_name, snapshot_epoch
            ):
                if predicate(row):
                    deleted_rows.append(row)
        return deleted_rows

    def apply_delete(
        self,
        table_name: str,
        predicate,
        commit_epoch: int,
        snapshot_epoch: int,
        only_nodes: set[int] | None = None,
        deleted_rows: list[dict] | None = None,
    ) -> int:
        """Mark matching rows deleted in every projection of the table.

        The predicate runs against full table rows (from the super
        projection); narrow projections delete by multiset-consistent
        value matching so every projection keeps answering queries with
        the same row multiset.  ``deleted_rows`` lets the commit path
        pass the multiset it already materialized for the journal.
        """
        table = self.catalog.table(table_name)
        targets = (
            set(self.membership.up) if only_nodes is None else set(only_nodes)
        )
        if deleted_rows is None:
            deleted_rows = self._materialize_delete(
                table_name, predicate, snapshot_epoch
            )
        for family in self.catalog.families_for_table(table_name):
            for copy in family.all_copies:
                self._delete_in_projection(
                    copy, table, predicate, deleted_rows,
                    commit_epoch, snapshot_epoch, targets,
                )
        return len(deleted_rows)

    def _delete_in_projection(
        self, copy, table, predicate, deleted_rows,
        commit_epoch, snapshot_epoch, targets,
    ) -> None:
        covered = set(copy.column_names) >= set(table.column_names)
        if covered and copy.prejoin is None:
            for node_index in sorted(targets):
                if not self._deliverable(node_index, targets):
                    continue
                try:
                    self.nodes[node_index].manager.delete_where(
                        copy.name, predicate, commit_epoch, snapshot_epoch
                    )
                except InjectedFaultError:
                    self._node_crashed(
                        node_index, "crashed applying committed delete"
                    )
            return
        # narrow / prejoin projection: delete by multiset matching
        names = [
            name
            for name in copy.column_names
            if copy.prejoin is None or name not in copy.prejoin.carried_columns.values()
        ]
        names = [name for name in names if table.has_column(name)]
        budget = Counter(
            tuple(repr(row[name]) for name in names) for row in deleted_rows
        )
        for node_index in sorted(targets):
            if not self._deliverable(node_index, targets):
                continue
            remaining = Counter(budget)

            def take(row, remaining=remaining):
                key = tuple(repr(row[name]) for name in names)
                if remaining[key] > 0:
                    remaining[key] -= 1
                    return True
                return False

            try:
                self.nodes[node_index].manager.delete_where(
                    copy.name, take, commit_epoch, snapshot_epoch
                )
            except InjectedFaultError:
                self._node_crashed(
                    node_index, "crashed applying committed delete"
                )

    # -- reads -----------------------------------------------------------

    def scan_sources(
        self, family: ProjectionFamily
    ) -> list[tuple[int, str]]:
        """Choose (node, projection copy) pairs that together cover the
        family's full row set using only up nodes.

        With the primary copy's host down, the buddy copy hosted at
        ``(node + offset) % N`` serves that ring segment (section 5.2).
        Raises :class:`DataUnavailableError` when no copy of some
        segment is reachable — the condition that shuts a real cluster
        down.
        """
        primary = family.primary
        if primary.segmentation.replicated:
            up = self.membership.up_nodes()
            if not up:
                raise DataUnavailableError(
                    f"no node up for replicated projection family "
                    f"{primary.name}"
                )
            return [(up[0], primary.name)]
        sources: list[tuple[int, str]] = []
        for base in range(self.node_count):
            chosen = None
            for copy in family.all_copies:
                offset = getattr(copy.segmentation, "offset", 0)
                host = (base + offset) % self.node_count
                if self.membership.is_up(host):
                    chosen = (host, copy.name)
                    break
            if chosen is None:
                raise DataUnavailableError(
                    f"segment {base} of projection family {primary.name} "
                    f"(table {primary.anchor_table}) has no reachable "
                    "copy; cluster would shut down"
                )
            sources.append(chosen)
        return sources

    def require_family_available(self, family: ProjectionFamily) -> None:
        """Fail fast with :class:`DataUnavailableError` (naming the
        segment and family) when some segment of ``family`` has no
        reachable copy.  The executor calls this for every scanned
        family before running a query, so an unavailable table never
        returns partial rows from whichever copies happen to resolve."""
        self.scan_sources(family)

    def read_table(self, table_name: str, epoch: int) -> list[dict]:
        """All visible rows of a table at ``epoch`` (coordinator-side
        convenience used by prejoin loads, refresh and tests)."""
        family = self.catalog.super_projection_for(table_name)
        rows: list[dict] = []
        for node_index, projection_name in self.scan_sources(family):
            rows.extend(
                self.nodes[node_index].manager.read_visible_rows(
                    projection_name, epoch
                )
            )
        return rows

    def collect_history(self, family: ProjectionFamily):
        """(row, insert_epoch, delete_epoch) records covering the whole
        family from up nodes — the replay log for refresh/recovery."""
        records = []
        for node_index, projection_name in self.scan_sources(family):
            records.extend(
                self.nodes[node_index].manager.dump_rows(projection_name)
            )
        return records

    # -- commit protocol ----------------------------------------------------

    def commit_dml(
        self,
        inserts: dict[str, list[dict]],
        deletes: list[tuple[str, object]],
        snapshot_epoch: int,
        direct_to_ros: bool = False,
    ) -> int:
        """Run the cluster commit: broadcast, apply on receivers, eject
        nodes that missed the message, advance the epoch.

        Returns the commit epoch.  ``deletes`` is a list of
        (table, predicate) pairs.
        """
        receivers = set(self.membership.broadcast_commit())
        # a *delayed* delivery ejects the node (no 2PC retry) but the
        # late message still lands there; recovery truncates it back to
        # the LGE, which is why eject-don't-retry stays consistent.
        appliers = receivers | set(self.membership.late_receivers)
        for node in self.membership.down_nodes():
            self.epochs.node_down(node)
        commit_epoch = self.epochs.advance_for_commit()
        materialized = [
            (
                table_name,
                predicate,
                self._materialize_delete(table_name, predicate, snapshot_epoch),
            )
            for table_name, predicate in deletes
        ]
        if self.journal is not None:
            # Write-ahead: the commit record is durable before any
            # in-memory apply, so a crash anywhere past this line is
            # recovered by replaying the journal at cold start.
            self.journal.log_commit(
                epoch=commit_epoch,
                snapshot_epoch=snapshot_epoch,
                inserts=inserts,
                deletes=[(name, rows) for name, _, rows in materialized],
                direct_to_ros=direct_to_ros,
            )
            faults.inject("journal.commit.apply")
        for table_name, rows in inserts.items():
            self.apply_insert(
                table_name, rows, commit_epoch,
                direct_to_ros=direct_to_ros, only_nodes=appliers,
            )
        for table_name, predicate, rows in materialized:
            self.apply_delete(
                table_name, predicate, commit_epoch, snapshot_epoch,
                only_nodes=appliers, deleted_rows=rows,
            )
        self.membership.late_receivers = []
        METRICS.inc("cluster.commits")
        METRICS.inc(
            "cluster.committed_rows", sum(len(rows) for rows in inserts.values())
        )
        METRICS.set_gauge("cluster.current_epoch", commit_epoch)
        return commit_epoch

    # -- failures ------------------------------------------------------------

    def _deliverable(self, node_index: int, targets: set[int]) -> bool:
        """Whether committed DML should be applied on ``node_index``.

        Normally the node must be a target and up; a node on the
        ``late_receivers`` list was ejected for a *delayed* delivery but
        the late message still reaches it, so the DML lands there too —
        recovery truncates it back to the LGE later.
        """
        if node_index not in targets:
            return False
        return (
            self.membership.is_up(node_index)
            or node_index in self.membership.late_receivers
        )

    def _eject_and_freeze(self, node_index: int, reason: str) -> None:
        """Bookkeeping shared by every node-death path: eject the node,
        freeze its epoch accounting (AHM holds) and drop its volatile
        WOS state.  Never checks quorum — callers on the *write* path
        add :meth:`Membership.require_quorum`; read paths keep
        answering below quorum as long as data is available."""
        self.membership.eject(node_index, reason)
        self.epochs.node_down(node_index)
        manager = self.nodes[node_index].manager
        for projection_name in manager.projection_names():
            state = manager.storage(projection_name)
            state.wos.drain()
            state.wos_deletes.clear()
        if node_index in self.membership.late_receivers:
            self.membership.late_receivers.remove(node_index)

    def _node_crashed(self, node_index: int, reason: str) -> None:
        """Handle a node dying mid-*write* (injected or simulated):
        eject it and raise :class:`QuorumLossError` if the survivors
        cannot form a quorum.  Commit-or-eject means the cluster keeps
        going as long as quorum holds."""
        self._eject_and_freeze(node_index, reason)
        self.membership.require_quorum()

    def note_node_failure(self, node_index: int, reason: str) -> None:
        """Mark a node down from the *read* path (a query hit it dead
        mid-scan).  Unlike :meth:`_node_crashed` this never raises on
        quorum loss: below quorum the cluster rejects writes but keeps
        answering reads from surviving copies (section 5.3), so the
        failover loop that calls this must be able to continue."""
        if not self.membership.is_up(node_index):
            return
        self._eject_and_freeze(node_index, reason)
        METRICS.inc("cluster.nodes_failed")
        self.failover_log.record(
            "ejection", node_index, reason, self.clock.now
        )
        if not self.membership.has_quorum():
            METRICS.set_gauge("cluster.has_quorum", 0)
            self.failover_log.record(
                "degraded_mode",
                -1,
                "quorum lost: writes rejected, reads continue while "
                "data is available",
                self.clock.now,
            )

    def fail_node(self, node_index: int) -> None:
        """Take a node down (crash simulation).  Its WOS contents are
        lost — exactly why the Last Good Epoch exists."""
        self._node_crashed(node_index, "simulated failure")

    def restart_node(self, node_index: int) -> ScavengeReport:
        """Bring a crashed node's process back up from its on-disk
        state: rebuild the storage manager over the surviving files,
        scavenge away half-committed debris and quarantine anything
        corrupt.  The node stays *down* in the membership until
        :func:`repro.cluster.recovery.recover_node` replays it back to
        currency and rejoins it.
        """
        old = self.nodes[node_index]
        manager = StorageManager(
            old.manager.root,
            node_count=self.node_count,
            node_index=node_index,
            segments_per_node=old.manager.segments_per_node,
            wos_capacity=old.manager.wos_capacity,
        )
        for _, family in sorted(self.catalog.families.items()):
            table = self.catalog.table(family.primary.anchor_table)
            for copy in family.all_copies:
                manager.register_projection(copy, table)
        report = manager.scavenge()
        for quarantined in report.quarantined:
            self.dc.record(
                "errors",
                "quarantined_container",
                source="scavenge",
                node_index=node_index,
                detail=f"{quarantined.projection}: {quarantined.reason}",
            )
        self.nodes[node_index] = ClusterNode(
            index=node_index, manager=manager, merge_policy=old.merge_policy
        )
        self.nodes[node_index].mover.collector = self.dc
        return report

    def scrub(self, repair: bool = True):
        """Verify every container on every up node against its stored
        checksums; quarantine failures and (by default) rebuild them
        from buddy copies.  See :func:`repro.cluster.recovery.scrub`."""
        from .recovery import scrub

        return scrub(self, repair=repair)

    def require_data_available(self) -> None:
        """The paper's safety-shutdown criterion, as an assertion: raise
        :class:`DataUnavailableError` naming the first segment and
        projection family with no reachable copy.  The executor enforces
        this before building any query, so an unavailable cluster never
        returns partial rows."""
        for _, family in sorted(self.catalog.families.items()):
            self.scan_sources(family)

    def check_data_available(self) -> bool:
        """Whether every projection family still has every segment
        reachable (the paper's shutdown criterion)."""
        try:
            self.require_data_available()
        except DataUnavailableError:
            return False
        return True

    # -- maintenance -----------------------------------------------------------

    def run_tuple_movers(self, advance_ahm: bool = True) -> None:
        """One tuple mover cycle on every up node: moveout (advancing
        each projection's LGE), then mergeout at the current AHM.

        Each cycle is its own trace (not a child of whatever statement
        happened to trigger the commit): tuple mover work is background
        maintenance, "not centrally coordinated", and reads as such in
        the exported timeline."""
        trace = TRACER.start_trace(
            "tuple_mover.cycle", attrs={"advance_ahm": advance_ahm}
        )
        try:
            if advance_ahm:
                self.epochs.advance_ahm()
            durable_epoch = self.epochs.latest_queryable_epoch
            for node_index in self.membership.up_nodes():
                node = self.nodes[node_index]
                try:
                    for projection_name in node.manager.projection_names():
                        node.mover.moveout(projection_name)
                        node.manager.persist_delete_vectors(projection_name)
                        if durable_epoch > self.epochs.lge(node_index, projection_name):
                            self.epochs.set_lge(
                                node_index, projection_name, durable_epoch
                            )
                        node.mover.mergeout(projection_name, self.epochs.ahm)
                except InjectedFaultError:
                    # the tuple mover is node-local: one node dying mid
                    # moveout/mergeout never blocks the others.  Its LGE
                    # stays behind, so recovery replays the lost tail.
                    self._node_crashed(node_index, "crashed in tuple mover")
            self._advance_durable_floor()
            # mover cycles are the natural batching boundary for the
            # collector's own durability.
            self.dc.flush()
        finally:
            TRACER.end_trace(trace)

    def _advance_durable_floor(self) -> None:
        """Advance the journal's durable floor after a mover cycle.

        Only when every node is up *right after* a full moveout pass is
        ``cluster_lge()`` genuinely durable (each copy just drained its
        WOS into ROS), so only then may the floor — and a checkpoint
        built on it — advance.  Commits at or below the floor are never
        replayed, which is what makes pruning their segments safe.
        """
        if self.journal is None or self.membership.down_nodes():
            return
        floor = self.epochs.cluster_lge()
        self.journal.log_floor(floor)
        if self.journal.should_checkpoint():
            from ..durability import encode_catalog

            self.journal.write_checkpoint(
                floor=floor,
                current_epoch=self.epochs.current_epoch,
                ahm=self.epochs.ahm,
                catalog=encode_catalog(self.catalog),
            )
            self.dc.record(
                "node_events",
                "journal_checkpoint",
                node_index=-1,
                node_name="-",
                attempt=0,
                detail=f"floor={floor} epoch={self.epochs.current_epoch}",
            )

    # -- introspection -----------------------------------------------------------

    def total_data_bytes(self) -> int:
        """Encoded user data bytes across the whole cluster."""
        return sum(node.manager.total_data_bytes() for node in self.nodes)

    def node(self, index: int) -> ClusterNode:
        """Access a node by index."""
        try:
            return self.nodes[index]
        except IndexError:
            raise UnknownObjectError(f"no node {index}") from None
