"""Simulated monotonic cluster time (the failure detector's clock).

The availability machinery of section 5.3 — heartbeats, failure
detection timeouts, recovery backoff — is inherently *temporal*, but
wall-clock time would make every chaos run non-reproducible: a slow CI
machine would eject nodes a fast laptop keeps.  The reproduction
therefore runs all cluster timing off this simulated clock: an integer
tick counter advanced explicitly by :meth:`ClusterSupervisor.tick` (or
by tests), never by ``time.time()``.  replint rule R8 enforces that no
wall-clock call sneaks back into ``cluster/``, ``faults/`` or
``tuple_mover/``.

One tick is "one heartbeat interval" — the clock deliberately has no
unit conversion to seconds, so nothing downstream can be tempted to
compare it against real time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClusterError


@dataclass
class SimulatedClock:
    """A monotonic integer tick counter, advanced explicitly."""

    #: Current tick.  Starts at 0; the first :meth:`advance` makes it 1.
    now: int = 0

    def advance(self, ticks: int = 1) -> int:
        """Move time forward by ``ticks`` (>= 1); returns the new now."""
        if ticks < 1:
            raise ClusterError(f"clock can only move forward, not by {ticks}")
        self.now += ticks
        return self.now

    def elapsed_since(self, tick: int) -> int:
        """Ticks elapsed since ``tick`` (clamped at 0 for future marks)."""
        return max(self.now - tick, 0)
