"""One simulated cluster node: storage manager + tuple mover."""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..storage import StorageManager
from ..tuple_mover import MergePolicy, TupleMover


@dataclass
class ClusterNode:
    """A shared-nothing node with its own storage directory."""

    index: int
    manager: StorageManager
    mover: TupleMover = field(init=False)
    merge_policy: MergePolicy | None = None

    def __post_init__(self):
        self.mover = TupleMover(self.manager, self.merge_policy)

    @property
    def name(self) -> str:
        """Display name, e.g. ``node03``."""
        return f"node{self.index:02d}"

    @classmethod
    def create(
        cls,
        root: str,
        index: int,
        node_count: int,
        segments_per_node: int = 3,
        wos_capacity: int = 65536,
        merge_policy: MergePolicy | None = None,
        dirname: str | None = None,
    ) -> "ClusterNode":
        """Build a node with storage rooted under ``root``.

        ``dirname`` overrides the on-disk directory name (default
        ``nodeNN``) — rebalance uses it to give a grown node a fresh
        directory that cannot collide with a retired one.
        """
        manager = StorageManager(
            os.path.join(root, dirname or f"node{index:02d}"),
            node_count=node_count,
            node_index=index,
            segments_per_node=segments_per_node,
            wos_capacity=wos_capacity,
        )
        return cls(index=index, manager=manager, merge_policy=merge_policy)
