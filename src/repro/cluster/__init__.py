"""The simulated shared-nothing cluster (sections 3.6, 5)."""

from .backup import BackupImage, create_backup, load_manifest, restore_backup
from .clock import SimulatedClock
from .cluster import Cluster
from .membership import Membership
from .node import ClusterNode
from .recovery import (
    RebalanceReport,
    RecoveryReport,
    ScrubReport,
    rebalance,
    recover_node,
    refresh_projection,
    repair_node_projection,
    scrub,
)
from .supervisor import ClusterSupervisor, NodeSupervision

__all__ = [
    "BackupImage",
    "create_backup",
    "load_manifest",
    "restore_backup",
    "SimulatedClock",
    "Cluster",
    "ClusterSupervisor",
    "NodeSupervision",
    "Membership",
    "ClusterNode",
    "RebalanceReport",
    "RecoveryReport",
    "ScrubReport",
    "rebalance",
    "recover_node",
    "refresh_projection",
    "repair_node_projection",
    "scrub",
]
