"""``python -m repro.console`` — the operator's text dashboard.

Modeled on vDBAHelper-style consoles over Vertica's Data Collector:
everything rendered here is read back through plain SQL against the
``v_monitor`` tables, so the console exercises exactly the surface an
operator (or any external tool) would use — it holds no private
handles into the engine.

Two modes:

* ``--snapshot`` renders the dashboard once to stdout and exits —
  scriptable, deterministic, used by CI smoke tests;
* live mode (the default) re-renders every ``--interval`` seconds
  until interrupted, re-opening the database for each frame so the
  dashboard tracks the on-disk state as it changes (a ``Database``
  instance holds in-memory rings; only a fresh ``Database.open`` picks
  up history flushed by the serving process since the last frame).

Sections, top to bottom: a header (path, tick, epoch, service mode),
NODES (``node_states``), POOLS (``resource_pools``), SESSIONS,
ALERTS (firing first), SLOW QUERIES, RECENT REQUESTS
(``dc_requests_completed`` tail) and NODE EVENTS
(``dc_node_events`` tail).
"""

from __future__ import annotations

import argparse
import sys
import time

#: (title, v_monitor table, columns, tail) per dashboard section.
#: ``tail`` keeps the newest rows of history tables; 0 keeps all.
SECTIONS = [
    (
        "NODES",
        "node_states",
        [
            "node_name", "is_up", "supervisor_state",
            "heartbeat_age", "missed_heartbeats", "recovery_attempts",
        ],
        0,
    ),
    (
        "POOLS",
        "resource_pools",
        [
            "pool_name", "memory_budget_rows", "memory_in_use_rows",
            "running", "queued", "admitted_total", "rejected_total",
            "timed_out_total",
        ],
        0,
    ),
    (
        "SESSIONS",
        "sessions",
        [
            "session_id", "state", "pool_name", "txn_id",
            "current_statement", "statements_run", "statements_failed",
        ],
        0,
    ),
    (
        "ALERTS",
        "alerts",
        ["alert", "severity", "state", "value", "times_raised", "detail"],
        0,
    ),
    (
        "SLOW QUERIES",
        "slow_queries",
        [
            "record_id", "tick", "statement", "pool_name",
            "duration_ms", "rows_returned", "sql",
        ],
        8,
    ),
    (
        "RECENT REQUESTS",
        "dc_requests_completed",
        [
            "record_id", "tick", "statement", "success", "engine",
            "duration_ms", "rows_returned", "sql",
        ],
        8,
    ),
    (
        "NODE EVENTS",
        "dc_node_events",
        ["record_id", "tick", "kind", "node_name", "attempt", "detail"],
        8,
    ),
]

#: Cells longer than this are truncated with an ellipsis so one wide
#: SQL text cannot wreck the layout.
MAX_CELL = 48


def _cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        text = f"{value:.2f}"
    else:
        text = str(value)
    text = text.replace("\n", " ")
    if len(text) > MAX_CELL:
        text = text[: MAX_CELL - 1] + "…"
    return text


def _format_table(columns: list[str], rows: list[dict]) -> list[str]:
    """Render rows as an aligned text table (header + one line each)."""
    grid = [[_cell(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in grid)) if grid else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines = [header, "  ".join("-" * w for w in widths)]
    for line in grid:
        lines.append(
            "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        )
    return lines


def _section(db, title: str, table: str, columns: list[str], tail: int) -> list[str]:
    rows = db.sql(f"SELECT * FROM v_monitor.{table}")
    if table == "alerts":
        # firing alerts first, then by name; an all-ok panel stays short.
        rows.sort(key=lambda r: (r.get("state") == "ok", r.get("alert")))
    if tail and len(rows) > tail:
        rows = rows[-tail:]
    lines = [f"── {title} " + "─" * max(0, 60 - len(title))]
    if rows:
        lines += _format_table(columns, rows)
    else:
        lines.append("(none)")
    lines.append("")
    return lines


def render(db, path: str) -> str:
    """Render the whole dashboard for one database as a string."""
    firing = [
        row["alert"]
        for row in db.sql("SELECT * FROM v_monitor.alerts")
        if row.get("state") == "firing"
    ]
    service = getattr(db, "service", None)
    mode = "no service"
    if service is not None:
        mode = "read-only" if service.read_only else "read-write"
    lines = [
        "repro console — Data Collector dashboard",
        f"db={path}  tick={db.cluster.clock.now}  "
        f"epoch={db.latest_epoch}  service={mode}  "
        f"alerts_firing={len(firing)}"
        + (f" ({', '.join(firing)})" if firing else ""),
        "",
    ]
    for title, table, columns, tail in SECTIONS:
        lines += _section(db, title, table, columns, tail)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Run the console; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.console",
        description="text dashboard over the v_monitor / Data "
        "Collector tables of an on-disk repro database",
    )
    parser.add_argument("--db", required=True, help="database directory")
    parser.add_argument(
        "--snapshot",
        action="store_true",
        help="render once and exit (default: refresh continuously)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes in live mode (default: 2)",
    )
    args = parser.parse_args(argv)

    from ..core.database import Database

    try:
        if args.snapshot:
            print(render(Database.open(args.db), args.db))
            return 0
        while True:
            # Re-open per frame: the dashboard must show whatever the
            # serving process has flushed to disk since the last frame,
            # which a single in-process instance would never see.
            db = Database.open(args.db)
            # ANSI clear + home, then the fresh frame.
            sys.stdout.write("\x1b[2J\x1b[H" + render(db, args.db) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
