"""CLI entry point: ``python -m repro.console --db PATH [--snapshot]``."""

from __future__ import annotations

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
