"""Unit tests for the runtime companion: TrackedLock + lockset detector.

The detector implements the Eraser lockset algorithm (Savage et al.):
single-threaded writes are exempt, the first write from a second
thread seeds the candidate lockset, later writes intersect, and an
empty intersection is a race report.  These tests drive each state
transition deterministically by running individual writes on short-
lived helper threads.
"""

import threading

import pytest

from repro.lint.concur.runtime import (
    RaceDetector,
    TrackedLock,
    held_locks,
)

pytestmark = pytest.mark.lint


def on_thread(fn):
    """Run ``fn`` to completion on a separate thread."""
    worker = threading.Thread(target=fn)
    worker.start()
    worker.join()


class TestTrackedLock:
    def test_held_stack_push_pop(self):
        a = TrackedLock("A")
        b = TrackedLock("B")
        assert held_locks() == ()
        with a:
            assert held_locks() == ("A",)
            with b:
                assert held_locks() == ("A", "B")
            assert held_locks() == ("A",)
        assert held_locks() == ()

    def test_out_of_order_release(self):
        a = TrackedLock("A")
        b = TrackedLock("B")
        a.acquire()
        b.acquire()
        a.release()
        assert held_locks() == ("B",)
        b.release()
        assert held_locks() == ()

    def test_is_a_real_mutex(self):
        a = TrackedLock("A")
        a.acquire()
        assert a.locked()
        results = []
        on_thread(lambda: results.append(a.acquire(timeout=0.01)))
        assert results == [False]
        a.release()
        assert not a.locked()

    def test_held_stack_is_per_thread(self):
        a = TrackedLock("A")
        seen = []
        with a:
            on_thread(lambda: seen.append(held_locks()))
        assert seen == [()]


class TestRaceDetector:
    def test_untracked_writes_ignored(self):
        detector = RaceDetector()
        detector.note_write("nobody")
        assert detector.reports() == []

    def test_single_thread_needs_no_locks(self):
        detector = RaceDetector()
        detector.track("obj")
        for _ in range(10):
            detector.note_write("obj")
        assert detector.reports() == []

    def test_common_guard_is_clean(self):
        detector = RaceDetector()
        detector.track("obj")
        guard = TrackedLock("G")

        def write():
            with guard:
                detector.note_write("obj")

        write()
        on_thread(write)
        write()
        assert detector.reports() == []

    def test_lockset_empty_write_reported(self):
        detector = RaceDetector()
        detector.track("obj")
        lock_a = TrackedLock("A")
        lock_b = TrackedLock("B")
        with lock_a:
            detector.note_write("obj", "main")

        def second():
            with lock_b:
                detector.note_write("obj", "thread")

        on_thread(second)  # shared now; candidate lockset = {B}
        with lock_a:
            detector.note_write("obj", "main")  # {B} & {A} = {} -> race
        reports = detector.reports()
        assert len(reports) == 1
        assert reports[0].name == "obj"
        assert reports[0].writes == 3
        assert "lockset race" in reports[0].render()

    def test_reported_once_per_object(self):
        detector = RaceDetector()
        detector.track("obj")
        detector.note_write("obj")
        on_thread(lambda: detector.note_write("obj"))
        detector.note_write("obj")
        detector.note_write("obj")
        assert len(detector.reports()) == 1

    def test_disabled_sanitizer_disables_checking(self):
        from repro.lint import sanitizer

        detector = RaceDetector()
        detector.track("obj")
        with sanitizer.override(False):
            detector.note_write("obj")
            on_thread(lambda: detector.note_write("obj"))
            detector.note_write("obj")
        assert detector.reports() == []

    def test_untrack_and_reset(self):
        detector = RaceDetector()
        detector.track("obj")
        assert detector.tracking("obj")
        detector.untrack("obj")
        assert not detector.tracking("obj")
        detector.track("other")
        detector.reset()
        assert not detector.tracking("other")
        assert detector.reports() == []
