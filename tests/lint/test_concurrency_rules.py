"""Tests for the whole-program concurrency analyses (R9 and R10).

Each fixture writes a minimal ``repro/``-shaped tree into ``tmp_path``
that seeds exactly one concurrency hazard — a lock-order cycle, a
down-rank acquisition, an unannotated shared-state mutation — and
asserts the analysis reports it (and that the disciplined equivalent
is clean).  These are the negative fixtures the self-clean test can't
provide: the real tree must lint at zero findings, so the proof that
the analyses *catch* anything lives here.
"""

import json
import textwrap

import pytest

from repro.lint import run_lint
from repro.lint.__main__ import main

pytestmark = pytest.mark.lint


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, rule):
    return run_lint([str(tmp_path)], rules=[rule])


class TestR9LockOrderGraph:
    def test_injected_lock_order_cycle(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/cycle.py",
            """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def ab():
                with A:
                    with B:
                        pass

            def ba():
                with B:
                    with A:
                        pass
            """,
        )
        findings = lint(tmp_path, "R9")
        assert findings, "injected A<->B cycle must be reported"
        assert any("cycle" in f.message for f in findings)

    def test_consistent_order_is_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/ordered.py",
            """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def ab():
                with A:
                    with B:
                        pass

            def also_ab():
                with A:
                    with B:
                        pass
            """,
        )
        assert lint(tmp_path, "R9") == []

    def test_down_rank_mode_acquisition(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/modes.py",
            """
            from repro.txn import LockMode

            def f(mgr, txn):
                mgr.acquire(txn, "t", LockMode.X)
                mgr.acquire(txn, "t", LockMode.O)
            """,
        )
        findings = lint(tmp_path, "R9")
        assert findings
        assert any("O" in f.message and "X" in f.message for f in findings)

    def test_down_rank_through_a_callee(self, tmp_path):
        # the whole-program promotion of R3: the violation is split
        # across two functions and only visible interprocedurally.
        write(
            tmp_path,
            "repro/inner/interproc.py",
            """
            from repro.txn import LockMode

            def take_ddl(mgr, txn):
                mgr.acquire(txn, "t", LockMode.O)

            def f(mgr, txn):
                mgr.acquire(txn, "t", LockMode.X)
                take_ddl(mgr, txn)
            """,
        )
        findings = lint(tmp_path, "R9")
        assert findings
        assert any("callee" in f.message for f in findings)

    def test_non_reentrant_self_acquisition_via_callee(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/reenter.py",
            """
            import threading

            A = threading.Lock()

            def helper():
                with A:
                    pass

            def f():
                with A:
                    helper()
            """,
        )
        findings = lint(tmp_path, "R9")
        assert findings
        assert any("already" in f.message or "self" in f.message
                   for f in findings)

    def test_branches_never_order_against_each_other(self, tmp_path):
        # if/else arms are exclusive: taking A in one arm and B in the
        # other is not an ordering between A and B.
        write(
            tmp_path,
            "repro/inner/branches.py",
            """
            import threading

            A = threading.Lock()
            B = threading.Lock()

            def one(flag):
                if flag:
                    with A:
                        with B:
                            pass

            def other(flag):
                if flag:
                    with A:
                        pass
                else:
                    with B:
                        pass
            """,
        )
        assert lint(tmp_path, "R9") == []


class TestR10SharedState:
    def test_unannotated_global_mutation(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _CACHE = {}

            def poke():
                _CACHE["k"] = 1
            """,
        )
        findings = lint(tmp_path, "R10")
        assert len(findings) == 1
        assert "_CACHE" in findings[0].message
        assert "annotation" in findings[0].message

    def test_guarded_write_under_its_lock_is_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}  # concurrency: guarded-by(_LOCK)

            def poke():
                with _LOCK:
                    _CACHE["k"] = 1
            """,
        )
        assert lint(tmp_path, "R10") == []

    def test_guarded_write_without_the_lock(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            import threading

            _LOCK = threading.Lock()
            _OTHER = threading.Lock()
            _CACHE = {}  # concurrency: guarded-by(_LOCK)

            def poke():
                with _OTHER:
                    _CACHE["k"] = 1
            """,
        )
        findings = lint(tmp_path, "R10")
        assert len(findings) == 1
        assert "guarded-by(_LOCK)" in findings[0].message
        assert "_OTHER" in findings[0].message

    def test_immutable_mutated_outside_registration(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            REG = {}  # concurrency: immutable

            def register_thing(k):
                REG[k] = 1

            def poke(k):
                REG[k] = 2
            """,
        )
        findings = lint(tmp_path, "R10")
        assert len(findings) == 1
        assert "immutable" in findings[0].message
        assert findings[0].line == 8

    def test_thread_local_writes_are_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            import threading

            _TLS = threading.local()  # concurrency: thread-local

            def poke():
                _TLS.value = 1
            """,
        )
        assert lint(tmp_path, "R10") == []

    def test_global_rebind_and_mutator_call(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _ACTIVE = None
            _ITEMS = []

            def set_active(value):
                global _ACTIVE
                _ACTIVE = value

            def poke():
                _ITEMS.append(1)
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R10")]
        assert len(messages) == 2
        assert any("_ACTIVE" in m for m in messages)
        assert any("_ITEMS" in m and "append" in m for m in messages)

    def test_init_is_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _SLOTS = {}

            class Thing:
                def __init__(self):
                    _SLOTS[id(self)] = self
            """,
        )
        assert lint(tmp_path, "R10") == []

    def test_singleton_attribute_guard_checked(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/reg.py",
            """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}  # concurrency: guarded-by(self._lock)

                def put(self, k, v):
                    self._data[k] = v

                def put_locked(self, k, v):
                    with self._lock:
                        self._data[k] = v

            REG = Registry()
            """,
        )
        findings = lint(tmp_path, "R10")
        assert len(findings) == 1
        assert "Registry._data" in findings[0].message
        assert findings[0].line == 10

    def test_suppression_comment(self, tmp_path):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _CACHE = {}

            def poke():
                _CACHE["k"] = 1  # replint: disable=R10
            """,
        )
        assert lint(tmp_path, "R10") == []


class TestConcurrencyCli:
    def test_per_rule_counts_in_summary(self, tmp_path, capsys):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _CACHE = {}

            def poke(x=[]):
                _CACHE["k"] = 1
                return x
            """,
        )
        assert main([str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "R5=1" in err and "R10=1" in err

    def test_concurrency_flag_runs_only_r9_r10(self, tmp_path, capsys):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _CACHE = {}

            def poke(x=[]):
                _CACHE["k"] = 1
                return x
            """,
        )
        assert main(["--concurrency", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "R10" in captured.out
        assert "R5" not in captured.out

    def test_concurrency_conflicts_with_rules(self, tmp_path, capsys):
        assert main(["--concurrency", "--rules", "R9", str(tmp_path)]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_json_report(self, tmp_path, capsys):
        write(
            tmp_path,
            "repro/inner/state.py",
            """
            _CACHE = {}

            def poke():
                _CACHE["k"] = 1
            """,
        )
        assert main(["--concurrency", "--json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["total"] == 1
        assert report["counts"] == {"R10": 1}
        assert report["findings"][0]["rule"] == "R10"
        assert report["findings"][0]["line"] == 5
