"""Unit tests for each replint rule against synthetic violation trees.

Each test writes a minimal fake package layout into ``tmp_path`` that
reproduces one contract violation, runs the single rule over it, and
asserts the finding (and that the equivalent compliant code is clean).
"""

import textwrap

import pytest

from repro.lint import run_lint

pytestmark = pytest.mark.lint


def write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def lint(tmp_path, rule):
    return run_lint([str(tmp_path)], rules=[rule])


class TestR1Operators:
    def test_incomplete_operator_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/operators/__init__.py",
            "__all__ = []\n",
        )
        write(
            tmp_path,
            "repro/execution/operators/broken.py",
            """
            from .base import Operator

            class BrokenOperator(Operator):
                pass
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R1")]
        assert any("_produce" in m for m in messages)
        assert any("op_name" in m for m in messages)
        assert any("__all__" in m for m in messages)

    def test_complete_exported_operator_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/operators/__init__.py",
            "__all__ = [\"GoodOperator\"]\n",
        )
        write(
            tmp_path,
            "repro/execution/operators/good.py",
            """
            from .base import Operator

            class GoodOperator(Operator):
                op_name = "Good"

                def _produce(self):
                    yield from ()
            """,
        )
        assert lint(tmp_path, "R1") == []

    def test_protocol_inherited_through_intermediate(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/operators/__init__.py",
            "__all__ = [\"Base\", \"Derived\"]\n",
        )
        write(
            tmp_path,
            "repro/execution/operators/chain.py",
            """
            from .base import Operator

            class Base(Operator):
                op_name = "Base"

                def _produce(self):
                    yield from ()

            class Derived(Base):
                pass
            """,
        )
        assert lint(tmp_path, "R1") == []

    def test_private_helper_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/operators/__init__.py",
            "__all__ = []\n",
        )
        write(
            tmp_path,
            "repro/execution/operators/helper.py",
            """
            from .base import Operator

            class _Helper(Operator):
                pass
            """,
        )
        assert lint(tmp_path, "R1") == []


class TestR2Encodings:
    def test_incomplete_encoding_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/encodings/broken.py",
            """
            from .base import Encoding

            class BrokenEncoding(Encoding):
                def encode(self, values):
                    return b""
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R2")]
        assert any("`name`" in m for m in messages)
        assert any("decode" in m for m in messages)
        assert any("register" in m for m in messages)

    def test_registered_complete_encoding_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/encodings/good.py",
            """
            from .base import Encoding, register

            class GoodEncoding(Encoding):
                name = "GOOD"

                def encode(self, values):
                    return b""

                def decode(self, data, count):
                    return []

            GOOD = register(GoodEncoding())
            """,
        )
        assert lint(tmp_path, "R2") == []

    def test_abstract_intermediate_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/encodings/abstract.py",
            """
            from abc import abstractmethod

            from .base import Encoding

            class IntegerEncoding(Encoding):
                @abstractmethod
                def encode_ints(self, values):
                    ...
            """,
        )
        assert lint(tmp_path, "R2") == []


class TestR3LockOrder:
    def test_out_of_order_acquisition_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/core/workflow.py",
            """
            from ..txn import LockMode

            class Engine:
                def run(self, txn_id):
                    self.locks.acquire(txn_id, "t", LockMode.T)
                    self.locks.acquire(txn_id, "t", LockMode.X)
            """,
        )
        findings = lint(tmp_path, "R3")
        assert len(findings) == 1
        assert "LockMode.X after" in findings[0].message
        assert "LockMode.T" in findings[0].message

    def test_canonical_order_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/core/workflow.py",
            """
            from ..txn import LockMode

            class Engine:
                def run(self, txn_id):
                    self.locks.acquire(txn_id, "t", LockMode.O)
                    self.locks.acquire(txn_id, "t", LockMode.X)
                    self.locks.acquire(txn_id, "t", LockMode.I)
                    self.locks.acquire(txn_id, "t", LockMode.U)
            """,
        )
        assert lint(tmp_path, "R3") == []

    def test_violation_through_helper_call(self, tmp_path):
        write(
            tmp_path,
            "repro/core/workflow.py",
            """
            from ..txn import LockMode

            class Engine:
                def _grab_write_lock(self, txn_id):
                    self.locks.acquire(txn_id, "t", LockMode.X)

                def run(self, txn_id):
                    self.locks.acquire(txn_id, "t", LockMode.S)
                    self._grab_write_lock(txn_id)
            """,
        )
        findings = lint(tmp_path, "R3")
        assert any("run()" in f.message for f in findings)

    def test_equal_rank_modes_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/core/workflow.py",
            """
            from ..txn import LockMode

            def load_two(locks, txn_id):
                locks.acquire(txn_id, "a", LockMode.I)
                locks.acquire(txn_id, "b", LockMode.S)
            """,
        )
        assert lint(tmp_path, "R3") == []


class TestR4QueryPathMutation:
    def test_mutation_from_execution_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/evil.py",
            """
            class EvilOperator:
                def run(self, node):
                    node.storage.remove_containers("p", [1])
            """,
        )
        findings = lint(tmp_path, "R4")
        assert len(findings) == 1
        assert "storage.remove_containers" in findings[0].message

    def test_catalog_mutation_from_sql_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/sql/evil.py",
            """
            def sneaky(db):
                db.catalog.drop_table("t")
            """,
        )
        findings = lint(tmp_path, "R4")
        assert len(findings) == 1
        assert "catalog.drop_table" in findings[0].message

    def test_reads_and_non_storage_receivers_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/execution/fine.py",
            """
            def scan(node, rows):
                rows.insert(0, {"k": 1})          # list, not storage
                return list(node.storage.scan("p", epoch=3))
            """,
        )
        assert lint(tmp_path, "R4") == []

    def test_mutation_from_storage_layer_allowed(self, tmp_path):
        write(
            tmp_path,
            "repro/tuple_mover/fine.py",
            """
            def moveout(manager):
                manager.add_container_from_rows("p", [], [])
            """,
        )
        assert lint(tmp_path, "R4") == []


class TestR5Hygiene:
    def test_mutable_default_flagged(self, tmp_path):
        write(tmp_path, "repro/core/util.py", "def f(x=[]):\n    return x\n")
        findings = lint(tmp_path, "R5")
        assert len(findings) == 1
        assert "mutable default" in findings[0].message

    def test_bare_except_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/core/util.py",
            """
            def f():
                try:
                    return 1
                except:
                    return 2
            """,
        )
        findings = lint(tmp_path, "R5")
        assert len(findings) == 1
        assert "bare `except:`" in findings[0].message

    def test_float_equality_in_cost_model_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/optimizer/cost_extra.py",
            """
            def same_cost(a):
                return a == 1.5
            """,
        )
        findings = lint(tmp_path, "R5")
        assert len(findings) == 1
        assert "float equality" in findings[0].message

    def test_float_equality_outside_optimizer_allowed(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/whatever.py",
            "def same(a):\n    return a == 1.5\n",
        )
        assert lint(tmp_path, "R5") == []

    def test_float_inequality_comparisons_allowed(self, tmp_path):
        write(
            tmp_path,
            "repro/optimizer/cost_extra.py",
            "def cheap(a):\n    return a < 1.5\n",
        )
        assert lint(tmp_path, "R5") == []


class TestR6PublicApi:
    def test_missing_docstring_and_annotations_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/sdk.py",
            """
            def register_thing(name, fn):
                pass
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R6")]
        assert any("no docstring" in m for m in messages)
        assert any("missing type annotations" in m for m in messages)
        assert any("no return annotation" in m for m in messages)

    def test_private_and_other_modules_exempt(self, tmp_path):
        write(tmp_path, "repro/sdk.py", "def _internal(x):\n    pass\n")
        write(tmp_path, "repro/other.py", "def undocumented(x):\n    pass\n")
        assert lint(tmp_path, "R6") == []

    def test_fully_typed_documented_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/sdk.py",
            '''
            def register_thing(name: str) -> None:
                """Register a thing."""
            ''',
        )
        assert lint(tmp_path, "R6") == []


class TestR7AtomicIO:
    def test_raw_write_open_in_storage_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/bad.py",
            """
            def save(path, data):
                with open(path, "wb") as handle:
                    handle.write(data)
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R7")]
        assert len(messages) == 1
        assert "atomic commit" in messages[0]
        assert "fsio" in messages[0]

    def test_all_write_modes_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/tuple_mover/bad.py",
            """
            def touch(path, mode):
                open(path, "a").close()
                open(path, "x").close()
                open(path, "r+b").close()
                open(path, mode=mode).close()
            """,
        )
        assert len(lint(tmp_path, "R7")) == 4

    def test_reads_and_other_packages_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/reader.py",
            """
            def load(path):
                with open(path) as handle:
                    return handle.read()

            def load_binary(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
        )
        write(
            tmp_path,
            "repro/cluster/elsewhere.py",
            """
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        )
        assert lint(tmp_path, "R7") == []

    def test_sanctioned_fsio_site_suppressed(self, tmp_path):
        write(
            tmp_path,
            "repro/storage/fsio.py",
            """
            def write_bytes(path, data):
                with open(path, "wb") as handle:  # replint: disable=R7
                    handle.write(data)
            """,
        )
        assert lint(tmp_path, "R7") == []

    def test_test_code_exempt(self, tmp_path):
        write(
            tmp_path,
            "tests/storage/test_thing.py",
            """
            def test_corrupt(path):
                with open(path, "wb") as handle:
                    handle.write(b"x")
            """,
        )
        assert lint(tmp_path, "R7") == []


class TestR8WallClock:
    def test_wallclock_reads_in_cluster_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/cluster/bad.py",
            """
            import time
            from datetime import datetime

            def detect(nodes):
                deadline = time.time() + 5
                time.sleep(0.1)
                stamp = datetime.now()
                return deadline, stamp
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R8")]
        assert len(messages) == 3
        assert all("SimulatedClock" in m for m in messages)

    def test_bare_imported_sleep_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/faults/bad.py",
            """
            from time import sleep

            def backoff():
                sleep(1)
            """,
        )
        findings = lint(tmp_path, "R8")
        assert len(findings) == 1
        assert "time.sleep()" in findings[0].message

    def test_timezone_aware_now_and_perf_counter_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/tuple_mover/fine.py",
            """
            import time
            from datetime import datetime, timezone

            def measure():
                start = time.perf_counter()
                stamp = datetime.now(timezone.utc)
                return time.perf_counter() - start, stamp
            """,
        )
        assert lint(tmp_path, "R8") == []

    def test_other_packages_and_test_code_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/monitor/fine.py",
            "import time\n\ndef stamp():\n    return time.time()\n",
        )
        write(
            tmp_path,
            "tests/cluster/test_thing.py",
            "import time\n\ndef test_x():\n    time.sleep(0)\n",
        )
        assert lint(tmp_path, "R8") == []


class TestR11GovernedService:
    def test_direct_sql_in_service_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/service/shortcut.py",
            """
            def sneak(db, text):
                return db.sql(text)
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R11")]
        assert len(messages) == 1
        assert "admission control" in messages[0]

    def test_bare_execute_sql_in_service_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/service/shortcut.py",
            """
            from repro.sql import execute_sql

            def sneak(core, text):
                return execute_sql(core, text)
            """,
        )
        assert len(lint(tmp_path, "R11")) == 1

    def test_run_governed_site_sanctioned(self, tmp_path):
        write(
            tmp_path,
            "repro/service/session.py",
            """
            from repro.sql import execute_sql

            class ServiceSession:
                def _run_governed(self, text):
                    return execute_sql(self._core, text)
            """,
        )
        assert lint(tmp_path, "R11") == []

    def test_execute_sql_outside_service_not_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/core/database.py",
            """
            from repro.sql import execute_sql

            class Database:
                def sql(self, text):
                    return execute_sql(self.session(), text)
            """,
        )
        assert lint(tmp_path, "R11") == []


class TestR13DcRouting:
    def test_print_in_service_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/service/chatty.py",
            """
            def admit(ticket):
                print(f"admitted {ticket}")
            """,
        )
        messages = [f.message for f in lint(tmp_path, "R13")]
        assert len(messages) == 1
        assert "DataCollector.record()" in messages[0]

    def test_logging_in_cluster_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/cluster/noisy.py",
            """
            import logging

            log = logging.getLogger(__name__)

            def eject(node):
                logging.warning("ejecting %s", node)
            """,
        )
        assert len(lint(tmp_path, "R13")) == 2

    def test_stderr_write_in_tuple_mover_flagged(self, tmp_path):
        write(
            tmp_path,
            "repro/tuple_mover/loud.py",
            """
            import sys

            def moveout():
                sys.stderr.write("moving out\\n")
            """,
        )
        assert len(lint(tmp_path, "R13")) == 1

    def test_collector_and_metrics_clean(self, tmp_path):
        write(
            tmp_path,
            "repro/cluster/quiet.py",
            """
            from ..monitor import METRICS

            def eject(collector, node):
                collector.record("node_events", "ejection", node_index=node)
                METRICS.inc("cluster.ejections")
            """,
        )
        assert lint(tmp_path, "R13") == []

    def test_other_packages_and_tests_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/console/fine.py",
            "def show(text):\n    print(text)\n",
        )
        write(
            tmp_path,
            "tests/service/test_thing.py",
            "def test_x():\n    print('debug')\n",
        )
        assert lint(tmp_path, "R13") == []


class TestSuppression:
    def test_line_suppression_silences_rule(self, tmp_path):
        write(
            tmp_path,
            "repro/core/util.py",
            "def f(x=[]):  # replint: disable=R5\n    return x\n",
        )
        assert lint(tmp_path, "R5") == []

    def test_suppression_is_rule_specific(self, tmp_path):
        write(
            tmp_path,
            "repro/core/util.py",
            "def f(x=[]):  # replint: disable=R1\n    return x\n",
        )
        assert len(lint(tmp_path, "R5")) == 1

    def test_blanket_suppression(self, tmp_path):
        write(
            tmp_path,
            "repro/core/util.py",
            "def f(x=[]):  # replint: disable\n    return x\n",
        )
        assert lint(tmp_path, "R5") == []
