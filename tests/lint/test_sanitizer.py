"""Fault-injection tests for the runtime invariant sanitizer.

Each test breaks one physical invariant on purpose — corrupted
position index, double delete, lossy moveout, regressed epoch marks —
and asserts the sanitizer raises :class:`InvariantViolation` with a
message that names the broken invariant.  The repo-root ``conftest.py``
enables the sanitizer for every test, so these tests also prove the
whole-suite wiring works.
"""

import os

import pytest

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import InvariantViolation
from repro.lint import sanitizer
from repro.projections import super_projection
from repro.storage import DeleteVector, ROSContainer, StorageManager
from repro.storage.column_file import read_position_index
from repro.storage.serde import write_uvarint
from repro.tuple_mover import TupleMover
from repro.txn import EpochManager

pytestmark = pytest.mark.lint


@pytest.fixture
def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
    )


@pytest.fixture
def projection(table):
    return super_projection(table, sort_order=["k"])


def make_rows(n):
    return [{"k": i, "v": f"row{i % 5}"} for i in range(n)]


def corrupt_pidx(container_path, column, mutate):
    """Rewrite one column's position index after applying ``mutate``.

    The rewritten file gets a *valid* CRC32 stamped back into
    ``meta.json`` — this simulates a writer bug (semantically wrong but
    intact bytes), the case only the sanitizer can catch; bit rot with
    a stale CRC is the checksum layer's job and is tested in
    ``tests/storage/test_crash_consistency.py``.
    """
    import json

    from repro.storage import fsio
    from repro.storage.ros import _meta_crc

    pidx = os.path.join(container_path, f"{column}.pidx")
    with open(pidx, "rb") as handle:
        infos = read_position_index(handle.read())
    mutate(infos)
    out = bytearray()
    write_uvarint(out, len(infos))
    for info in infos:
        info.serialize(out)
    with open(pidx, "wb") as handle:
        handle.write(bytes(out))
    meta_path = os.path.join(container_path, "meta.json")
    with open(meta_path) as handle:
        raw = json.load(handle)
    raw.pop("meta_crc", None)
    raw["checksums"][f"{column}.pidx"] = fsio.crc32(bytes(out))
    raw["meta_crc"] = _meta_crc(raw)
    with open(meta_path, "w") as handle:
        json.dump(raw, handle)


class TestContainerInvariants:
    def test_clean_container_passes(self, tmp_path, projection):
        path = str(tmp_path / "ros_1")
        ROSContainer.write(path, 1, projection, make_rows(50), [1] * 50)
        assert ROSContainer.load(path).row_count == 50

    def test_corrupted_block_min_max_detected(self, tmp_path, projection):
        path = str(tmp_path / "ros_1")
        ROSContainer.write(path, 1, projection, make_rows(50), [1] * 50)

        def lie_about_min(infos):
            infos[0].min_value = 999_999

        corrupt_pidx(path, "k", lie_about_min)
        with pytest.raises(InvariantViolation) as excinfo:
            ROSContainer.load(path)
        message = str(excinfo.value)
        assert "min/max metadata" in message
        assert "'k'" in message and "pruning" in message

    def test_non_monotonic_position_index_detected(self, tmp_path, projection):
        path = str(tmp_path / "ros_1")
        ROSContainer.write(path, 1, projection, make_rows(50), [1] * 50)

        def shift_start(infos):
            infos[0].start_position = 7

        corrupt_pidx(path, "k", shift_start)
        with pytest.raises(InvariantViolation) as excinfo:
            ROSContainer.load(path)
        assert "monotonic" in str(excinfo.value) or "rows" in str(excinfo.value)

    def test_corruption_ignored_when_disabled(self, tmp_path, projection):
        path = str(tmp_path / "ros_1")
        ROSContainer.write(path, 1, projection, make_rows(50), [1] * 50)
        corrupt_pidx(path, "k", lambda infos: setattr(infos[0], "min_value", 999_999))
        with sanitizer.override(False):
            assert ROSContainer.load(path).row_count == 50


class TestDeleteVectorInvariants:
    def test_double_delete_detected(self):
        vector = DeleteVector(target_container=3)
        vector.add(5, epoch=2)
        with pytest.raises(InvariantViolation) as excinfo:
            vector.add(5, epoch=4)
        message = str(excinfo.value)
        assert "double delete of position 5" in message
        assert "container 3" in message

    def test_wos_vector_named_in_message(self):
        vector = DeleteVector(target_container=None)
        vector.add(1, epoch=2)
        with pytest.raises(InvariantViolation, match="WOS"):
            vector.add(1, epoch=2)

    def test_distinct_positions_allowed(self):
        vector = DeleteVector(target_container=1)
        for position in range(10):
            vector.add(position, epoch=1)
        assert vector.count == 10

    def test_double_delete_allowed_when_disabled(self):
        vector = DeleteVector(target_container=1)
        vector.add(5, epoch=2)
        with sanitizer.override(False):
            vector.add(5, epoch=4)
        assert vector.count == 2


class TestTupleMoverConservation:
    NAME = "t_super"

    @pytest.fixture
    def manager(self, tmp_path, table, projection):
        manager = StorageManager(str(tmp_path / "node0"))
        manager.register_projection(projection, table)
        return manager

    def test_clean_moveout_passes(self, manager):
        manager.insert(self.NAME, make_rows(20), epoch=1)
        created = TupleMover(manager).moveout(self.NAME)
        assert created
        assert manager.wos_row_count(self.NAME) == 0

    def test_lossy_moveout_detected(self, manager, monkeypatch):
        manager.insert(self.NAME, make_rows(20), epoch=1)
        original = StorageManager.add_container_from_rows

        def lossy(self, name, rows, epochs, **kwargs):
            return original(self, name, rows[:-1], epochs[:-1], **kwargs)

        monkeypatch.setattr(StorageManager, "add_container_from_rows", lossy)
        with pytest.raises(InvariantViolation) as excinfo:
            TupleMover(manager).moveout(self.NAME)
        message = str(excinfo.value)
        assert "moveout" in message
        assert "drained 20" in message and "wrote 19" in message

    def test_mergeout_accounting_check(self):
        sanitizer.check_mergeout_conservation("p", 10, 8, 2)
        with pytest.raises(InvariantViolation, match="mergeout"):
            sanitizer.check_mergeout_conservation("p", 10, 8, 1)


class TestEpochInvariants:
    def test_ahm_past_latest_queryable_detected(self):
        epochs = EpochManager()
        epochs.ahm = 5  # corrupt state: nothing has committed yet
        with pytest.raises(InvariantViolation) as excinfo:
            epochs.advance_ahm()
        assert "latest queryable" in str(excinfo.value)

    def test_epoch_clock_must_advance(self):
        with pytest.raises(InvariantViolation, match="strictly advance"):
            sanitizer.check_epoch_advance(3, 3)

    def test_normal_epoch_flow_passes(self):
        epochs = EpochManager()
        for _ in range(5):
            epochs.advance_for_commit()
        epochs.set_lge(0, "p", 4)
        assert epochs.advance_ahm() >= 0

    def test_ahm_regression_detected_directly(self):
        with pytest.raises(InvariantViolation, match="regressed"):
            sanitizer.check_ahm_advance(5, 4, None, 10)


class TestEnablement:
    def test_env_variable_controls_sanitizer(self, monkeypatch):
        monkeypatch.setattr(sanitizer, "_OVERRIDE", None)
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer.enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitizer.enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitizer.enabled()

    def test_suite_runs_with_sanitizer_on(self):
        # The repo conftest enables the sanitizer for every test.
        assert sanitizer.enabled()
