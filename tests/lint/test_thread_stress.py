"""Thread-stress smoke: concurrent SELECTs under the race detector.

Eight threads hammer the same database with snapshot SELECTs (the
lock-free path of section 5) while the sanitizer and the lockset race
detector watch the process-wide monitoring singletons every query
bumps.  The suite must come back finding-free: no exceptions on any
thread, no lockset-empty writes.  A companion negative harness proves
the detector would have caught an unguarded write pattern — so the
green result above means "checked", not "unplugged".
"""

import threading

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.lint.concur.runtime import RACES, TrackedLock
from repro.monitor import METRICS

pytestmark = pytest.mark.lint

THREADS = 8
QUERIES_PER_THREAD = 10


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": f"v{i % 7}"} for i in range(500)])
    db.run_tuple_movers()
    return db


class TestThreadStress:
    def test_concurrent_selects_are_race_free(self, db):
        RACES.reset()
        RACES.track("METRICS._counters")
        RACES.track("PROFILES._next_id")
        errors = []
        barrier = threading.Barrier(THREADS)

        def worker():
            try:
                barrier.wait(timeout=10)
                for _ in range(QUERIES_PER_THREAD):
                    rows = db.sql("SELECT count(*) AS n FROM t")
                    assert rows == [{"n": 500}]
                    db.sql("SELECT v, count(*) AS n FROM t GROUP BY v")
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        try:
            assert errors == []
            reports = RACES.reports()
            assert reports == [], "\n".join(r.render() for r in reports)
            executed = METRICS.counters_with_prefix("queries.executed")
            assert executed["queries.executed"] >= THREADS * QUERIES_PER_THREAD
        finally:
            RACES.reset()

    def test_harness_catches_an_unguarded_write(self):
        # the negative control: the same harness with the guard removed
        # on one path must produce a lockset-empty report.
        RACES.reset()
        RACES.track("victim")
        guard = TrackedLock("victim_guard")
        try:
            with guard:
                RACES.note_write("victim")

            def unguarded():
                RACES.note_write("victim")

            worker = threading.Thread(target=unguarded)
            worker.start()
            worker.join()
            with guard:
                RACES.note_write("victim")
            reports = RACES.reports()
            assert len(reports) == 1
            assert reports[0].name == "victim"
        finally:
            RACES.reset()
