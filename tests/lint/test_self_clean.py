"""The replint meta-test: the repo must lint clean against itself.

This is the regression guard the lint rules exist for — any future PR
that breaks an operator protocol, forgets to register an encoding,
acquires locks out of order, mutates storage from the query path, or
degrades the public API surface fails here with file:line findings.
"""

import os

import pytest

from repro.lint import run_lint
from repro.lint.__main__ import main

pytestmark = pytest.mark.lint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _repo_path(*parts):
    return os.path.join(REPO_ROOT, *parts)


class TestSelfClean:
    def test_src_repro_has_zero_findings(self):
        findings = run_lint([_repo_path("src", "repro")])
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)

    def test_whole_repo_has_zero_findings(self):
        paths = [
            _repo_path("src"),
            _repo_path("tests"),
            _repo_path("benchmarks"),
            _repo_path("examples"),
            _repo_path("conftest.py"),
        ]
        findings = run_lint([p for p in paths if os.path.exists(p)])
        assert findings == [], "\n" + "\n".join(f.render() for f in findings)


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([_repo_path("src", "repro")]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_nonzero_with_file_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:1: R5" in out
        assert "mutable default" in out

    def test_rule_filter(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["--rules", "R1", str(bad)]) == 0
        assert main(["--rules", "R5", str(bad)]) == 1

    def test_unknown_rule_id_is_an_error(self, tmp_path, capsys):
        good = tmp_path / "fine.py"
        good.write_text("x = 1\n")
        assert main(["--rules", "R99", str(good)]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_is_an_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such file or directory" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for rule in ("R1", "R2", "R3", "R4", "R5", "R6"):
            assert rule in out
