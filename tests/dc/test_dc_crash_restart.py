"""Kill-mid-flush crash tests for the Data Collector segments.

The collector persists through the same stage/publish discipline as
the journal, so the same fault points apply: ``dc.flush.stage`` fires
after a segment's contents are staged but before the publishing
rename, and ``dc.flush.publish`` fires after the rename.  In every
case ``Database.open()`` must come back with an exact record-prefix of
the history — never a torn or hybrid ring — and keep collecting.
"""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.cluster.clock import SimulatedClock
from repro.dc import DataCollector
from repro.errors import InjectedFaultError
from repro.faults import FaultPlan
from repro.monitor import reset_all

pytestmark = [pytest.mark.dc, pytest.mark.chaos]


def fill(dc, n, start=0):
    for i in range(start, start + n):
        dc.record("requests", "select", sql=f"q{i}")


def recorded(tmp_path):
    dc = DataCollector(
        str(tmp_path / "dc"), clock=SimulatedClock(), persist=True
    )
    return [r["sql"] for r in dc.rows("requests")]


class TestCollectorUnit:
    """Faults driven against a bare collector: precise prefix checks."""

    def test_crash_at_stage_loses_only_the_unflushed_batch(self, tmp_path):
        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=4,
        )
        fill(dc, 4)  # auto-flush: q0..q3 durable
        fill(dc, 3, start=4)
        plan = FaultPlan(seed=3).arm("dc.flush.stage", "crash")
        with plan:
            with pytest.raises(InjectedFaultError):
                dc.record("requests", "select", sql="q7")  # triggers flush
        assert plan.fired
        assert recorded(tmp_path) == [f"q{i}" for i in range(4)]

    def test_torn_stage_never_publishes(self, tmp_path):
        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=4,
        )
        fill(dc, 4)
        plan = FaultPlan(seed=5).arm("dc.flush.stage", "torn")
        with plan:
            with pytest.raises(InjectedFaultError):
                fill(dc, 4, start=4)  # second flush stages torn, dies
        assert plan.fired
        # the torn .tmp must be discarded, not read as a segment
        assert recorded(tmp_path) == [f"q{i}" for i in range(4)]

    def test_torn_publish_recovers_a_valid_prefix(self, tmp_path):
        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=4,
        )
        plan = FaultPlan(seed=7).arm("dc.flush.publish", "torn")
        with plan:
            with pytest.raises(InjectedFaultError):
                fill(dc, 4)
        assert plan.fired
        survivors = recorded(tmp_path)
        assert survivors == [f"q{i}" for i in range(len(survivors))]
        assert len(survivors) < 4

    def test_bitflip_publish_cuts_at_the_damaged_record(self, tmp_path):
        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=4,
        )
        plan = FaultPlan(seed=11).arm("dc.flush.publish", "bitflip")
        with plan:
            fill(dc, 4)
        assert plan.fired
        survivors = recorded(tmp_path)
        assert survivors == [f"q{i}" for i in range(len(survivors))]

    def test_recovered_collector_keeps_collecting(self, tmp_path):
        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=2,
        )
        plan = FaultPlan(seed=13).arm("dc.flush.publish", "torn")
        with plan:
            with pytest.raises(InjectedFaultError):
                fill(dc, 2)
        assert plan.fired
        reopened = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=2,
        )
        fill(reopened, 2, start=2)
        reopened.flush()
        rows = recorded(tmp_path)
        assert rows[-2:] == ["q2", "q3"]
        ids = [r["record_id"] for r in reopened.rows("requests")]
        assert ids == sorted(ids)  # ids stay monotonic across the crash


class TestNoFlushInCriticalSections:
    """Lock/admission recording defers segment I/O: a dc.flush fault
    must never surface through acquire()/submit() callers, because the
    flush must never run inside their condition-variable sections."""

    def test_lock_wait_recording_never_flushes_inline(self, tmp_path):
        from repro.errors import LockTimeoutError
        from repro.txn.locks import LockManager, LockMode

        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=1,
        )
        locks = LockManager()
        locks.collector = dc
        locks.acquire(1, "t", LockMode.X)
        plan = FaultPlan(seed=19).arm("dc.flush.stage", "crash")
        with plan:
            with pytest.raises(LockTimeoutError):
                locks.acquire(2, "t", LockMode.X)  # records wait + timeout
            assert not plan.fired  # no segment I/O under locks._cond
            with pytest.raises(InjectedFaultError):
                dc.flush()  # the deferred backlog persists (and faults) here
        assert plan.fired
        assert len(dc.rows("lock_waits")) == 2  # both incidents ringed

    def test_admission_recording_never_flushes_inline(self, tmp_path):
        from repro.service.governor import ResourceGovernor

        dc = DataCollector(
            str(tmp_path / "dc"),
            clock=SimulatedClock(),
            persist=True,
            flush_interval=1,
        )
        governor = ResourceGovernor(SimulatedClock())
        governor.collector = dc
        plan = FaultPlan(seed=23).arm("dc.flush.stage", "crash")
        with plan:
            ticket = governor.submit()  # grants, records the grant
            assert ticket.state == "granted"
            assert not plan.fired  # no segment I/O under governor._cond
            with pytest.raises(InjectedFaultError):
                dc.flush()
        assert plan.fired
        assert len(dc.rows("resource_acquisitions")) == 1


class TestDatabaseCrashRestart:
    """End to end: a durable database dies mid-flush and reopens."""

    def _build(self, path):
        db = Database(str(path), node_count=3, k_safety=1)
        db.create_table(
            TableDefinition(
                "t",
                [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
            ),
            sort_order=["k"],
        )
        return db

    def test_kill_mid_flush_then_restart_serves_history(self, tmp_path):
        reset_all()
        db = self._build(tmp_path / "db")
        db.sql("INSERT INTO t VALUES (1, 1), (2, 2)")
        db.sql("SELECT k FROM t")
        db.cluster.run_tuple_movers()  # flushes the dc rings

        plan = FaultPlan(seed=17).arm("dc.flush.publish", "torn")
        with plan:
            for i in range(20):
                try:
                    db.sql(f"SELECT k FROM t WHERE k = {i % 3}")
                except InjectedFaultError:
                    break  # the "process" dies mid-flush
                if plan.fired:
                    break
        assert plan.fired, "dc flush never fired during the workload"

        del db
        recovered = Database.open(str(tmp_path / "db"))
        rows = recovered.sql(
            "SELECT statement FROM v_monitor.dc_requests_completed"
        )
        kinds = [r["statement"] for r in rows]
        # pre-crash history survives: the initial DML and query are there
        assert "insert" in kinds and "select" in kinds
        # and the recovered database keeps recording new statements
        recovered.sql("SELECT v FROM t WHERE k = 1")
        after = recovered.sql(
            "SELECT statement FROM v_monitor.dc_requests_completed"
        )
        assert len(after) == len(rows) + 1
