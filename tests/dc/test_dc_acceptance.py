"""The issue's acceptance scenario, end to end.

One durable database goes through load → query → node failure →
recovery → clean restart; afterwards the reopened database must serve
``dc_requests_completed`` and ``dc_node_events`` history *spanning the
restart*, and along the way at least one alert must both raise and
clear through ``v_monitor.alerts``.
"""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.faults import FaultPlan
from repro.monitor import reset_all

pytestmark = pytest.mark.dc


def alert_state(db, name):
    (row,) = db.sql(f"SELECT * FROM v_monitor.alerts WHERE alert = '{name}'")
    return row


def test_full_lifecycle_history_spans_restart(tmp_path):
    reset_all()
    path = str(tmp_path / "db")
    db = Database(path, node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "sales",
            [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
        ),
        sort_order=["k"],
    )

    # -- load + query: requests history accrues ------------------------
    db.sql("INSERT INTO sales VALUES (1, 10), (2, 20), (3, 30)")
    assert db.sql("SELECT v FROM sales WHERE k = 2") == [{"v": 20}]
    db.cluster.run_tuple_movers()

    # -- failover: a node dies mid-query, the query retries ------------
    victim = 2
    plan = FaultPlan(seed=1).arm("executor.scan", "crash", node=victim)
    with plan:
        assert db.sql("SELECT v FROM sales WHERE k = 1") == [{"v": 10}]
    assert plan.fired
    assert not db.cluster.membership.is_up(victim)

    down = alert_state(db, "node_down")
    assert down["state"] == "firing"
    assert down["times_raised"] == 1
    raised_tick = down["raised_tick"]
    assert raised_tick is not None

    # -- recovery: the supervisor heals it, the alert clears -----------
    db.cluster.supervisor.run_until_converged(max_ticks=64)
    assert db.cluster.membership.is_up(victim)
    down = alert_state(db, "node_down")
    assert down["state"] == "ok"
    assert down["cleared_tick"] is not None
    assert down["cleared_tick"] >= raised_tick
    assert down["times_raised"] == 1

    # both transitions are themselves DC history
    kinds = [r["kind"] for r in db.sql("SELECT kind FROM v_monitor.dc_errors")]
    assert "alert_raised" in kinds and "alert_cleared" in kinds

    pre_requests = db.sql(
        "SELECT record_id, statement FROM v_monitor.dc_requests_completed"
    )
    pre_events = db.sql(
        "SELECT record_id, kind FROM v_monitor.dc_node_events"
    )
    assert {"insert", "select"} <= {r["statement"] for r in pre_requests}
    pre_kinds = {r["kind"] for r in pre_events}
    assert "ejection" in pre_kinds
    assert "recovery_transition" in pre_kinds

    # -- restart: cold start serves the pre-restart history ------------
    del db
    reopened = Database.open(path)
    requests = reopened.sql(
        "SELECT record_id, statement FROM v_monitor.dc_requests_completed"
    )
    events = reopened.sql(
        "SELECT record_id, kind FROM v_monitor.dc_node_events"
    )
    pre_request_ids = {r["record_id"] for r in pre_requests}
    assert pre_request_ids <= {r["record_id"] for r in requests}
    assert "ejection" in {r["kind"] for r in events}

    # and the history keeps growing on the new incarnation: the reopen
    # itself appended recovery transitions after the recovered records
    new_events = [
        r["kind"]
        for r in events
        if r["record_id"] > max(e["record_id"] for e in pre_events)
    ]
    assert "recovery_transition" in new_events

    reopened.sql("SELECT k FROM sales")
    grown = reopened.sql(
        "SELECT record_id FROM v_monitor.dc_requests_completed"
    )
    assert len(grown) == len(requests) + 1
    assert alert_state(reopened, "node_down")["state"] == "ok"
