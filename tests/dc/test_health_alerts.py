"""Health engine tests: rule values, raise/clear hysteresis, history.

The alert engine is deterministic: every rule reads either the Data
Collector's rings or the metrics registry, thresholds come from
:class:`repro.dc.HealthConfig`, and transitions are stamped with the
simulated clock — so these tests drive it tick by tick.
"""

import pytest

from repro.core.database import Database
from repro.dc import HealthConfig, HealthMonitor
from repro.monitor import METRICS, reset_all

pytestmark = pytest.mark.dc


@pytest.fixture
def db(tmp_path):
    reset_all()
    return Database(str(tmp_path / "db"), node_count=3, durable=False)


def queue_waits(db, ticks_list):
    for i, ticks in enumerate(ticks_list):
        db.cluster.dc.record(
            "resource_acquisitions",
            "granted",
            pool_name="general",
            session_id=1,
            ticket_id=i,
            memory_rows=0,
            queued_ticks=ticks,
            detail="",
        )


class TestHysteresis:
    def test_queue_wait_raises_then_clears(self, db):
        health = db.health
        assert health.evaluate() == []
        assert health.state_of("queue_wait_p99").state == "ok"

        queue_waits(db, [20] * 10)  # p99 = 20 > raise_above 8
        assert "queue_wait_p99" in health.evaluate()
        state = health.state_of("queue_wait_p99")
        assert state.state == "firing"
        assert state.times_raised == 1
        assert state.raised_tick == db.cluster.clock.now

        # between clear (4) and raise (8): firing holds, no re-raise
        db.cluster.dc.reset()
        queue_waits(db, [6] * 10)
        assert "queue_wait_p99" in health.evaluate()
        assert health.state_of("queue_wait_p99").times_raised == 1

        # at/below the clear threshold: the alert clears
        db.cluster.dc.reset()
        queue_waits(db, [1] * 10)
        db.cluster.clock.advance(3)
        assert "queue_wait_p99" not in health.evaluate()
        state = health.state_of("queue_wait_p99")
        assert state.state == "ok"
        assert state.cleared_tick == db.cluster.clock.now

    def test_transitions_land_in_dc_errors(self, db):
        queue_waits(db, [20] * 10)
        db.health.evaluate()
        kinds = [r["kind"] for r in db.cluster.dc.rows("errors")]
        assert "alert_raised" in kinds
        db.cluster.dc.reset()
        queue_waits(db, [0] * 10)
        db.health.evaluate()
        kinds = [r["kind"] for r in db.cluster.dc.rows("errors")]
        assert "alert_cleared" in kinds

    def test_ok_band_never_raises(self, db):
        queue_waits(db, [6] * 10)  # above clear, below raise: stays ok
        assert "queue_wait_p99" not in db.health.evaluate()
        assert db.health.state_of("queue_wait_p99").state == "ok"


class TestRuleValues:
    def test_row_fallback_ratio(self, db):
        METRICS.inc("executor.row_fallback_blocks", 3)
        METRICS.inc("storage.blocks_vectorized", 1)  # ratio 0.75 > 0.5
        assert "row_engine_fallback" in db.health.evaluate()
        METRICS.inc("storage.blocks_vectorized", 50)  # ratio < 0.25
        assert "row_engine_fallback" not in db.health.evaluate()
        assert db.health.state_of("row_engine_fallback").state == "ok"

    def test_crc_failures_window(self, db):
        health = db.health
        METRICS.inc("storage.crc_failures", 3)  # > raise_count 2
        assert "crc_failures" in health.evaluate()
        # past the sliding window with no new failures: clears
        db.cluster.clock.advance(
            health.config.crc_failure_window_ticks + 1
        )
        assert "crc_failures" not in health.evaluate()

    def test_node_down_follows_membership(self, db):
        db.cluster.fail_node(2)
        assert "node_down" in db.health.evaluate()
        db.cluster.restart_node(2)
        supervisor = db.cluster.supervisor
        for _ in range(50):
            supervisor.tick()
            if not db.cluster.membership.down_nodes():
                break
        assert "node_down" not in db.health.evaluate()

    def test_config_thresholds_are_respected(self, db):
        config = HealthConfig(queue_wait_p99_budget_ticks=100.0)
        health = HealthMonitor(db, config=config)
        queue_waits(db, [20] * 10)  # would fire with the default budget
        assert "queue_wait_p99" not in health.evaluate()


class TestRows:
    def test_rows_shape(self, db):
        rows = db.health.rows()
        names = [r["alert"] for r in rows]
        assert names == [
            "crc_failures",
            "node_down",
            "node_quarantined",
            "queue_wait_p99",
            "row_engine_fallback",
        ]
        for row in rows:
            assert row["state"] == "ok"
            assert row["severity"] in ("warning", "critical")
            assert row["raise_above"] > row["clear_below"] or (
                row["raise_above"] == 0.0 and row["clear_below"] == 0.0
            )
