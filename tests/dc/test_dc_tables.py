"""The ``v_monitor.dc_*`` SQL surface and the emission wiring.

Every subsystem that emits into the Data Collector is driven here
through its public API and the result is read back *through SQL* — the
same surface the console and any operator tooling uses.
"""

import threading
import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import UnknownObjectError
from repro.monitor import reset_all
from repro.service import PoolConfig, SqlService

pytestmark = pytest.mark.dc


@pytest.fixture
def db(tmp_path):
    reset_all()
    db = Database(str(tmp_path / "db"), node_count=3, durable=False)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": 0} for i in range(10)])
    return db


class TestRequests:
    def test_statements_recorded_with_attribution(self, db):
        db.sql("SELECT k, v FROM t")
        db.sql("INSERT INTO t VALUES (100, 7)")
        rows = db.sql(
            "SELECT statement, success, rows_returned, engine "
            "FROM v_monitor.dc_requests_completed"
        )
        kinds = [r["statement"] for r in rows]
        assert kinds[-2:] == ["select", "insert"]
        select = rows[-2]
        assert select["success"] is True
        assert select["rows_returned"] == 10
        assert select["engine"] in ("kernel", "row", "mixed")

    def test_failed_statement_recorded_and_error_logged(self, db):
        with pytest.raises(UnknownObjectError):
            db.sql("SELECT x FROM nope")
        (row,) = db.sql(
            "SELECT * FROM v_monitor.dc_requests_completed "
            "WHERE success = FALSE"
        )
        assert row["error"] == "UnknownObjectError"
        errors = db.sql("SELECT kind, source FROM v_monitor.dc_errors")
        assert {"kind": "UnknownObjectError", "source": "sql"} in errors

    def test_monitor_selects_not_recorded(self, db):
        db.sql("SELECT k FROM t")
        before = len(db.sql("SELECT * FROM v_monitor.dc_requests_completed"))
        for _ in range(5):
            db.sql("SELECT * FROM v_monitor.dc_requests_completed")
            db.sql("SELECT * FROM v_monitor.alerts")
        after = len(db.sql("SELECT * FROM v_monitor.dc_requests_completed"))
        assert after == before  # polling leaves no trace of itself

    def test_service_sessions_attributed(self, db):
        service = SqlService(
            db, pools=[PoolConfig("reports", max_concurrency=2)]
        )
        try:
            session = service.connect(pool="reports")
            session.execute("SELECT k FROM t")
        finally:
            service.shutdown()
        (row,) = db.sql(
            "SELECT session_id, pool_name "
            "FROM v_monitor.dc_requests_completed WHERE statement = 'select'"
        )
        assert row["session_id"] == session.session_id
        assert row["pool_name"] == "reports"


class TestResourceAcquisitions:
    def test_grants_recorded(self, db):
        service = SqlService(db)
        try:
            session = service.connect()
            session.execute("SELECT k FROM t")
        finally:
            service.shutdown()
        rows = db.sql(
            "SELECT outcome, pool_name FROM v_monitor.dc_resource_acquisitions"
        )
        assert {"outcome": "granted", "pool_name": "general"} in rows


class TestLockWaits:
    def test_conflicting_writers_record_a_wait(self, db):
        service = SqlService(
            db, autocommit=False, lock_timeout_seconds=30.0
        )
        try:
            holder = service.connect()
            holder.execute("UPDATE t SET v = 1 WHERE k = 0")  # X on t
            blocked = service.connect()

            def run():
                try:
                    blocked.execute("UPDATE t SET v = 2 WHERE k = 1")
                except Exception:  # noqa: BLE001 - cancelled below
                    pass

            worker = threading.Thread(target=run)
            worker.start()
            locks = db.cluster.locks
            deadline = time.monotonic() + 5.0
            while not locks.waiting():
                assert time.monotonic() < deadline, "never parked"
                time.sleep(0.001)
            # the wait record is written at park time; unwind and go.
            blocked.cancel("test over")
            worker.join(timeout=10.0)
            holder.commit()
        finally:
            service.shutdown()
        rows = db.sql(
            "SELECT outcome, object_name, mode FROM v_monitor.dc_lock_waits"
        )
        assert any(
            r["outcome"] == "wait" and r["object_name"] == "t" for r in rows
        )


class TestTupleMover:
    def test_moveout_and_mergeout_recorded(self, db):
        for cycle in range(4):
            db.load("t", [{"k": 1000 + cycle * 10 + i, "v": 1} for i in range(10)])
            db.run_tuple_movers()
        kinds = {
            r["kind"]
            for r in db.sql("SELECT kind FROM v_monitor.dc_tuple_mover")
        }
        assert "moveout" in kinds and "mergeout" in kinds
        (sample,) = db.sql(
            "SELECT * FROM v_monitor.dc_tuple_mover "
            "WHERE kind = 'mergeout' LIMIT 1"
        )
        assert sample["containers_in"] >= 2
        assert sample["containers_out"] == 1
        assert sample["rows_out"] > 0


class TestSlowQueries:
    def test_threshold_filters(self, db):
        db.sql("SELECT k FROM t")
        db.health.config.slow_query_ms = 1e9
        assert db.sql("SELECT * FROM v_monitor.slow_queries") == []
        db.health.config.slow_query_ms = 0.0
        rows = db.sql("SELECT * FROM v_monitor.slow_queries")
        assert rows and all(r["threshold_ms"] == 0.0 for r in rows)
