"""Unit tests for :class:`repro.dc.DataCollector`.

Covers the ring-buffer retention (count and age bounds), the
CRC-framed segment persistence, cold-start recovery including
torn-tail truncation, and the kill switch.
"""

import os

import pytest

from repro.cluster.clock import SimulatedClock
from repro.dc import COMPONENTS, DataCollector
from repro.monitor.retention import RetentionPolicy

pytestmark = pytest.mark.dc


def collector(tmp_path, **kwargs):
    kwargs.setdefault("clock", SimulatedClock())
    return DataCollector(str(tmp_path / "dc"), **kwargs)


class TestRings:
    def test_record_and_rows_round_trip(self, tmp_path):
        dc = collector(tmp_path)
        dc.record("requests", "select", sql="SELECT 1", duration_ms=1.5)
        (row,) = dc.rows("requests")
        assert row["kind"] == "select"
        assert row["sql"] == "SELECT 1"
        assert row["duration_ms"] == 1.5
        assert row["record_id"] == 1
        assert row["tick"] == 0

    def test_unknown_component_rejected(self, tmp_path):
        dc = collector(tmp_path)
        with pytest.raises(KeyError):
            dc.record("no_such_component", "x")

    def test_count_retention_keeps_newest(self, tmp_path):
        dc = collector(
            tmp_path, retention=RetentionPolicy(max_records=10)
        )
        for i in range(25):
            dc.record("errors", "E", source="t", node_index=-1, detail=str(i))
        rows = dc.rows("errors")
        assert len(rows) == 10
        assert [r["detail"] for r in rows] == [str(i) for i in range(15, 25)]
        assert rows[-1]["record_id"] == 25  # ids keep counting

    def test_age_retention_evicts_on_tick(self, tmp_path):
        clock = SimulatedClock()
        dc = collector(
            tmp_path,
            clock=clock,
            retention=RetentionPolicy(max_records=100, max_age_ticks=5),
        )
        dc.record("node_events", "old")
        clock.advance(10)
        dc.record("node_events", "new")
        dc.on_tick()
        rows = dc.rows("node_events")
        assert [r["kind"] for r in rows] == ["new"]

    def test_negative_age_diff_keeps_records(self, tmp_path):
        """A reopened database starts its clock at 0 while recovered
        records carry high ticks; they must not be evicted."""
        clock = SimulatedClock()
        dc = collector(
            tmp_path,
            clock=clock,
            retention=RetentionPolicy(max_records=100, max_age_ticks=5),
        )
        clock.advance(50)
        dc.record("node_events", "late")
        clock.now = 0  # simulate the fresh clock of a cold start
        dc.on_tick()
        assert len(dc.rows("node_events")) == 1

    def test_counts_and_reset(self, tmp_path):
        dc = collector(tmp_path)
        dc.record("requests", "select")
        dc.record("errors", "E", source="t", node_index=-1, detail="")
        counts = dc.counts()
        assert counts["requests"] == 1 and counts["errors"] == 1
        dc.reset()
        assert all(n == 0 for n in dc.counts().values())

    def test_disabled_collector_records_nothing(self, tmp_path):
        dc = collector(tmp_path, enabled=False)
        dc.record("requests", "select")
        assert dc.rows("requests") == []

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DC_DISABLE", "1")
        dc = collector(tmp_path)
        dc.record("requests", "select")
        assert dc.rows("requests") == []


class TestPersistence:
    def test_flush_writes_segments_and_recovery_reads_them(self, tmp_path):
        dc = collector(tmp_path, persist=True, flush_interval=4)
        for i in range(6):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()
        files = os.listdir(tmp_path / "dc")
        assert any(f.startswith("requests_") for f in files)

        reopened = collector(tmp_path, persist=True)
        rows = reopened.rows("requests")
        assert [r["sql"] for r in rows] == [f"q{i}" for i in range(6)]
        # ids continue after the recovered history
        reopened.record("requests", "select", sql="q6")
        assert reopened.rows("requests")[-1]["record_id"] == 7

    def test_fresh_wipes_prior_history(self, tmp_path):
        dc = collector(tmp_path, persist=True)
        dc.record("requests", "select", sql="old")
        dc.flush()
        fresh = collector(tmp_path, persist=True, fresh=True)
        assert fresh.rows("requests") == []

    def test_flush_interval_auto_flushes(self, tmp_path):
        dc = collector(tmp_path, persist=True, flush_interval=3)
        for i in range(3):
            dc.record("errors", "E", source="t", node_index=-1, detail="")
        # the third record crossed the interval: segments exist already
        assert any(
            f.startswith("errors_") for f in os.listdir(tmp_path / "dc")
        )

    def test_segment_rotation_and_pruning(self, tmp_path):
        dc = collector(
            tmp_path,
            persist=True,
            flush_interval=1,
            segment_records=4,
            retention=RetentionPolicy(max_records=8),
        )
        for i in range(40):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()
        segments = [
            f
            for f in os.listdir(tmp_path / "dc")
            if f.startswith("requests_")
        ]
        # sealed history is bounded: retention caps on-disk segments too
        assert 1 <= len(segments) <= 4
        reopened = collector(
            tmp_path, persist=True, retention=RetentionPolicy(max_records=8)
        )
        rows = reopened.rows("requests")
        assert len(rows) == 8
        assert rows[-1]["sql"] == "q39"

    def test_flush_straddling_rotation_loses_nothing(self, tmp_path):
        """Regression: a flush batch that fills the active segment
        mid-batch must also rewrite the sealed segment — the records
        that completed it used to be silently dropped on disk."""
        dc = collector(
            tmp_path,
            persist=True,
            flush_interval=100,
            segment_records=10,
        )
        for i in range(8):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()  # segment 1 at 8 records
        for i in range(8, 14):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()  # q8/q9 seal segment 1, q10..q13 open segment 2
        with open(tmp_path / "dc" / "requests_000001.log", "rb") as fh:
            assert len(fh.read().splitlines()) == 10  # sealed AND full

        reopened = collector(tmp_path, persist=True)
        rows = reopened.rows("requests")
        assert [r["sql"] for r in rows] == [f"q{i}" for i in range(14)]
        assert [r["record_id"] for r in rows] == list(range(1, 15))

    def test_deferred_records_skip_the_inline_flush(self, tmp_path):
        """``defer_flush=True`` batches the record without segment I/O
        even past the flush threshold; the next non-deferred record
        (or explicit flush) persists the whole backlog."""
        dc = collector(tmp_path, persist=True, flush_interval=2)
        dc.record("lock_waits", "wait", defer_flush=True, txn_id=1)
        dc.record("lock_waits", "wait", defer_flush=True, txn_id=2)
        assert not (tmp_path / "dc").exists()  # over threshold, no I/O
        dc.record("requests", "select", sql="q0")  # crosses it for real
        reopened = collector(tmp_path, persist=True)
        assert len(reopened.rows("lock_waits")) == 2
        assert len(reopened.rows("requests")) == 1

    def test_torn_tail_truncated_to_valid_prefix(self, tmp_path):
        dc = collector(tmp_path, persist=True, flush_interval=1)
        for i in range(5):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()
        (segment,) = [
            f
            for f in os.listdir(tmp_path / "dc")
            if f.startswith("requests_")
        ]
        path = str(tmp_path / "dc" / segment)
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[:-7])  # tear the last record mid-line

        reopened = collector(tmp_path, persist=True)
        rows = reopened.rows("requests")
        assert [r["sql"] for r in rows] == [f"q{i}" for i in range(4)]

    def test_corrupt_middle_record_drops_rest_of_segment(self, tmp_path):
        dc = collector(tmp_path, persist=True, flush_interval=1)
        for i in range(5):
            dc.record("requests", "select", sql=f"q{i}")
        dc.flush()
        (segment,) = [
            f
            for f in os.listdir(tmp_path / "dc")
            if f.startswith("requests_")
        ]
        path = str(tmp_path / "dc" / segment)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        lines[2] = "deadbeef " + lines[2].split(" ", 1)[1]  # bad crc
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines)

        reopened = collector(tmp_path, persist=True)
        rows = reopened.rows("requests")
        assert [r["sql"] for r in rows] == ["q0", "q1"]

    def test_all_components_have_rings(self, tmp_path):
        dc = collector(tmp_path)
        for component in COMPONENTS:
            assert dc.rows(component) == []
