"""Console front-end tests: one-shot snapshot rendering.

``main(argv)`` is called in-process (the same path
``python -m repro.console`` takes) against a real on-disk database, so
these tests cover argument parsing, ``Database.open`` attachment, and
the full render path over the SQL tables.
"""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.console import main, render
from repro.monitor import reset_all

pytestmark = pytest.mark.dc


@pytest.fixture
def db_path(tmp_path):
    reset_all()
    path = str(tmp_path / "db")
    db = Database(path, node_count=3)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)]
        ),
        sort_order=["k"],
    )
    db.sql("INSERT INTO t VALUES (1, 2), (3, 4)")
    db.sql("SELECT k, v FROM t")
    db.run_tuple_movers()
    del db
    return path


def test_snapshot_renders_every_section(db_path, capsys):
    assert main(["--db", db_path, "--snapshot"]) == 0
    out = capsys.readouterr().out
    for section in (
        "NODES",
        "POOLS",
        "SESSIONS",
        "ALERTS",
        "SLOW QUERIES",
        "RECENT REQUESTS",
        "NODE EVENTS",
    ):
        assert f"── {section} " in out
    # pre-restart history is served after Database.open
    assert "select" in out
    assert "node00" in out
    assert "alerts_firing=" in out


def test_snapshot_shows_firing_alerts_first(db_path):
    db = Database.open(db_path)
    # force one warning alert to fire deterministically
    from repro.monitor import METRICS

    METRICS.inc("executor.row_fallback_blocks", 100)
    out = render(db, db_path)
    assert "alerts_firing=1 (row_engine_fallback)" in out
    alerts = out.split("── ALERTS ")[1].splitlines()
    first_row = alerts[3]  # header, rule line, then rows
    assert "row_engine_fallback" in first_row
    assert "firing" in first_row


def test_live_mode_reopens_database_each_frame(db_path, monkeypatch, capsys):
    """Live mode must track the on-disk state: every frame re-opens the
    database instead of re-rendering one stale in-process instance."""
    from repro.core.database import Database as Db

    real_open = Db.open.__func__
    opens = []

    def counting_open(cls, path, *args, **kwargs):
        opens.append(path)
        return real_open(cls, path, *args, **kwargs)

    monkeypatch.setattr(Db, "open", classmethod(counting_open))

    sleeps = []

    def interrupting_sleep(_interval):
        sleeps.append(1)
        if len(sleeps) >= 2:
            raise KeyboardInterrupt

    monkeypatch.setattr("repro.console.time.sleep", interrupting_sleep)

    assert main(["--db", db_path, "--interval", "0"]) == 0
    assert opens == [db_path, db_path]  # one fresh open per frame
    out = capsys.readouterr().out
    assert out.count("repro console — Data Collector dashboard") == 2


def test_missing_db_argument_is_an_error():
    with pytest.raises(SystemExit):
        main(["--snapshot"])


def test_long_cells_truncated(db_path):
    db = Database.open(db_path)
    db.sql("SELECT k, v FROM t WHERE k = 1 OR k = 3 OR k = 5 OR k = 7")
    wide = "SELECT k FROM t WHERE " + " OR ".join(
        f"k = {i}" for i in range(40)
    )
    db.sql(wide)
    out = render(db, db_path)
    for line in out.splitlines():
        assert len(line) < 400  # one wide SQL cannot wreck the layout
    assert "…" in out
