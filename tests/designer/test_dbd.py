"""Tests for the Database Designer."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.designer import (
    BALANCED,
    LOAD_OPTIMIZED,
    QUERY_OPTIMIZED,
    DatabaseDesigner,
)
from repro.errors import DesignError


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "metrics",
            [
                ColumnDef("metric", types.VARCHAR),
                ColumnDef("meter", types.INTEGER),
                ColumnDef("ts", types.INTEGER),
                ColumnDef("value", types.FLOAT),
            ],
        ),
        sort_order=["meter", "ts"],
    )
    rows = [
        {
            "metric": f"m{i % 5}",
            "meter": i % 40,
            "ts": i * 300,
            "value": float(i % 97),
        }
        for i in range(4000)
    ]
    db.load("metrics", rows)
    db.analyze_statistics()
    return db


WORKLOAD = [
    "SELECT metric, count(*) FROM metrics WHERE metric = 'm3' GROUP BY metric",
    "SELECT metric, sum(value) FROM metrics GROUP BY metric",
]


class TestCandidateEnumeration:
    def test_candidates_cover_predicate_and_group_columns(self, db):
        designer = DatabaseDesigner(db)
        from repro.sql.analyzer import Analyzer
        from repro.sql.parser import parse

        analyzer = Analyzer(db.cluster.catalog)
        workload = [analyzer.analyze_select(parse(q)) for q in WORKLOAD]
        candidates = designer.enumerate_candidates(workload)
        assert candidates
        sort_leads = {c.definition.sort_order[0] for c in candidates}
        assert "metric" in sort_leads

    def test_candidates_are_valid_projections(self, db):
        designer = DatabaseDesigner(db)
        from repro.sql.analyzer import Analyzer
        from repro.sql.parser import parse

        analyzer = Analyzer(db.cluster.catalog)
        workload = [analyzer.analyze_select(parse(q)) for q in WORKLOAD]
        for candidate in designer.enumerate_candidates(workload):
            table = db.cluster.catalog.table(candidate.definition.anchor_table)
            assert candidate.definition.is_super_for(table)


class TestDesign:
    def test_balanced_design_proposes_beneficial_projection(self, db):
        designer = DatabaseDesigner(db)
        proposal = designer.design_sql(WORKLOAD, policy="balanced")
        assert proposal.policy is BALANCED
        assert len(proposal.projections) <= 1
        if proposal.projections:
            assert proposal.designed_cost <= proposal.baseline_cost

    def test_load_optimized_proposes_nothing(self, db):
        designer = DatabaseDesigner(db)
        proposal = designer.design_sql(WORKLOAD, policy="load-optimized")
        assert proposal.projections == []

    def test_query_optimized_allows_more(self, db):
        designer = DatabaseDesigner(db)
        balanced = designer.design_sql(WORKLOAD, policy="balanced")
        rich = designer.design_sql(WORKLOAD, policy="query-optimized")
        assert rich.policy is QUERY_OPTIMIZED
        assert len(rich.projections) >= len(balanced.projections)

    def test_empty_workload_rejected(self, db):
        with pytest.raises(DesignError):
            DatabaseDesigner(db).design([], policy="balanced")

    def test_unknown_policy_rejected(self, db):
        with pytest.raises(DesignError):
            DatabaseDesigner(db).design_sql(WORKLOAD, policy="turbo")

    def test_summary_readable(self, db):
        proposal = DatabaseDesigner(db).design_sql(WORKLOAD, "query-optimized")
        text = proposal.summary()
        assert "Design (query-optimized)" in text


class TestEncodingPhase:
    def test_empirical_encodings_match_data_shape(self, db):
        designer = DatabaseDesigner(db)
        proposal = designer.design_sql(WORKLOAD, policy="query-optimized")
        for projection in proposal.projections:
            encodings = proposal.encodings[projection.name]
            lead = projection.sort_order[0]
            if lead == "metric":
                # 5 distinct sorted values -> RLE is unbeatable
                assert encodings["metric"] == "RLE"

    def test_deploy_creates_projections(self, db):
        designer = DatabaseDesigner(db)
        proposal = designer.design_sql(WORKLOAD, policy="query-optimized")
        created = designer.deploy(proposal)
        assert created == len(proposal.projections)
        for projection in proposal.projections:
            family = db.cluster.catalog.family(projection.name)
            # populated via refresh
            total = sum(
                len(node.manager.read_visible_rows(copy.name, db.latest_epoch))
                for node in db.cluster.nodes
                for copy in [family.primary]
            )
            assert total == 4000

    def test_deployed_projection_used_by_optimizer(self, db):
        designer = DatabaseDesigner(db)
        proposal = designer.design_sql(WORKLOAD, policy="query-optimized")
        designer.deploy(proposal)
        db.analyze_statistics()
        rows = db.sql(WORKLOAD[0])
        assert rows[0]["count"] == 800
