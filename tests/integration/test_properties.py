"""Cross-cutting property tests (DESIGN.md §5 invariants)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ColumnDef, Database, TableDefinition, types
from repro.cluster import rebalance
from repro.projections import (
    HashSegmentation,
    ProjectionColumn,
    ProjectionDefinition,
)

row_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["a", "bb", "ccc", ""]),
        st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False,
                                       min_value=-1e6, max_value=1e6)),
    ),
    min_size=1,
    max_size=60,
    unique_by=lambda t: t[0],
)


def build_db(tmp_path_factory, rows, node_count=3):
    db = Database(
        str(tmp_path_factory.mktemp("prop")),
        node_count=node_count,
        k_safety=1 if node_count > 1 else 0,
    )
    db.create_table(
        TableDefinition(
            "t",
            [
                ColumnDef("k", types.INTEGER),
                ColumnDef("s", types.VARCHAR),
                ColumnDef("f", types.FLOAT),
            ],
            primary_key=("k",),
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": k, "s": s, "f": f} for k, s, f in rows])
    return db


def multiset(rows):
    return sorted(
        tuple(sorted((key, repr(value)) for key, value in row.items()))
        for row in rows
    )


class TestProjectionEquivalence:
    @given(rows=row_lists)
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_every_projection_answers_identically(self, tmp_path_factory, rows):
        db = build_db(tmp_path_factory, rows)
        narrow = ProjectionDefinition(
            name="t_by_s",
            anchor_table="t",
            columns=[
                ProjectionColumn("s", types.VARCHAR),
                ProjectionColumn("k", types.INTEGER),
                ProjectionColumn("f", types.FLOAT),
            ],
            sort_order=["s", "k"],
            segmentation=HashSegmentation(("s",)),
        )
        db.add_projection(narrow)
        db.run_tuple_movers()
        epoch = db.latest_epoch
        reference = None
        for family in db.cluster.catalog.families_for_table("t"):
            for copy in family.all_copies:
                gathered = []
                if copy.segmentation.replicated:
                    continue
                for node in db.cluster.nodes:
                    gathered.extend(
                        node.manager.read_visible_rows(copy.name, epoch)
                    )
                shaped = multiset(
                    {"k": r["k"], "s": r["s"], "f": r["f"]} for r in gathered
                )
                if reference is None:
                    reference = shaped
                else:
                    assert shaped == reference, copy.name


class TestRebalanceInvariance:
    @given(
        rows=row_lists,
        new_nodes=st.integers(min_value=2, max_value=6),
    )
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_rebalance_preserves_table(self, tmp_path_factory, rows, new_nodes):
        db = build_db(tmp_path_factory, rows)
        db.run_tuple_movers()
        epoch = db.latest_epoch
        before = multiset(db.cluster.read_table("t", epoch))
        rebalance(db.cluster, new_nodes)
        after = multiset(db.cluster.read_table("t", epoch))
        assert before == after
        # placement matches the new ring exactly
        family = db.cluster.catalog.super_projection_for("t")
        for node in db.cluster.nodes:
            for row in node.manager.read_visible_rows(family.primary.name, epoch):
                assert (
                    family.primary.segmentation.node_for_row(row, new_nodes)
                    == node.index
                )


class TestEncodingChoiceNeverLoses:
    @given(
        values=st.lists(
            st.integers(min_value=-(10**9), max_value=10**9),
            min_size=1, max_size=2000,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_auto_never_beaten_by_plain(self, values):
        from repro import types as T
        from repro.storage.encodings import PLAIN, choose_encoding

        chosen = choose_encoding(T.INTEGER, values)
        assert len(chosen.encode(values)) <= len(PLAIN.encode(values))

    @given(
        values=st.lists(
            st.sampled_from(["x", "y", "z"]), min_size=1, max_size=2000
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_auto_roundtrips_strings(self, values):
        from repro import types as T
        from repro.storage.encodings import choose_encoding

        chosen = choose_encoding(T.VARCHAR, values)
        assert chosen.decode(chosen.encode(values), len(values)) == values


class TestSqlAgainstBruteForce:
    @given(
        rows=row_lists,
        threshold=st.integers(min_value=0, max_value=10**6),
    )
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_filtered_count(self, tmp_path_factory, rows, threshold):
        db = build_db(tmp_path_factory, rows, node_count=1)
        got = db.sql(f"SELECT count(*) AS n FROM t WHERE k >= {threshold}")
        expected = sum(1 for k, _, _ in rows if k >= threshold)
        assert got == [{"n": expected}]

    @given(rows=row_lists)
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_group_by_string(self, tmp_path_factory, rows):
        db = build_db(tmp_path_factory, rows, node_count=1)
        got = db.sql("SELECT s, count(*) AS n FROM t GROUP BY s")
        from collections import Counter

        expected = Counter(s for _, s, _ in rows)
        assert {row["s"]: row["n"] for row in got} == dict(expected)
