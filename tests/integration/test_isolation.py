"""Isolation-level semantics tests (section 5)."""

import pytest

from repro import ColumnDef, Database, IsolationLevel, TableDefinition, types
from repro.execution import AggregateSpec, ColumnRef
from repro.optimizer import GroupByNode, ScanNode

C = ColumnRef


def count_plan():
    return GroupByNode(
        ScanNode("t", ["k"]), [], [AggregateSpec("COUNT", None, "n")]
    )


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition("t", [ColumnDef("k", types.INTEGER)], primary_key=("k",))
    )
    db.load("t", [{"k": i} for i in range(100)])
    return db


class TestReadCommitted:
    def test_snapshot_refreshes_per_statement(self, db):
        reader = db.session()
        assert reader.query(count_plan()) == [{"n": 100}]
        db.load("t", [{"k": 1000}])
        assert reader.query(count_plan()) == [{"n": 101}]

    def test_queries_take_no_locks(self, db):
        reader = db.session()
        reader.query(count_plan())
        assert db.system("locks") == []
        # a writer is never blocked by the reader
        writer = db.session()
        writer.delete("t", C("k") == 1)
        writer.commit()


class TestSerializable:
    def test_snapshot_pinned_for_transaction(self, db):
        reader = db.session(isolation=IsolationLevel.SERIALIZABLE)
        assert reader.query(count_plan()) == [{"n": 100}]
        # another session wants to write: blocked by the S lock
        from repro.errors import LockTimeoutError

        writer = db.session()
        with pytest.raises(LockTimeoutError):
            writer.delete("t", C("k") == 1)
        # the reader keeps seeing its snapshot even after new inserts
        # by sessions that only need the I lock (compatible? no: S vs I
        # is incompatible too — inserts also blocked)
        with pytest.raises(LockTimeoutError):
            writer.insert("t", [{"k": 5000}])
        reader.commit()
        writer.insert("t", [{"k": 5000}])
        writer.commit()

    def test_repeatable_reads_within_txn(self, db):
        reader = db.session(isolation=IsolationLevel.SERIALIZABLE)
        first = reader.query(count_plan())
        # sneak a commit through a different table path: create second
        # table and write there (no lock conflict with reader's S on t)
        db.sql("CREATE TABLE u (x INTEGER)")
        db.sql("INSERT INTO u VALUES (1)")
        # reader's snapshot is pinned: still the old epoch for t
        second = reader.query(count_plan())
        assert first == second
        reader.commit()


class TestRollbackSemantics:
    def test_rollback_discards_everything(self, db):
        session = db.session()
        session.insert("t", [{"k": 777}])
        session.delete("t", C("k") == 0)
        session.rollback()
        rows = db.session().query(count_plan())
        assert rows == [{"n": 100}]  # neither insert nor delete applied

    def test_committed_txn_cannot_continue(self, db):
        session = db.session()
        session.insert("t", [{"k": 888}])
        session.commit()
        # a new implicit transaction starts transparently
        session.insert("t", [{"k": 889}])
        session.commit()
        assert db.session().query(count_plan()) == [{"n": 102}]

    def test_update_own_pending_rows_not_supported_but_consistent(self, db):
        # UPDATE sees the snapshot, not the txn's own pending inserts
        # (documented restriction); the pending insert still commits.
        session = db.session()
        session.insert("t", [{"k": 950}])
        changed = session.update("t", {"k": 951}, C("k") == 950)
        assert changed == 0  # not yet visible to update's snapshot scan
        session.commit()
        final = {row["k"] for row in db.cluster.read_table("t", db.latest_epoch)}
        assert 950 in final
