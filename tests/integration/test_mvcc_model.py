"""Model-based MVCC property test.

Random interleavings of inserts, deletes, moveouts, mergeouts, AHM
advances and node failures/recoveries are applied both to the real
system and to a trivial reference model (a list of (row, insert_epoch,
delete_epoch) triples).  After every step, the visible snapshot at
*every* epoch since the AHM must match the model — the paper's central
correctness claim: "an epoch boundary represents a globally consistent
snapshot" no matter what the tuple mover or recovery did in between.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ColumnDef, Database, TableDefinition, types


class Model:
    """Reference implementation of epoch-visibility semantics."""

    def __init__(self):
        self.records: list[tuple[int, int, int | None]] = []  # (key, ins, del)
        self._next_key = 0

    def insert(self, count: int, epoch: int) -> None:
        for _ in range(count):
            self.records.append((self._next_key, epoch, None))
            self._next_key += 1

    def delete_where_mod(self, modulus: int, commit_epoch: int, snapshot: int):
        out = []
        for key, ins, dele in self.records:
            visible = ins <= snapshot and (dele is None or dele > snapshot)
            if visible and key % modulus == 0:
                out.append((key, ins, commit_epoch))
            else:
                out.append((key, ins, dele))
        self.records = out

    def visible(self, epoch: int) -> set[int]:
        return {
            key
            for key, ins, dele in self.records
            if ins <= epoch and (dele is None or dele > epoch)
        }


operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(min_value=1, max_value=30)),
        st.tuples(st.just("delete"), st.integers(min_value=2, max_value=5)),
        st.tuples(st.just("moveout"), st.just(0)),
        st.tuples(st.just("mergeout"), st.just(0)),
        st.tuples(st.just("ahm"), st.just(0)),
        st.tuples(st.just("failover"), st.integers(min_value=1, max_value=2)),
    ),
    min_size=3,
    max_size=12,
)


@given(ops=operations)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_every_epoch_is_a_consistent_snapshot(tmp_path_factory, ops):
    root = str(tmp_path_factory.mktemp("mvcc"))
    db = Database(root, node_count=3, k_safety=1, wos_capacity=20)
    db.create_table(
        TableDefinition(
            "t",
            [ColumnDef("k", types.INTEGER), ColumnDef("pad", types.VARCHAR)],
            primary_key=("k",),
        ),
        sort_order=["k"],
    )
    model = Model()
    checkpoints: list[int] = []

    def check_all_epochs():
        low = max(db.cluster.epochs.ahm, 0)
        for epoch in [e for e in checkpoints if e >= low] + [db.latest_epoch]:
            got = {
                row["k"] for row in db.cluster.read_table("t", epoch)
            }
            assert got == model.visible(epoch), f"divergence at epoch {epoch}"

    for op, arg in ops:
        if op == "insert":
            rows = [
                {"k": model._next_key + i, "pad": f"p{i % 3}"}
                for i in range(arg)
            ]
            session = db.session()
            session.insert("t", rows)
            epoch = session.commit()
            model.insert(arg, epoch)
            checkpoints.append(epoch)
        elif op == "delete":
            session = db.session()
            snapshot = session.begin().snapshot_epoch
            session.delete("t", lambda row, m=arg: row["k"] % m == 0)
            epoch = session.commit()
            model.delete_where_mod(arg, epoch, snapshot)
            checkpoints.append(epoch)
        elif op == "moveout":
            for node_index in db.cluster.membership.up_nodes():
                node = db.cluster.nodes[node_index]
                for name in node.manager.projection_names():
                    node.mover.moveout(name)
                    node.manager.persist_delete_vectors(name)
        elif op == "mergeout":
            for node_index in db.cluster.membership.up_nodes():
                node = db.cluster.nodes[node_index]
                for name in node.manager.projection_names():
                    node.mover.mergeout(name, db.cluster.epochs.ahm)
        elif op == "ahm":
            db.cluster.run_tuple_movers()  # advances LGE, then AHM
            db.cluster.epochs.advance_ahm()
        elif op == "failover":
            node_index = arg
            if db.cluster.membership.is_up(node_index):
                # only fail when durable: run movers so nothing is
                # WOS-only, exactly like an operator would
                db.cluster.run_tuple_movers()
                db.fail_node(node_index)
                check_all_epochs()
                db.recover_node(node_index)
        check_all_epochs()


def test_single_long_scenario(tmp_path):
    """A deterministic long interleaving (fast regression guard)."""
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1, wos_capacity=10)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("pad", types.VARCHAR)]
        ),
        sort_order=["k"],
    )
    model = Model()
    epochs = []
    for round_index in range(6):
        rows = [
            {"k": model._next_key + i, "pad": "x"} for i in range(25)
        ]
        session = db.session()
        session.insert("t", rows)
        epoch = session.commit()
        model.insert(25, epoch)
        epochs.append(epoch)
        if round_index % 2:
            session = db.session()
            snapshot = session.begin().snapshot_epoch
            session.delete("t", lambda row: row["k"] % 3 == 0)
            depoch = session.commit()
            model.delete_where_mod(3, depoch, snapshot)
            epochs.append(depoch)
        db.cluster.run_tuple_movers()
    for epoch in epochs:
        got = {row["k"] for row in db.cluster.read_table("t", epoch)}
        assert got == model.visible(epoch)
