"""Meta-test: the bench report name cannot drift between layers.

``benchmarks/conftest.py`` writes the per-bench wall-time + metrics
report; ``tools/check.sh`` smoke-verifies that exact file; README and
DESIGN tell people where to look.  A PR that bumps one but not the
others leaves check.sh asserting on a stale file that the bench run
never refreshes — this test makes that a loud failure instead.
"""

import importlib.util
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _conftest_report_name() -> str:
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.BENCH_REPORT


def test_report_name_shape():
    name = _conftest_report_name()
    assert re.fullmatch(r"BENCH_PR\d+\.json", name), name


def test_check_sh_expects_the_same_report():
    name = _conftest_report_name()
    script = (REPO / "tools" / "check.sh").read_text(encoding="utf-8")
    mentioned = set(re.findall(r"BENCH_PR\d+\.json", script))
    assert mentioned == {name}, (
        f"tools/check.sh references {sorted(mentioned)} but "
        f"benchmarks/conftest.py writes {name}"
    )


def test_docs_reference_the_same_report():
    name = _conftest_report_name()
    for doc in ("README.md", "DESIGN.md"):
        text = (REPO / doc).read_text(encoding="utf-8")
        stale = set(re.findall(r"BENCH_PR\d+\.json", text)) - {name}
        assert not stale, f"{doc} still references {sorted(stale)}"
