"""End-to-end tests through the Database facade (programmatic plans)."""

import pytest

from repro import ColumnDef, Database, IsolationLevel, TableDefinition, types
from repro.errors import LockTimeoutError, PlanningError
from repro.execution import AggregateSpec, ColumnRef, Literal
from repro.execution.operators.join import JoinType
from repro.optimizer import (
    FilterNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from repro.projections import Replicated

C = ColumnRef
L = Literal


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "orders",
            [
                ColumnDef("oid", types.INTEGER),
                ColumnDef("cid", types.INTEGER),
                ColumnDef("amount", types.FLOAT),
                ColumnDef("day", types.INTEGER),
            ],
            primary_key=("oid",),
        ),
        sort_order=["day", "oid"],
    )
    db.create_table(
        TableDefinition(
            "customers",
            [
                ColumnDef("cid", types.INTEGER),
                ColumnDef("name", types.VARCHAR),
                ColumnDef("region", types.VARCHAR),
            ],
            primary_key=("cid",),
        ),
        segmentation=Replicated(),
    )
    db.load(
        "customers",
        [
            {"cid": c, "name": f"cust{c}", "region": "east" if c % 2 else "west"}
            for c in range(20)
        ],
    )
    db.load(
        "orders",
        [
            {"oid": o, "cid": o % 20, "amount": float(o % 100), "day": o % 30}
            for o in range(2000)
        ],
    )
    db.analyze_statistics()
    return db


def orders_scan(columns, predicate=None):
    return ScanNode("orders", columns, predicate=predicate)


class TestScanQueries:
    def test_count_star(self, db):
        plan = GroupByNode(
            orders_scan(["oid"]), [], [AggregateSpec("COUNT", None, "n")]
        )
        assert db.query(plan) == [{"n": 2000}]

    def test_filtered_scan(self, db):
        plan = orders_scan(["oid", "day"], predicate=C("day") == L(3))
        rows = db.query(plan)
        assert len(rows) == len([o for o in range(2000) if o % 30 == 3])
        assert all(row["day"] == 3 for row in rows)

    def test_group_by(self, db):
        plan = GroupByNode(
            orders_scan(["day", "amount"]),
            [("day", C("day"))],
            [
                AggregateSpec("COUNT", None, "n"),
                AggregateSpec("SUM", C("amount"), "total"),
            ],
        )
        rows = db.query(plan)
        assert len(rows) == 30
        assert sum(row["n"] for row in rows) == 2000

    def test_group_by_having(self, db):
        plan = GroupByNode(
            orders_scan(["cid"]),
            [("cid", C("cid"))],
            [AggregateSpec("COUNT", None, "n")],
            having=C("n") > L(99),
        )
        rows = db.query(plan)
        assert all(row["n"] >= 100 for row in rows)

    def test_sort_limit(self, db):
        plan = LimitNode(
            SortNode(
                orders_scan(["oid", "amount"]),
                [(C("amount"), False), (C("oid"), True)],
            ),
            limit=5,
        )
        rows = db.query(plan)
        assert len(rows) == 5
        assert rows[0]["amount"] == 99.0

    def test_projection_exprs(self, db):
        plan = ProjectNode(
            orders_scan(["oid", "amount"], predicate=C("oid") < L(3)),
            {"oid": C("oid"), "double_amount": C("amount") * L(2)},
        )
        rows = sorted(db.query(plan), key=lambda row: row["oid"])
        assert rows[1]["double_amount"] == 2.0

    def test_historical_query(self, db):
        epoch_before = db.latest_epoch
        session = db.session()
        session.delete("orders", C("oid") < L(1000))
        session.commit()
        count_plan = GroupByNode(
            orders_scan(["oid"]), [], [AggregateSpec("COUNT", None, "n")]
        )
        assert db.query(count_plan) == [{"n": 1000}]
        assert db.session().query(count_plan, at_epoch=epoch_before) == [
            {"n": 2000}
        ]


def join_plan():
    return JoinNode(
        ScanNode("orders", ["oid", "cid", "amount"]),
        ScanNode("customers", ["cid", "region"], rename={"cid": "c_cid"}),
        JoinType.INNER,
        [C("cid")],
        [C("c_cid")],
    )


class TestJoins:
    @pytest.mark.parametrize("optimizer", ["star", "starified", "v2"])
    def test_join_all_generations(self, db, optimizer):
        plan = GroupByNode(
            join_plan(),
            [("region", C("region"))],
            [AggregateSpec("COUNT", None, "n")],
        )
        rows = sorted(db.query(plan, optimizer=optimizer), key=lambda r: r["region"])
        assert [row["region"] for row in rows] == ["east", "west"]
        assert sum(row["n"] for row in rows) == 2000

    def test_sip_reduces_scan(self, db):
        # dimension restricted on a non-join column: transitive
        # predicates cannot help, so SIP does the early filtering.
        plan = JoinNode(
            ScanNode("orders", ["oid", "cid"]),
            ScanNode(
                "customers",
                ["cid", "region"],
                predicate=C("name") == L("cust7"),
                rename={"cid": "c_cid"},
            ),
            JoinType.INNER,
            [C("cid")],
            [C("c_cid")],
        )
        session = db.session()
        rows = session.query(plan)
        assert len(rows) == 100  # oid % 20 == 7
        assert session.last_stats.rows_sip_filtered > 0

    def test_star_opt_rejects_non_colocated(self, db, tmp_path):
        # both tables hash-segmented on non-join keys: StarOpt cannot place
        db2 = Database(str(tmp_path / "db2"), node_count=3, k_safety=1)
        db2.create_table(
            TableDefinition(
                "a", [ColumnDef("x", types.INTEGER), ColumnDef("y", types.INTEGER)]
            )
        )
        db2.create_table(
            TableDefinition(
                "b", [ColumnDef("p", types.INTEGER), ColumnDef("q", types.INTEGER)]
            )
        )
        db2.load("a", [{"x": i, "y": i % 5} for i in range(50)])
        db2.load("b", [{"p": i, "q": i % 5} for i in range(50)])
        db2.analyze_statistics()
        plan = JoinNode(
            ScanNode("a", ["x", "y"]),
            ScanNode("b", ["p", "q"]),
            JoinType.INNER,
            [C("y")],
            [C("q")],
        )
        with pytest.raises(PlanningError):
            db2.query(plan, optimizer="star")
        # starified and v2 both handle it
        assert len(db2.query(plan, optimizer="starified")) == 500
        assert len(db2.query(plan, optimizer="v2")) == 500

    def test_left_join(self, db):
        # delete a customer; its orders survive a LEFT join with NULLs
        session = db.session()
        session.delete("customers", C("cid") == L(3))
        session.commit()
        plan = JoinNode(
            ScanNode("orders", ["oid", "cid"]),
            ScanNode("customers", ["cid", "region"], rename={"cid": "c_cid"}),
            JoinType.LEFT,
            [C("cid")],
            [C("c_cid")],
        )
        rows = db.query(plan)
        assert len(rows) == 2000
        orphans = [row for row in rows if row["cid"] == 3]
        assert all(row["region"] is None for row in orphans)


class TestTransactions:
    def test_own_inserts_visible_before_commit(self, db):
        session = db.session()
        session.insert("orders", [{"oid": 9999, "cid": 1, "amount": 1.0, "day": 1}])
        plan = orders_scan(["oid"], predicate=C("oid") == L(9999))
        assert len(session.query(plan)) == 1
        # other sessions do not see it
        assert len(db.session().query(plan)) == 0
        session.rollback()
        assert len(db.session().query(plan)) == 0

    def test_update_is_delete_plus_insert(self, db):
        session = db.session()
        changed = session.update(
            "orders", {"amount": L(0.0)}, C("oid") == L(5)
        )
        assert changed == 1
        epoch = session.commit()
        rows = db.query(orders_scan(["oid", "amount"], predicate=C("oid") == L(5)))
        assert rows == [{"oid": 5, "amount": 0.0}]
        # the pre-update value is still visible historically
        old = db.session().query(
            orders_scan(["oid", "amount"], predicate=C("oid") == L(5)),
            at_epoch=epoch - 1,
        )
        assert old[0]["amount"] == 5.0

    def test_concurrent_inserts_allowed(self, db):
        s1, s2 = db.session(), db.session()
        s1.insert("orders", [{"oid": 10001, "cid": 0, "amount": 0.0, "day": 0}])
        s2.insert("orders", [{"oid": 10002, "cid": 0, "amount": 0.0, "day": 0}])
        s1.commit()
        s2.commit()
        plan = orders_scan(["oid"], predicate=C("oid") > L(10000))
        assert len(db.query(plan)) == 2

    def test_delete_blocks_insert(self, db):
        s1, s2 = db.session(), db.session()
        s1.delete("orders", C("oid") == L(1))
        with pytest.raises(LockTimeoutError):
            s2.insert("orders", [{"oid": 10003, "cid": 0, "amount": 0.0, "day": 0}])
        s1.rollback()
        s2.insert("orders", [{"oid": 10003, "cid": 0, "amount": 0.0, "day": 0}])
        s2.commit()

    def test_serializable_takes_shared_lock(self, db):
        s1 = db.session(isolation=IsolationLevel.SERIALIZABLE)
        s1.query(orders_scan(["oid"]))
        s2 = db.session()
        with pytest.raises(LockTimeoutError):
            s2.delete("orders", C("oid") == L(1))
        s1.commit()
        s2.delete("orders", C("oid") == L(1))
        s2.commit()

    def test_read_committed_sees_fresh_data_per_statement(self, db):
        reader = db.session()
        plan = GroupByNode(
            orders_scan(["oid"]), [], [AggregateSpec("COUNT", None, "n")]
        )
        assert reader.query(plan) == [{"n": 2000}]
        writer = db.session()
        writer.insert("orders", [{"oid": 20000, "cid": 0, "amount": 0.0, "day": 0}])
        writer.commit()
        assert reader.query(plan) == [{"n": 2001}]


class TestFailureDuringQueries:
    def test_queries_keep_answering_with_node_down(self, db):
        db.run_tuple_movers()
        db.fail_node(1)
        plan = GroupByNode(
            orders_scan(["oid"]), [], [AggregateSpec("COUNT", None, "n")]
        )
        assert db.query(plan) == [{"n": 2000}]
        db.recover_node(1)
        assert db.query(plan) == [{"n": 2000}]


class TestExplain:
    def test_explain_shows_strategy(self, db):
        text = db.explain(join_plan())
        assert "Join" in text
        assert "Scan" in text

    def test_explain_differs_between_generations(self, db, tmp_path):
        plan = join_plan()
        star = db.explain(plan, optimizer="star")
        v2 = db.explain(plan, optimizer="v2")
        assert "Scan" in star and "Scan" in v2
