"""Differential SQL fuzzing: kernel engine vs. row engine vs. oracle.

A seeded generator produces random SELECTs (filters, group-bys,
aggregates, order-bys, limits) over the meters workload of section
8.2.2.  Every query is built twice from the same random draws: once as
SQL text for the engine (parse -> analyze -> optimize -> distributed
execution over WOS + ROS containers) and once as plain Python over the
in-memory row list.  Each SQL query then runs through *both* execution
engines — the vectorized kernels (default) and the per-row fallback
(``REPRO_FORCE_ROW_ENGINE=1``) — and all three answers must match
row-for-row.  Same query, two engines, one oracle: any kernel that
mishandles NULLs, selection bitmaps, RLE run arithmetic or dictionary
codes shows up as a three-way divergence here.

Floating-point SUM/AVG are compared with a tiny relative tolerance:
the distributed executor adds partials in segment order, the oracle in
row order, RLE run arithmetic multiplies where the row path adds, and
float addition is not associative.  Everything else — row content,
grouping, ordering, limits — must be exact.

Each seed drives >= 200 queries; the whole suite is deterministic.
The seed list extends via ``REPRO_FUZZ_SEEDS`` (comma-separated ints),
which is how ``tools/check.sh`` mixes in a git-SHA-derived seed so the
corpus drifts with the tree while staying reproducible per commit.

Edge-shape tables round out the corpus with the block layouts most
likely to break operate-on-compressed kernels: NULL-heavy columns
(encoded vectors must decay to plain), an all-rows-deleted table
(empty selections everywhere), and a single-run RLE column (one run
spanning every block).
"""

import math
import os
import random

import pytest

from repro import types
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.execution.kernels import force_row_engine
from repro.workloads.meters import generate, meters_table, spec_for_rows

DATA_SEED = 3
QUERIES_PER_SEED = 220


def _fuzz_seeds() -> tuple:
    """Base seeds plus any from REPRO_FUZZ_SEEDS (comma-separated)."""
    seeds = [11, 23]
    raw = os.environ.get("REPRO_FUZZ_SEEDS", "")
    for part in raw.split(","):
        part = part.strip()
        if part and int(part) not in seeds:
            seeds.append(int(part))
    return tuple(seeds)


FUZZ_SEEDS = _fuzz_seeds()

TABLE = "meter_readings"
COLUMNS = ("metric", "meter", "ts", "value")


@pytest.fixture(scope="module")
def loaded(tmp_path_factory):
    """One meters database plus the raw rows the oracle works from."""
    rows = list(generate(spec_for_rows(2000, seed=DATA_SEED)))
    db = Database(
        str(tmp_path_factory.mktemp("fuzz") / "db"), node_count=3, k_safety=1
    )
    db.create_table(meters_table(), sort_order=["metric", "meter", "ts"])
    db.load(TABLE, rows)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db, rows


# -- predicate generator -------------------------------------------------

def _atom(rng, rows):
    """One random comparison: returns (sql_text, python_predicate)."""
    kind = rng.randrange(6)
    sample = rng.choice(rows)
    if kind == 0:
        op = rng.choice(["<", "<=", ">", ">=", "="])
        k = sample["meter"]
        return f"meter {op} {k}", _cmp("meter", op, k)
    if kind == 1:
        op = rng.choice(["<", ">=", "="])
        t = sample["ts"]
        return f"ts {op} {t}", _cmp("ts", op, t)
    if kind == 2:
        op = rng.choice(["<", ">"])
        v = round(rng.uniform(-100.0, 150.0), 2)
        return f"value {op} {v}", _cmp("value", op, v)
    if kind == 3:
        name = sample["metric"]
        return f"metric = '{name}'", lambda r, n=name: r["metric"] == n
    if kind == 4:
        names = sorted({rng.choice(rows)["metric"] for _ in range(3)})
        quoted = ", ".join(f"'{n}'" for n in names)
        chosen = set(names)
        return (
            f"metric IN ({quoted})",
            lambda r, s=chosen: r["metric"] in s,
        )
    low = min(sample["meter"], sample["meter"] + rng.randrange(5))
    high = low + rng.randrange(8)
    return (
        f"meter BETWEEN {low} AND {high}",
        lambda r, lo=low, hi=high: lo <= r["meter"] <= hi,
    )


def _cmp(column, op, constant):
    checks = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "=": lambda a, b: a == b,
    }
    return lambda r, f=checks[op], c=constant: f(r[column], c)


def _predicate(rng, rows):
    """1-3 atoms joined with AND/OR, possibly negated."""
    count = 1 + rng.randrange(3)
    sql_parts, fns = [], []
    for _ in range(count):
        text, fn = _atom(rng, rows)
        sql_parts.append(f"({text})")
        fns.append(fn)
    connector = rng.choice(["AND", "OR"])
    sql = f" {connector} ".join(sql_parts)
    if connector == "AND":
        combined = lambda r, fs=fns: all(f(r) for f in fs)  # noqa: E731
    else:
        combined = lambda r, fs=fns: any(f(r) for f in fs)  # noqa: E731
    if rng.random() < 0.2:
        sql = f"NOT ({sql})"
        inner = combined
        combined = lambda r, f=inner: not f(r)  # noqa: E731
    return sql, combined


# -- oracles -------------------------------------------------------------

def _oracle_rows(rows, pred, limit):
    kept = [dict(r) for r in rows if pred(r)]
    kept.sort(key=lambda r: (r["metric"], r["meter"], r["ts"]))
    return kept if limit is None else kept[:limit]


def _oracle_global_agg(rows, pred):
    kept = [r for r in rows if pred(r)]
    return [
        {
            "n": len(kept),
            "mn": min((r["ts"] for r in kept), default=None),
            "mx": max((r["ts"] for r in kept), default=None),
            "sv": sum(r["value"] for r in kept) if kept else None,
        }
    ]


def _oracle_group_by(rows, pred, key):
    groups: dict = {}
    for r in rows:
        if pred(r):
            bucket = groups.setdefault(r[key], [0, 0.0, None])
            bucket[0] += 1
            bucket[1] += r["value"]
            bucket[2] = (
                r["ts"] if bucket[2] is None else max(bucket[2], r["ts"])
            )
    return [
        {key: k, "n": n, "sv": sv, "mx": mx}
        for k, (n, sv, mx) in sorted(groups.items())
    ]


def _close(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)
    return a == b


def _rows_match(got, want):
    if len(got) != len(want):
        return False
    for g, w in zip(got, want):
        if set(g) != set(w):
            return False
        if not all(_close(g[name], w[name]) for name in w):
            return False
    return True


# -- the fuzz loop -------------------------------------------------------

def _one_query(rng, rows):
    """Draw one random query: returns (sql, expected_rows)."""
    where_sql, pred = _predicate(rng, rows)
    shape = rng.randrange(4)
    if shape == 0:
        limit = rng.choice([None, None, 5, 40])
        sql = (
            f"SELECT metric, meter, ts, value FROM {TABLE} "
            f"WHERE {where_sql} ORDER BY metric, meter, ts"
        )
        if limit is not None:
            sql += f" LIMIT {limit}"
        return sql, _oracle_rows(rows, pred, limit)
    if shape == 1:
        sql = (
            f"SELECT COUNT(*) AS n, MIN(ts) AS mn, MAX(ts) AS mx, "
            f"SUM(value) AS sv FROM {TABLE} WHERE {where_sql}"
        )
        return sql, _oracle_global_agg(rows, pred)
    key = "metric" if shape == 2 else "meter"
    sql = (
        f"SELECT {key}, COUNT(*) AS n, SUM(value) AS sv, MAX(ts) AS mx "
        f"FROM {TABLE} WHERE {where_sql} GROUP BY {key} ORDER BY {key}"
    )
    return sql, _oracle_group_by(rows, pred, key)


@pytest.mark.parametrize("fuzz_seed", FUZZ_SEEDS)
def test_engine_matches_oracle(loaded, fuzz_seed):
    """Kernel engine vs. row engine vs. oracle over the fuzz corpus."""
    db, rows = loaded
    rng = random.Random(fuzz_seed)
    for index in range(QUERIES_PER_SEED):
        sql, expected = _one_query(rng, rows)
        kernel = db.sql(sql)
        with force_row_engine():
            row = db.sql(sql)
        assert _rows_match(kernel, expected), (
            f"seed {fuzz_seed} query {index} diverged from oracle\n"
            f"  sql: {sql}\n  kernel({len(kernel)}): {kernel[:3]}\n"
            f"  oracle({len(expected)}): {expected[:3]}"
        )
        assert _rows_match(row, kernel), (
            f"seed {fuzz_seed} query {index} kernel/row divergence\n"
            f"  sql: {sql}\n  kernel({len(kernel)}): {kernel[:3]}\n"
            f"  row({len(row)}): {row[:3]}"
        )


def test_fuzz_is_deterministic(loaded):
    """The same seed draws the same query sequence."""
    _, rows = loaded
    first = [_one_query(random.Random(99), rows)[0] for _ in range(25)]
    second = [_one_query(random.Random(99), rows)[0] for _ in range(25)]
    assert first == second


# -- edge-shape tables ---------------------------------------------------
#
# Block layouts the fuzz corpus can't produce but kernels must survive:
# NULL-riddled columns, a table whose every row is deleted, and a
# column that is one giant RLE run.

EDGE_ROWS = 600


@pytest.fixture(scope="module")
def edge_db(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("edge") / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "nulls_heavy",
            [
                ColumnDef("k", types.INTEGER),
                ColumnDef("tag", types.VARCHAR),
                ColumnDef("value", types.FLOAT),
            ],
        ),
        sort_order=["k"],
    )
    db.load(
        "nulls_heavy",
        [
            {
                "k": i,
                "tag": None if i % 3 == 0 else ["red", "blue"][i % 2],
                "value": None if i % 2 == 0 else float(i),
            }
            for i in range(EDGE_ROWS)
        ],
    )
    db.create_table(
        TableDefinition(
            "deleted_all",
            [ColumnDef("k", types.INTEGER), ColumnDef("v", types.FLOAT)],
        ),
        sort_order=["k"],
    )
    db.load(
        "deleted_all",
        [{"k": i, "v": float(i)} for i in range(EDGE_ROWS)],
    )
    session = db.session()
    session.delete("deleted_all", lambda row: True)
    session.commit()
    db.create_table(
        TableDefinition(
            "single_run",
            [ColumnDef("flag", types.INTEGER), ColumnDef("v", types.FLOAT)],
        ),
        sort_order=["flag"],
        encodings={"flag": "RLE"},
    )
    db.load(
        "single_run",
        [{"flag": 7, "v": float(i % 50)} for i in range(EDGE_ROWS)],
    )
    db.run_tuple_movers()
    return db


#: Per-table query battery run through both engines.
EDGE_SQL = {
    "nulls_heavy": [
        "SELECT k, tag, value FROM nulls_heavy WHERE value > 100.0 "
        "ORDER BY k LIMIT 20",
        "SELECT k FROM nulls_heavy WHERE value IS NULL AND k < 50 ORDER BY k",
        "SELECT k FROM nulls_heavy WHERE tag IS NOT NULL AND k >= 580 "
        "ORDER BY k",
        "SELECT COUNT(*) AS n, SUM(value) AS sv, MIN(value) AS mn "
        "FROM nulls_heavy WHERE tag = 'red'",
        "SELECT tag, COUNT(*) AS n, SUM(value) AS sv FROM nulls_heavy "
        "WHERE tag IS NOT NULL GROUP BY tag ORDER BY tag",
        "SELECT k FROM nulls_heavy WHERE tag IN ('red', 'green') "
        "AND value > 550.0 ORDER BY k",
        "SELECT COUNT(*) AS n FROM nulls_heavy WHERE NOT (tag = 'blue')",
    ],
    "deleted_all": [
        "SELECT k, v FROM deleted_all WHERE k > 0 ORDER BY k",
        "SELECT COUNT(*) AS n, SUM(v) AS sv FROM deleted_all",
        "SELECT k, COUNT(*) AS n FROM deleted_all GROUP BY k ORDER BY k",
        "SELECT k FROM deleted_all WHERE v BETWEEN 1.0 AND 9.0 ORDER BY k",
    ],
    "single_run": [
        "SELECT COUNT(*) AS n FROM single_run WHERE flag = 7",
        "SELECT COUNT(*) AS n FROM single_run WHERE flag < 7",
        "SELECT flag, COUNT(*) AS n, SUM(v) AS sv FROM single_run "
        "GROUP BY flag ORDER BY flag",
        "SELECT COUNT(*) AS n, SUM(v) AS sv FROM single_run "
        "WHERE flag BETWEEN 5 AND 9",
        "SELECT v FROM single_run WHERE flag = 7 AND v = 49.0 "
        "ORDER BY v LIMIT 5",
    ],
}


@pytest.mark.parametrize("table", sorted(EDGE_SQL))
def test_edge_tables_kernel_vs_row(edge_db, table):
    """Both engines agree row-for-row on the hostile block layouts."""
    for sql in EDGE_SQL[table]:
        kernel = edge_db.sql(sql)
        with force_row_engine():
            row = edge_db.sql(sql)
        assert _rows_match(kernel, row), (
            f"kernel/row divergence\n  sql: {sql}\n"
            f"  kernel({len(kernel)}): {kernel[:3]}\n"
            f"  row({len(row)}): {row[:3]}"
        )


def test_edge_tables_pinned_shapes(edge_db):
    """Spot-check absolute answers so both engines can't be wrong
    together in the same way."""
    assert edge_db.sql("SELECT COUNT(*) AS n FROM deleted_all") == [{"n": 0}]
    assert edge_db.sql("SELECT k FROM deleted_all WHERE k >= 0") == []
    rows = edge_db.sql("SELECT COUNT(*) AS n FROM single_run WHERE flag = 7")
    assert rows == [{"n": EDGE_ROWS}]
    rows = edge_db.sql(
        "SELECT COUNT(*) AS n, SUM(value) AS sv FROM nulls_heavy"
    )
    assert rows[0]["n"] == EDGE_ROWS
    assert rows[0]["sv"] == sum(i for i in range(EDGE_ROWS) if i % 2)
