"""Tests for the segmentation ring, buddies and local segments."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import RING_SIZE, hash_row, hash_value
from repro.projections import HashSegmentation, Replicated, buddy_of


class TestHashing:
    def test_deterministic(self):
        assert hash_value("meter_17") == hash_value("meter_17")
        assert hash_row([1, "a"]) == hash_row([1, "a"])

    def test_order_sensitive(self):
        assert hash_row([1, 23]) != hash_row([12, 3])

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_in_ring(self, value):
        assert 0 <= hash_value(value) < RING_SIZE

    def test_distinct_types_distinct_hashes(self):
        assert hash_value(1) != hash_value("1")
        assert hash_value(True) != hash_value(1)
        assert hash_value(None) != hash_value(0)


class TestRingMapping:
    def test_every_position_maps_to_one_node(self):
        scheme = HashSegmentation(("cid",))
        for node_count in (1, 2, 3, 5, 8):
            for position in (0, 1, RING_SIZE // 2, RING_SIZE - 1):
                node = scheme.node_for_position(position, node_count)
                assert 0 <= node < node_count

    def test_ranges_follow_paper_table(self):
        # expr in [i*CMAX/N, (i+1)*CMAX/N) -> node i (before offset).
        scheme = HashSegmentation(("k",))
        node_count = 4
        for i in range(node_count):
            low = i * RING_SIZE // node_count
            high = (i + 1) * RING_SIZE // node_count - 1
            assert scheme.node_for_position(low, node_count) == i
            assert scheme.node_for_position(high, node_count) == i

    @given(st.integers(min_value=0, max_value=10**6))
    def test_rows_spread_consistently(self, key):
        scheme = HashSegmentation(("k",))
        row = {"k": key}
        assert scheme.node_for_row(row, 3) == scheme.node_for_row(row, 3)

    def test_distribution_roughly_even(self):
        scheme = HashSegmentation(("k",))
        counts = [0, 0, 0]
        for key in range(30000):
            counts[scheme.node_for_row({"k": key}, 3)] += 1
        assert max(counts) - min(counts) < 2000


class TestBuddies:
    def test_offset_rotates_assignment(self):
        primary = HashSegmentation(("k",))
        buddy = buddy_of(primary, 1)
        for key in range(200):
            row = {"k": key}
            assert buddy.node_for_row(row, 3) == (
                primary.node_for_row(row, 3) + 1
            ) % 3

    def test_no_corow_colocation(self):
        primary = HashSegmentation(("k",))
        buddy = buddy_of(primary, 1)
        for key in range(500):
            row = {"k": key}
            assert primary.node_for_row(row, 4) != buddy.node_for_row(row, 4)

    def test_replicated_is_own_buddy(self):
        scheme = Replicated()
        assert buddy_of(scheme, 1) is scheme
        assert scheme.node_for_row({"k": 1}, 5) is None


class TestLocalSegments:
    def test_segments_within_range(self):
        scheme = HashSegmentation(("k",))
        for key in range(2000):
            segment = scheme.local_segment_for_row({"k": key}, 3, 3)
            assert 0 <= segment < 3

    def test_rows_stay_in_segment_across_calls(self):
        scheme = HashSegmentation(("k",))
        row = {"k": 42}
        first = scheme.local_segment_for_row(row, 3, 3)
        assert all(
            scheme.local_segment_for_row(row, 3, 3) == first for _ in range(5)
        )

    def test_all_segments_used(self):
        scheme = HashSegmentation(("k",))
        seen = {
            scheme.local_segment_for_row({"k": key}, 3, 3) for key in range(5000)
        }
        assert seen == {0, 1, 2}
