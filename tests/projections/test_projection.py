"""Tests for projection definitions, super projections and buddies."""

import pytest

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import SqlAnalysisError
from repro.projections import (
    HashSegmentation,
    ProjectionColumn,
    ProjectionDefinition,
    ProjectionFamily,
    Replicated,
    make_buddy,
    super_projection,
)


@pytest.fixture
def sales():
    return TableDefinition(
        "sales",
        [
            ColumnDef("sale_id", types.INTEGER),
            ColumnDef("cid", types.INTEGER),
            ColumnDef("cust", types.VARCHAR),
            ColumnDef("date", types.DATE),
            ColumnDef("price", types.FLOAT),
        ],
        primary_key=("sale_id",),
    )


class TestSuperProjection:
    def test_defaults(self, sales):
        projection = super_projection(sales)
        assert projection.is_super_for(sales)
        assert projection.column_names == sales.column_names
        assert projection.sort_order == sales.column_names
        assert isinstance(projection.segmentation, HashSegmentation)
        assert projection.segmentation.columns == ("sale_id",)

    def test_figure1_super(self, sales):
        # Figure 1: super projection sorted by date, segmented by
        # HASH(sale_id).
        projection = super_projection(
            sales, sort_order=["date"], segmentation=HashSegmentation(("sale_id",))
        )
        assert projection.sort_order == ["date"]
        assert projection.is_super_for(sales)

    def test_figure1_narrow(self, sales):
        # Figure 1: (cust, price) sorted by cust, segmented by HASH(cust).
        narrow = ProjectionDefinition(
            name="sales_cust",
            anchor_table="sales",
            columns=[
                ProjectionColumn("cust", types.VARCHAR),
                ProjectionColumn("price", types.FLOAT),
            ],
            sort_order=["cust"],
            segmentation=HashSegmentation(("cust",)),
        )
        assert not narrow.is_super_for(sales)
        assert narrow.covers(["price"])
        assert not narrow.covers(["date"])

    def test_sorted_rows(self, sales):
        projection = super_projection(sales, sort_order=["date", "price"])
        rows = [
            {"sale_id": 1, "cid": 1, "cust": "a", "date": 5, "price": 2.0},
            {"sale_id": 2, "cid": 2, "cust": "b", "date": 1, "price": 9.0},
            {"sale_id": 3, "cid": 3, "cust": "c", "date": 5, "price": 1.0},
        ]
        ordered = projection.sorted_rows(rows)
        assert [row["sale_id"] for row in ordered] == [2, 3, 1]

    def test_nulls_sort_first(self, sales):
        projection = super_projection(sales, sort_order=["date"])
        rows = [
            {"sale_id": 1, "cid": 1, "cust": "a", "date": 5, "price": 2.0},
            {"sale_id": 2, "cid": 2, "cust": "b", "date": None, "price": 9.0},
        ]
        assert projection.sorted_rows(rows)[0]["sale_id"] == 2


class TestValidation:
    def test_sort_column_must_exist(self, sales):
        with pytest.raises(SqlAnalysisError):
            ProjectionDefinition(
                name="bad",
                anchor_table="sales",
                columns=[ProjectionColumn("cust", types.VARCHAR)],
                sort_order=["nope"],
                segmentation=Replicated(),
            )

    def test_segmentation_column_must_exist(self, sales):
        with pytest.raises(SqlAnalysisError):
            ProjectionDefinition(
                name="bad",
                anchor_table="sales",
                columns=[ProjectionColumn("cust", types.VARCHAR)],
                sort_order=["cust"],
                segmentation=HashSegmentation(("sale_id",)),
            )

    def test_duplicate_columns_rejected(self, sales):
        with pytest.raises(SqlAnalysisError):
            ProjectionDefinition(
                name="bad",
                anchor_table="sales",
                columns=[
                    ProjectionColumn("cust", types.VARCHAR),
                    ProjectionColumn("cust", types.VARCHAR),
                ],
                sort_order=["cust"],
                segmentation=Replicated(),
            )


class TestBuddy:
    def test_buddy_shares_layout(self, sales):
        primary = super_projection(sales)
        buddy = make_buddy(primary, 1)
        assert buddy.column_names == primary.column_names
        assert buddy.sort_order == primary.sort_order
        assert buddy.buddy_offset == 1
        assert buddy.segmentation.offset == 1

    def test_family_k_safety(self, sales):
        primary = super_projection(sales)
        family = ProjectionFamily(primary, [make_buddy(primary, 1)])
        assert family.k_safety() == 1
        assert len(family.all_copies) == 2

    def test_replicated_family_k_safety(self, sales):
        projection = super_projection(sales, segmentation=Replicated())
        family = ProjectionFamily(projection, [])
        assert family.k_safety() >= 1


class TestDescribe:
    def test_describe_mentions_order_and_segmentation(self, sales):
        projection = super_projection(sales, sort_order=["date"])
        text = projection.describe()
        assert "ORDER BY date" in text
        assert "SEGMENTED BY HASH(sale_id)" in text
