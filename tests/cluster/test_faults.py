"""Cluster-level fault injection: commit-or-eject, restart, scrub.

These tests exercise the distributed half of the robustness story: a
node dying mid-commit is ejected while the cluster commit proceeds on
the survivors; a restarted node scavenges its disk and recovers from
buddies; silent corruption is scrubbed out and repaired online.
"""

import os

import pytest

from repro import types
from repro.cluster import (
    Cluster,
    create_backup,
    recover_node,
    rebalance,
    repair_node_projection,
    restore_backup,
    scrub,
)
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import ClusterError
from repro.faults import FaultPlan


def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def rows(n, start=0):
    return [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + n)]


@pytest.fixture
def cluster(tmp_path):
    cluster = Cluster(str(tmp_path / "c"), node_count=3, k_safety=1)
    cluster.create_table(table(), sort_order=["k"])
    return cluster


def snapshot(cluster, epoch):
    return sorted(row["k"] for row in cluster.read_table("t", epoch))


class TestCommitOrEject:
    def test_dropped_delivery_ejects_but_commit_succeeds(self, cluster):
        with FaultPlan().arm("membership.delivery", "drop", node=1):
            epoch = cluster.commit_dml({"t": rows(30)}, [], 0)
        assert not cluster.membership.is_up(1)
        assert ("missed commit delivery" in reason
                for _, reason in cluster.membership.ejections)
        # buddy failover still answers with the full row set
        assert snapshot(cluster, epoch) == list(range(30))

    def test_delayed_delivery_ejects_and_applies_late(self, cluster):
        with FaultPlan().arm("membership.delivery", "delay", node=2):
            epoch = cluster.commit_dml({"t": rows(30)}, [], 0)
        assert not cluster.membership.is_up(2)
        assert any(
            node == 2 and "delayed" in reason
            for node, reason in cluster.membership.ejections
        )
        # the late message still landed: node 2 holds the rows even
        # though it was ejected (recovery will truncate + replay them,
        # which is why eject-without-retry is safe).
        family = cluster.catalog.super_projection_for("t")
        late_rows = []
        for copy in family.all_copies:
            late_rows.extend(
                cluster.nodes[2].manager.read_visible_rows(copy.name, epoch)
            )
        assert late_rows
        report = recover_node(cluster, 2)
        assert cluster.membership.is_up(2)
        assert snapshot(cluster, epoch) == list(range(30))

    def test_drop_next_delivery_shim_still_works(self, cluster):
        cluster.membership.drop_next_delivery.add(0)
        epoch = cluster.commit_dml({"t": rows(20)}, [], 0)
        assert not cluster.membership.is_up(0)
        assert snapshot(cluster, epoch) == list(range(20))

    def test_storage_crash_mid_apply_ejects_node_only(self, cluster):
        # node 1's first container publish dies while applying the
        # committed insert; the commit must survive on the other nodes.
        plan = FaultPlan().arm("ros.publish", "crash")
        epoch0 = cluster.commit_dml({"t": rows(10)}, [], 0)
        with plan:
            epoch = cluster.commit_dml(
                {"t": rows(30, start=10)}, [], epoch0, direct_to_ros=True
            )
        assert plan.fired
        assert len(cluster.membership.up_nodes()) == 2
        assert snapshot(cluster, epoch) == list(range(40))

    def test_mover_crash_ejects_node_only(self, cluster):
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0)
        with FaultPlan().arm("mover.moveout.container", "crash"):
            cluster.run_tuple_movers()
        assert len(cluster.membership.up_nodes()) == 2
        assert snapshot(cluster, epoch) == list(range(40))


class TestRestartAndRecover:
    def test_restart_node_scavenges_and_recovers(self, cluster):
        epoch0 = cluster.commit_dml({"t": rows(20)}, [], 0)
        cluster.run_tuple_movers()
        # one node dies mid-publish while applying a later commit
        with FaultPlan().arm("ros.publish", "crash"):
            epoch = cluster.commit_dml(
                {"t": rows(20, start=20)}, [], epoch0, direct_to_ros=True
            )
        (crashed,) = cluster.membership.down_nodes()
        report = cluster.restart_node(crashed)
        # the half-committed container's staging dir was scavenged away
        assert report.removed_tmp
        recover_node(cluster, crashed)
        assert cluster.membership.is_up(crashed)
        assert snapshot(cluster, epoch) == list(range(40))
        # the recovered node's own copies answer correctly
        cluster.fail_node((crashed + 1) % 3)
        assert snapshot(cluster, epoch) == list(range(40))

    def test_restart_preserves_published_state(self, cluster):
        epoch = cluster.commit_dml({"t": rows(25)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(2)
        report = cluster.restart_node(2)
        assert report.quarantined == []
        assert report.containers_loaded > 0
        recover_node(cluster, 2)
        assert snapshot(cluster, epoch) == list(range(25))


class TestScrub:
    def corrupt_one_container(self, cluster, node_index=0):
        manager = cluster.nodes[node_index].manager
        for projection_name in manager.projection_names():
            state = manager.storage(projection_name)
            for container in state.containers.values():
                target = os.path.join(container.path, "k.dat")
                with open(target, "r+b") as handle:
                    first = handle.read(1)[0]
                    handle.seek(0)
                    handle.write(bytes([first ^ 0xFF]))
                return projection_name, container.container_id
        raise AssertionError("no container to corrupt")

    def test_clean_cluster_scrubs_clean(self, cluster):
        cluster.commit_dml({"t": rows(30)}, [], 0, direct_to_ros=True)
        report = cluster.scrub()
        assert report.clean()
        assert report.corrupt == []
        assert report.repaired == []

    def test_scrub_detects_quarantines_and_repairs(self, cluster):
        epoch = cluster.commit_dml({"t": rows(60)}, [], 0, direct_to_ros=True)
        projection_name, container_id = self.corrupt_one_container(cluster)
        report = cluster.scrub()
        assert (0, projection_name, container_id) in [
            (node, proj, cid) for node, proj, cid, _ in report.corrupt
        ]
        assert (0, projection_name) in report.repaired
        assert report.purged >= 1
        assert cluster.nodes[0].manager.quarantined == []
        # repaired node serves the full row set on its own copies
        assert snapshot(cluster, epoch) == list(range(60))
        cluster.fail_node(1)
        assert snapshot(cluster, epoch) == list(range(60))

    def test_scrub_without_repair_only_quarantines(self, cluster):
        cluster.commit_dml({"t": rows(60)}, [], 0, direct_to_ros=True)
        self.corrupt_one_container(cluster)
        report = scrub(cluster, repair=False)
        assert report.corrupt
        assert report.repaired == []
        assert cluster.nodes[0].manager.quarantined

    def test_repair_after_scavenge_quarantine(self, cluster):
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0, direct_to_ros=True)
        projection_name, _ = self.corrupt_one_container(cluster, node_index=1)
        cluster.fail_node(1)
        cluster.restart_node(1)  # scavenge quarantines the bad container
        assert cluster.nodes[1].manager.quarantined
        recover_node(cluster, 1)
        report = cluster.scrub()
        assert (1, projection_name) in report.repaired
        cluster.fail_node(0)
        assert snapshot(cluster, epoch) == list(range(40))

    def test_repair_node_projection_rebuilds_copy(self, cluster):
        epoch = cluster.commit_dml({"t": rows(50)}, [], 0, direct_to_ros=True)
        family = cluster.catalog.super_projection_for("t")
        primary = family.primary.name
        manager = cluster.nodes[0].manager
        state = manager.storage(primary)
        before = sorted(
            row["k"] for row in manager.read_visible_rows(primary, epoch)
        )
        # nuke the whole copy, then rebuild it from buddies
        manager.remove_containers(primary, list(state.containers))
        state.wos.drain()
        assert manager.read_visible_rows(primary, epoch) == []
        replayed = repair_node_projection(cluster, 0, primary)
        assert replayed >= len(before)
        after = sorted(
            row["k"] for row in manager.read_visible_rows(primary, epoch)
        )
        assert after == before


class TestRebalanceDirectories:
    def test_rebalance_up_down_up_uses_fresh_dirs(self, tmp_path):
        root = str(tmp_path / "c")
        cluster = Cluster(root, node_count=3, k_safety=1)
        cluster.create_table(table(), sort_order=["k"])
        epoch = cluster.commit_dml({"t": rows(60)}, [], 0, direct_to_ros=True)
        rebalance(cluster, 5)
        assert snapshot(cluster, epoch) == list(range(60))
        grown_roots_first = [
            cluster.nodes[index].manager.root for index in (3, 4)
        ]
        # node dirs live under the cluster root, not a sibling tree
        for node_root in grown_roots_first:
            assert os.path.dirname(node_root) == root
        rebalance(cluster, 3)
        assert snapshot(cluster, epoch) == list(range(60))
        rebalance(cluster, 5)
        assert snapshot(cluster, epoch) == list(range(60))
        grown_roots_second = [
            cluster.nodes[index].manager.root for index in (3, 4)
        ]
        # the regrown nodes must not resurrect the retired directories
        assert not set(grown_roots_first) & set(grown_roots_second)
        assert len(set(grown_roots_second)) == 2

    def test_rebalance_down_then_query(self, tmp_path):
        cluster = Cluster(str(tmp_path / "c"), node_count=4, k_safety=1)
        cluster.create_table(table(), sort_order=["k"])
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0, direct_to_ros=True)
        rebalance(cluster, 2)
        assert snapshot(cluster, epoch) == list(range(40))


class TestBackupManifestValidation:
    def test_restore_rejects_missing_table(self, cluster, tmp_path):
        cluster.commit_dml({"t": rows(20)}, [], 0)
        cluster.run_tuple_movers()
        image = create_backup(cluster, str(tmp_path / "bk"))
        target = Cluster(str(tmp_path / "c2"), node_count=3, k_safety=1)
        with pytest.raises(ClusterError, match="missing from the catalog"):
            restore_backup(target, image)

    def test_restore_rejects_imageless_manifest(self, cluster, tmp_path):
        cluster.commit_dml({"t": rows(20)}, [], 0)
        cluster.run_tuple_movers()
        image = create_backup(cluster, str(tmp_path / "bk"))
        os.remove(os.path.join(image.path, "manifest.json"))
        with pytest.raises(ClusterError, match="no manifest.json"):
            restore_backup(cluster, image)

    def test_restore_adopts_with_fresh_on_disk_ids(self, cluster, tmp_path):
        import json

        epoch = cluster.commit_dml({"t": rows(30)}, [], 0)
        cluster.run_tuple_movers()
        image = create_backup(cluster, str(tmp_path / "bk"))
        family = cluster.catalog.super_projection_for("t")
        for node in cluster.nodes:
            for copy in family.all_copies:
                state = node.manager.storage(copy.name)
                node.manager.remove_containers(copy.name, list(state.containers))
        restored = restore_backup(cluster, image)
        assert restored == len(image.entries)
        assert snapshot(cluster, epoch) == list(range(30))
        # every restored container's on-disk meta matches its directory
        for node in cluster.nodes:
            for copy in family.all_copies:
                state = node.manager.storage(copy.name)
                for container_id, container in state.containers.items():
                    with open(
                        os.path.join(container.path, "meta.json")
                    ) as handle:
                        assert json.load(handle)["container_id"] == container_id
