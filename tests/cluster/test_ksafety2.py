"""K-safety = 2: two buddies, two simultaneous failures survived."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import DataUnavailableError


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "k2"), node_count=5, k_safety=2)
    db.create_table(
        TableDefinition(
            "t",
            [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
            primary_key=("k",),
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": f"v{i % 5}"} for i in range(500)])
    db.run_tuple_movers()
    return db


def total(db):
    return db.sql("SELECT count(*) AS n FROM t")[0]["n"]


class TestKSafety2:
    def test_three_copies_exist(self, db):
        family = db.cluster.catalog.super_projection_for("t")
        assert len(family.all_copies) == 3
        assert family.k_safety() == 2
        offsets = sorted(
            copy.segmentation.offset for copy in family.all_copies
        )
        assert offsets == [0, 1, 2]

    def test_no_row_colocated_across_copies(self, db):
        family = db.cluster.catalog.super_projection_for("t")
        for node in db.cluster.nodes:
            sets = [
                {
                    row["k"]
                    for row in node.manager.read_visible_rows(
                        copy.name, db.latest_epoch
                    )
                }
                for copy in family.all_copies
            ]
            for i in range(3):
                for j in range(i + 1, 3):
                    assert sets[i].isdisjoint(sets[j])

    def test_survives_two_failures(self, db):
        db.fail_node(0)
        db.fail_node(1)
        assert total(db) == 500
        assert db.cluster.check_data_available()

    def test_dml_during_double_failure_then_recovery(self, db):
        db.fail_node(0)
        db.fail_node(3)
        db.load("t", [{"k": 1000 + i, "v": "new"} for i in range(50)])
        db.sql("DELETE FROM t WHERE k < 10")
        assert total(db) == 540
        db.recover_node(0)
        db.recover_node(3)
        assert total(db) == 540
        # recovered nodes individually hold exactly their segments
        family = db.cluster.catalog.super_projection_for("t")
        for node_index in (0, 3):
            own = db.cluster.nodes[node_index].manager.read_visible_rows(
                family.primary.name, db.latest_epoch
            )
            for row in own:
                assert family.primary.segmentation.node_for_row(row, 5) == node_index

    def test_k1_design_cannot_survive_two(self, tmp_path):
        db = Database(str(tmp_path / "k1"), node_count=5, k_safety=1)
        db.create_table(
            TableDefinition("t", [ColumnDef("k", types.INTEGER)]),
        )
        db.load("t", [{"k": i} for i in range(100)])
        db.run_tuple_movers()
        # failing two *adjacent* nodes loses the segment whose primary
        # and buddy both lived there
        db.fail_node(0)
        db.fail_node(1)
        assert not db.cluster.check_data_available()
        with pytest.raises(DataUnavailableError):
            db.sql("SELECT count(*) FROM t")
