"""Tests for cluster routing, commit protocol, membership and K-safety."""

import pytest

from repro import types
from repro.cluster import Cluster
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import DataUnavailableError, KSafetyError, QuorumLossError
from repro.projections import HashSegmentation, Replicated


def sales_table():
    return TableDefinition(
        "sales",
        [
            ColumnDef("sale_id", types.INTEGER),
            ColumnDef("cid", types.INTEGER),
            ColumnDef("cust", types.VARCHAR),
            ColumnDef("price", types.FLOAT),
        ],
        primary_key=("sale_id",),
    )


def sales_rows(n, start=0):
    return [
        {"sale_id": i, "cid": i % 10, "cust": f"c{i % 10}", "price": float(i)}
        for i in range(start, start + n)
    ]


@pytest.fixture
def cluster(tmp_path):
    cluster = Cluster(str(tmp_path / "cluster"), node_count=3, k_safety=1)
    cluster.create_table(sales_table(), sort_order=["sale_id"])
    return cluster


class TestDdl:
    def test_create_table_builds_family_with_buddy(self, cluster):
        family = cluster.catalog.super_projection_for("sales")
        assert len(family.all_copies) == 2
        assert family.k_safety() == 1
        buddy = family.buddies[0]
        assert buddy.segmentation.offset == 1

    def test_projection_storage_on_every_node(self, cluster):
        family = cluster.catalog.super_projection_for("sales")
        for node in cluster.nodes:
            for copy in family.all_copies:
                assert copy.name in node.manager.projection_names()

    def test_single_node_cluster_has_no_buddies(self, tmp_path):
        single = Cluster(str(tmp_path / "one"), node_count=1)
        single.create_table(sales_table())
        family = single.catalog.super_projection_for("sales")
        assert family.buddies == []

    def test_invalid_k_safety_rejected(self, tmp_path):
        with pytest.raises(KSafetyError):
            Cluster(str(tmp_path / "bad"), node_count=2, k_safety=2)

    def test_drop_table(self, cluster):
        cluster.drop_table("sales")
        assert cluster.catalog.table_names() == []
        for node in cluster.nodes:
            assert node.manager.projection_names() == []


class TestRoutingAndCommit:
    def test_insert_visible_after_commit(self, cluster):
        epoch = cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        assert epoch == 1
        rows = cluster.read_table("sales", epoch)
        assert len(rows) == 100

    def test_rows_split_across_nodes(self, cluster):
        cluster.commit_dml({"sales": sales_rows(300)}, [], 0)
        family = cluster.catalog.super_projection_for("sales")
        counts = [
            len(node.manager.read_visible_rows(family.primary.name, 1))
            for node in cluster.nodes
        ]
        assert sum(counts) == 300
        assert all(count > 0 for count in counts)

    def test_buddy_holds_disjoint_placement(self, cluster):
        cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        family = cluster.catalog.super_projection_for("sales")
        for node in cluster.nodes:
            primary_ids = {
                row["sale_id"]
                for row in node.manager.read_visible_rows(family.primary.name, 1)
            }
            buddy_ids = {
                row["sale_id"]
                for row in node.manager.read_visible_rows(
                    family.buddies[0].name, 1
                )
            }
            assert primary_ids.isdisjoint(buddy_ids)

    def test_buddy_union_covers_everything(self, cluster):
        cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        family = cluster.catalog.super_projection_for("sales")
        buddy_rows = []
        for node in cluster.nodes:
            buddy_rows.extend(
                node.manager.read_visible_rows(family.buddies[0].name, 1)
            )
        assert sorted(row["sale_id"] for row in buddy_rows) == list(range(100))

    def test_replicated_projection_everywhere(self, tmp_path):
        cluster = Cluster(str(tmp_path / "c"), node_count=3)
        cluster.create_table(sales_table(), segmentation=Replicated())
        cluster.commit_dml({"sales": sales_rows(50)}, [], 0)
        family = cluster.catalog.super_projection_for("sales")
        for node in cluster.nodes:
            assert (
                len(node.manager.read_visible_rows(family.primary.name, 1)) == 50
            )

    def test_delete_applies_everywhere(self, cluster):
        cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        cluster.commit_dml(
            {}, [("sales", lambda row: row["sale_id"] < 30)], 1
        )
        rows = cluster.read_table("sales", 2)
        assert len(rows) == 70
        assert len(cluster.read_table("sales", 1)) == 100  # history intact

    def test_epoch_advances_per_commit(self, cluster):
        first = cluster.commit_dml({"sales": sales_rows(1)}, [], 0)
        second = cluster.commit_dml({"sales": sales_rows(1, start=1)}, [], first)
        assert second == first + 1


class TestMembership:
    def test_commit_ejects_node_missing_delivery(self, cluster):
        cluster.membership.drop_next_delivery.add(2)
        cluster.commit_dml({"sales": sales_rows(60)}, [], 0)
        assert 2 in cluster.membership.down_nodes()
        assert cluster.membership.ejections[0][0] == 2

    def test_quorum_loss_raises(self, cluster):
        cluster.fail_node(2)
        with pytest.raises(QuorumLossError):
            cluster.fail_node(1)

    def test_reads_survive_single_failure_via_buddy(self, cluster):
        cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(0)
        rows = cluster.read_table("sales", 1)
        assert sorted(row["sale_id"] for row in rows) == list(range(100))

    def test_scan_sources_prefer_primary(self, cluster):
        family = cluster.catalog.super_projection_for("sales")
        sources = cluster.scan_sources(family)
        assert [s[0] for s in sources] == [0, 1, 2]
        assert all(s[1] == family.primary.name for s in sources)

    def test_scan_sources_use_buddy_when_down(self, cluster):
        cluster.commit_dml({"sales": sales_rows(10)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(1)
        family = cluster.catalog.super_projection_for("sales")
        sources = cluster.scan_sources(family)
        buddy_sources = [s for s in sources if s[1] != family.primary.name]
        assert buddy_sources == [(2, family.buddies[0].name)]

    def test_data_unavailable_without_ksafety(self, tmp_path):
        cluster = Cluster(str(tmp_path / "k0"), node_count=3, k_safety=0)
        cluster.create_table(sales_table())
        cluster.commit_dml({"sales": sales_rows(30)}, [], 0)
        cluster.membership.eject(0, "test")
        assert not cluster.check_data_available()
        with pytest.raises(DataUnavailableError):
            cluster.read_table("sales", 1)

    def test_ahm_holds_while_node_down(self, cluster):
        for start in range(0, 50, 10):
            cluster.commit_dml({"sales": sales_rows(10, start=start)}, [], 0)
        cluster.fail_node(2)
        cluster.epochs.advance_ahm()
        assert cluster.epochs.ahm == 0


class TestTupleMoverIntegration:
    def test_run_tuple_movers_sets_lge(self, cluster):
        cluster.commit_dml({"sales": sales_rows(100)}, [], 0)
        cluster.run_tuple_movers()
        family = cluster.catalog.super_projection_for("sales")
        for node_index in range(3):
            assert cluster.epochs.lge(node_index, family.primary.name) == 1

    def test_moveout_preserves_visibility(self, cluster):
        cluster.commit_dml({"sales": sales_rows(500)}, [], 0)
        before = sorted(
            row["sale_id"] for row in cluster.read_table("sales", 1)
        )
        cluster.run_tuple_movers()
        after = sorted(row["sale_id"] for row in cluster.read_table("sales", 1))
        assert before == after


class TestPrejoin:
    def test_prejoin_load_denormalizes(self, tmp_path):
        cluster = Cluster(str(tmp_path / "pj"), node_count=2, k_safety=1)
        customers = TableDefinition(
            "customers",
            [ColumnDef("cid", types.INTEGER), ColumnDef("name", types.VARCHAR)],
            primary_key=("cid",),
        )
        orders = TableDefinition(
            "orders",
            [ColumnDef("oid", types.INTEGER), ColumnDef("cid", types.INTEGER)],
            primary_key=("oid",),
        )
        cluster.create_table(customers, segmentation=Replicated())
        cluster.create_table(orders)
        from repro.projections import (
            PrejoinSpec,
            ProjectionColumn,
            ProjectionDefinition,
        )

        prejoin = ProjectionDefinition(
            name="orders_pj",
            anchor_table="orders",
            columns=[
                ProjectionColumn("oid", types.INTEGER),
                ProjectionColumn("cid", types.INTEGER),
                ProjectionColumn("cust_name", types.VARCHAR),
            ],
            sort_order=["cust_name", "oid"],
            segmentation=HashSegmentation(("oid",)),
            prejoin=PrejoinSpec(
                dimension_table="customers",
                anchor_key="cid",
                dimension_key="cid",
                carried_columns={"name": "cust_name"},
            ),
        )
        cluster.add_projection_family(prejoin)
        epoch = cluster.commit_dml(
            {"customers": [{"cid": 1, "name": "ann"}, {"cid": 2, "name": "bob"}]},
            [], 0,
        )
        epoch = cluster.commit_dml(
            {"orders": [{"oid": 10, "cid": 2}, {"oid": 11, "cid": 1}]}, [], epoch
        )
        prejoin_rows = []
        for node in cluster.nodes:
            prejoin_rows.extend(
                node.manager.read_visible_rows("orders_pj", epoch)
            )
        names = {row["oid"]: row["cust_name"] for row in prejoin_rows}
        assert names == {10: "bob", 11: "ann"}
