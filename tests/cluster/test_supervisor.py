"""Tests for the simulated clock, the deterministic failure detector
and the auto-recovery supervisor (section 5.2-5.3).

Everything here drives failed nodes back through the supervisor's
state machine only — no test calls ``restart_node``/``recover_node``
directly once the supervisor owns the node.
"""

import pytest

from repro import types
from repro.cluster import Cluster, SimulatedClock
from repro.cluster.supervisor import DOWN, QUARANTINED, SCAVENGED, UP
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import ClusterError
from repro.faults import FaultPlan


def sales_table():
    return TableDefinition(
        "sales",
        [
            ColumnDef("sale_id", types.INTEGER),
            ColumnDef("cid", types.INTEGER),
            ColumnDef("price", types.FLOAT),
        ],
        primary_key=("sale_id",),
    )


def sales_rows(n, start=0):
    return [
        {"sale_id": i, "cid": i % 10, "price": float(i)}
        for i in range(start, start + n)
    ]


@pytest.fixture
def cluster(tmp_path):
    cluster = Cluster(str(tmp_path / "cluster"), node_count=3, k_safety=1)
    cluster.create_table(sales_table(), sort_order=["sale_id"])
    cluster.commit_dml({"sales": sales_rows(120)}, [], 0)
    cluster.run_tuple_movers()
    return cluster


def visible_ids(cluster, epoch=1):
    return sorted(row["sale_id"] for row in cluster.read_table("sales", epoch))


def transitions(cluster, node_index):
    return [
        event.detail
        for event in cluster.failover_log.events("recovery_transition")
        if event.node_index == node_index
    ]


class TestSimulatedClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now == 0
        assert clock.advance() == 1
        assert clock.advance(5) == 6
        assert clock.elapsed_since(2) == 4

    def test_rejects_non_positive_advance(self):
        clock = SimulatedClock()
        with pytest.raises(ClusterError):
            clock.advance(0)


class TestHeartbeatDetector:
    def test_missed_beats_below_timeout_keep_node_up(self, cluster):
        timeout = cluster.membership.heartbeat_timeout
        plan = FaultPlan(seed=1).arm(
            "membership.heartbeat", "drop", node=2, count=timeout - 1
        )
        with plan:
            for _ in range(timeout - 1):
                cluster.supervisor.tick()
        assert cluster.membership.is_up(2)
        assert cluster.membership.missed_heartbeats[2] == timeout - 1

    def test_received_beat_resets_missed_count(self, cluster):
        timeout = cluster.membership.heartbeat_timeout
        plan = FaultPlan(seed=1).arm(
            "membership.heartbeat", "drop", node=2, count=timeout - 1
        )
        with plan:
            for _ in range(timeout - 1):
                cluster.supervisor.tick()
        cluster.supervisor.tick()  # heartbeat delivered again
        assert cluster.membership.is_up(2)
        assert cluster.membership.missed_heartbeats[2] == 0
        assert cluster.membership.heartbeat_age(2, cluster.clock.now) == 0

    def test_timeout_ejects_then_supervisor_heals(self, cluster):
        timeout = cluster.membership.heartbeat_timeout
        before = visible_ids(cluster)
        plan = FaultPlan(seed=1).arm(
            "membership.heartbeat", "drop", node=2, count=timeout
        )
        with plan:
            for _ in range(timeout):
                cluster.supervisor.tick()
            assert not cluster.membership.is_up(2)
            node, reason = cluster.membership.ejections[-1]
            assert node == 2
            assert "heartbeat" in reason
            cluster.supervisor.run_until_converged()
        assert cluster.membership.is_up(2)
        assert cluster.supervisor.node_state(2).state == UP
        assert visible_ids(cluster) == before

    def test_delay_verdict_counts_as_missed(self, cluster):
        plan = FaultPlan(seed=1).arm(
            "membership.heartbeat", "delay", node=1, count=1
        )
        with plan:
            cluster.supervisor.tick()
        assert cluster.membership.missed_heartbeats[1] == 1


class TestSupervisorRecovery:
    def test_adopts_external_failure_and_heals(self, cluster):
        before = visible_ids(cluster)
        cluster.fail_node(1)
        spent = cluster.supervisor.run_until_converged()
        assert spent <= 3
        assert cluster.membership.is_up(1)
        assert cluster.supervisor.node_state(1).state == UP
        assert visible_ids(cluster) == before

    def test_full_lifecycle_recorded(self, cluster):
        cluster.fail_node(1)
        cluster.supervisor.run_until_converged()
        assert transitions(cluster, 1) == [
            "UP->DOWN",
            "DOWN->RESTARTING",
            "RESTARTING->SCAVENGED",
            "SCAVENGED->RECOVERING",
            "RECOVERING->CURRENT",
            "CURRENT->UP",
        ]

    def test_one_phase_per_tick(self, cluster):
        cluster.fail_node(1)
        cluster.supervisor.tick()
        assert cluster.supervisor.node_state(1).state == SCAVENGED
        assert not cluster.membership.is_up(1)
        cluster.supervisor.tick()
        assert cluster.supervisor.node_state(1).state == UP
        assert cluster.membership.is_up(1)

    def test_healthy_cluster_ticks_are_quiet(self, cluster):
        for _ in range(5):
            cluster.supervisor.tick()
        assert cluster.supervisor.converged()
        assert cluster.failover_log.events() == []
        assert cluster.clock.now == 5

    def test_externally_recovered_node_adopted_up(self, cluster):
        from repro.cluster import recover_node

        cluster.fail_node(2)
        cluster.restart_node(2)
        recover_node(cluster, 2)
        cluster.supervisor.tick()
        assert cluster.supervisor.node_state(2).state == UP


def fail_with_replay_window(cluster, node_index):
    """Take a node down, then commit more rows so recovery has a
    non-empty replay window (the ``ros.publish`` crash targets below
    fire when the replayed containers publish on the recovering node).
    Returns the sorted sale_ids visible at the new epoch."""
    cluster.fail_node(node_index)
    epoch = cluster.commit_dml({"sales": sales_rows(40, start=200)}, [], 0)
    return sorted(list(range(120)) + list(range(200, 240))), epoch


class TestBackoffAndQuarantine:
    def test_failed_recoveries_back_off_exponentially(self, cluster):
        expected, epoch = fail_with_replay_window(cluster, 1)
        # the first two recovery attempts die publishing replayed
        # containers on the recovering node; the third succeeds.
        plan = FaultPlan(seed=3).arm("ros.publish", "crash", count=2)
        with plan:
            cluster.supervisor.run_until_converged(max_ticks=32)
        assert [f.point for f in plan.fired] == ["ros.publish"] * 2
        assert cluster.supervisor.node_state(1).state == UP
        assert cluster.supervisor.node_state(1).recovery_attempts == 0
        path = transitions(cluster, 1)
        assert path.count("RECOVERING->DOWN") == 2
        # each retry waits backoff_base * 2**(attempts-1) ticks, so the
        # gaps between successive restart attempts must grow.
        restart_ticks = [
            event.tick
            for event in cluster.failover_log.events("recovery_transition")
            if event.node_index == 1 and event.detail == "DOWN->RESTARTING"
        ]
        gaps = [b - a for a, b in zip(restart_ticks, restart_ticks[1:])]
        assert len(gaps) == 2
        assert gaps[1] > gaps[0]
        assert visible_ids(cluster, epoch) == expected

    def test_repeated_failure_quarantines_node(self, cluster):
        expected, epoch = fail_with_replay_window(cluster, 1)
        plan = FaultPlan(seed=3).arm("ros.publish", "crash", count=64)
        with plan:
            cluster.supervisor.run_until_converged(max_ticks=64)
        record = cluster.supervisor.node_state(1)
        assert record.state == QUARANTINED
        assert (
            record.recovery_attempts
            == cluster.supervisor.max_recovery_attempts
        )
        assert "failed" in record.last_error
        quarantines = cluster.failover_log.events("quarantine")
        assert len(quarantines) == 1
        assert quarantines[0].node_index == 1
        # a quarantined node is terminal: more ticks change nothing.
        tick_count = cluster.clock.now
        cluster.supervisor.tick()
        assert cluster.supervisor.node_state(1).state == QUARANTINED
        assert cluster.clock.now == tick_count + 1
        # K-safety still covers the data through the buddy.
        assert visible_ids(cluster, epoch) == expected

    def test_backoff_skips_ticks_before_retry(self, cluster):
        fail_with_replay_window(cluster, 1)
        plan = FaultPlan(seed=3).arm("ros.publish", "crash", count=1)
        with plan:
            cluster.supervisor.tick()  # restart -> SCAVENGED
            cluster.supervisor.tick()  # recover fails -> DOWN, backoff
            record = cluster.supervisor.node_state(1)
            assert record.state == DOWN
            assert record.recovery_attempts == 1
            assert record.next_attempt_tick == cluster.clock.now + 1

    def test_both_buddies_down_heal_from_own_disks(self, cluster):
        """Losing BOTH hosts of a ring segment loses no data (their
        disks are intact) and blocks all commits (no quorum at 1/3), so
        each node's replay window is empty and recovery must rejoin it
        from its own disk instead of deadlocking on the other dead
        buddy — neither node may end up QUARANTINED."""
        before = visible_ids(cluster)
        cluster.note_node_failure(0, "test: buddy pair lost")
        cluster.note_node_failure(2, "test: buddy pair lost")
        assert not cluster.membership.has_quorum()
        cluster.supervisor.run_until_converged()
        assert cluster.membership.down_nodes() == []
        for index in (0, 2):
            assert cluster.supervisor.node_state(index).state == UP
        assert visible_ids(cluster) == before
        assert cluster.scrub().clean()
