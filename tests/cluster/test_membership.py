"""Unit tests for group membership and quorum rules."""

import pytest

from repro.cluster import Membership
from repro.errors import QuorumLossError


class TestQuorum:
    @pytest.mark.parametrize(
        "nodes,quorum", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (6, 4)]
    )
    def test_quorum_is_majority(self, nodes, quorum):
        assert Membership(nodes).quorum_size == quorum

    def test_has_quorum_boundary(self):
        membership = Membership(5)
        membership.eject(0, "t")
        membership.eject(1, "t")
        assert membership.has_quorum()  # 3 of 5
        membership.eject(2, "t")
        assert not membership.has_quorum()
        with pytest.raises(QuorumLossError):
            membership.require_quorum()


class TestEjection:
    def test_eject_and_rejoin(self):
        membership = Membership(3)
        membership.eject(1, "missed heartbeat")
        assert membership.down_nodes() == [1]
        assert membership.ejections == [(1, "missed heartbeat")]
        membership.rejoin(1)
        assert membership.down_nodes() == []

    def test_double_eject_recorded_once(self):
        membership = Membership(3)
        membership.eject(1, "a")
        membership.eject(1, "b")
        assert len(membership.ejections) == 1

    def test_broadcast_commit_ejects_droppers(self):
        membership = Membership(5)
        membership.drop_next_delivery.update({1, 3})
        receivers = membership.broadcast_commit()
        assert receivers == [0, 2, 4]
        assert membership.down_nodes() == [1, 3]
        # the drop set is consumed: next commit reaches everyone up
        assert membership.broadcast_commit() == [0, 2, 4]

    def test_commit_fails_on_quorum_loss(self):
        membership = Membership(3)
        membership.drop_next_delivery.update({0, 1})
        with pytest.raises(QuorumLossError):
            membership.broadcast_commit()
