"""Backup image epoch validation: restore refuses images outside the
cluster's epoch window (pre-AHM or from the future)."""

import pytest

from repro import types
from repro.cluster import Cluster, create_backup, restore_backup
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import ClusterError


def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def rows(n, start=0):
    return [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + n)]


def build(root):
    cluster = Cluster(str(root), node_count=3, k_safety=1)
    cluster.create_table(table(), sort_order=["k"])
    return cluster


def test_restore_refuses_image_from_the_future(tmp_path):
    source = build(tmp_path / "source")
    epoch = 0
    for start in range(0, 50, 10):  # five commits: image epoch is high
        epoch = source.commit_dml({"t": rows(10, start=start)}, [], epoch)
    source.run_tuple_movers()
    image = create_backup(source, str(tmp_path / "bk"))

    target = build(tmp_path / "target")
    target.commit_dml({"t": rows(5)}, [], 0)  # non-pristine, but behind
    assert image.epoch > target.epochs.latest_queryable_epoch
    with pytest.raises(ClusterError, match="from the future"):
        restore_backup(target, image)


def test_restore_refuses_image_behind_the_ahm(tmp_path):
    cluster = build(tmp_path / "c")
    cluster.epochs.policy.lag_epochs = 0  # retain no extra history
    epoch = cluster.commit_dml({"t": rows(10)}, [], 0)
    cluster.run_tuple_movers()
    image = create_backup(cluster, str(tmp_path / "bk"))
    # advance history well past the image, dragging the AHM along
    for start in range(10, 50, 10):
        epoch = cluster.commit_dml({"t": rows(10, start=start)}, [], epoch)
        cluster.run_tuple_movers()  # advance_ahm=True by default
    assert cluster.epochs.ahm > image.epoch
    with pytest.raises(ClusterError, match="Ancient History Mark"):
        restore_backup(cluster, image)


def test_pristine_cluster_adopts_image_timeline(tmp_path):
    source = build(tmp_path / "source")
    epoch = 0
    for start in range(0, 30, 10):
        epoch = source.commit_dml({"t": rows(10, start=start)}, [], epoch)
    source.run_tuple_movers()
    image = create_backup(source, str(tmp_path / "bk"))

    target = build(tmp_path / "target")  # pristine: no commits yet
    restored = restore_backup(target, image)
    assert restored == len(image.entries)
    # the target adopted the image's epoch clock, so its rows are visible
    assert target.epochs.latest_queryable_epoch >= image.epoch
    visible = target.read_table("t", target.epochs.latest_queryable_epoch)
    assert sorted(row["k"] for row in visible) == list(range(30))


def test_restore_at_current_epoch_accepted(tmp_path):
    cluster = build(tmp_path / "c")
    epoch = cluster.commit_dml({"t": rows(20)}, [], 0)
    cluster.run_tuple_movers(advance_ahm=False)
    image = create_backup(cluster, str(tmp_path / "bk"))
    # wipe, then same-timeline restore (image epoch == latest queryable)
    family = cluster.catalog.super_projection_for("t")
    for node in cluster.nodes:
        for copy in family.all_copies:
            state = node.manager.storage(copy.name)
            node.manager.remove_containers(copy.name, list(state.containers))
    restored = restore_backup(cluster, image)
    assert restored == len(image.entries)
    visible = cluster.read_table("t", epoch)
    assert sorted(row["k"] for row in visible) == list(range(20))
