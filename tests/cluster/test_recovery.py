"""Tests for recovery, refresh, rebalance and backup."""

import pytest

from repro import types
from repro.cluster import (
    Cluster,
    create_backup,
    load_manifest,
    rebalance,
    recover_node,
    restore_backup,
)
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import ClusterError
from repro.projections import HashSegmentation


def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def rows(n, start=0):
    return [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + n)]


@pytest.fixture
def cluster(tmp_path):
    cluster = Cluster(str(tmp_path / "c"), node_count=3, k_safety=1)
    cluster.create_table(table(), sort_order=["k"])
    return cluster


def table_snapshot(cluster, epoch):
    return sorted(row["k"] for row in cluster.read_table("t", epoch))


class TestRecovery:
    def test_recover_missed_inserts(self, cluster):
        epoch = cluster.commit_dml({"t": rows(50)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(1)
        epoch = cluster.commit_dml({"t": rows(50, start=50)}, [], epoch)
        report = recover_node(cluster, 1)
        assert report.historical_rows + report.current_rows > 0
        assert cluster.membership.is_up(1)
        # node 1's primary data matches what it would have had
        family = cluster.catalog.super_projection_for("t")
        own = cluster.nodes[1].manager.read_visible_rows(family.primary.name, epoch)
        expected = {
            row["k"]
            for row in rows(100)
            if family.primary.segmentation.node_for_row(row, 3) == 1
        }
        assert {row["k"] for row in own} == expected

    def test_recover_missed_deletes(self, cluster):
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(2)
        epoch = cluster.commit_dml(
            {}, [("t", lambda row: row["k"] < 10)], epoch
        )
        recover_node(cluster, 2)
        assert table_snapshot(cluster, epoch) == list(range(10, 40))
        # every node individually consistent: scan only its primary rows
        family = cluster.catalog.super_projection_for("t")
        total = 0
        for node in cluster.nodes:
            total += len(node.manager.read_visible_rows(family.primary.name, epoch))
        assert total == 30

    def test_recover_preserves_historical_snapshots(self, cluster):
        epoch1 = cluster.commit_dml({"t": rows(20)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(0)
        epoch2 = cluster.commit_dml({"t": rows(20, start=20)}, [], epoch1)
        recover_node(cluster, 0)
        assert table_snapshot(cluster, epoch1) == list(range(20))
        assert table_snapshot(cluster, epoch2) == list(range(40))

    def test_truncates_wos_only_data(self, cluster):
        # data committed but never moved out exists only in the WOS and
        # dies with the node; recovery re-sources it from buddies.
        epoch = cluster.commit_dml({"t": rows(30)}, [], 0)
        cluster.fail_node(1)  # WOS content lost, no moveout ever ran
        recover_node(cluster, 1)
        assert table_snapshot(cluster, epoch) == list(range(30))

    def test_recover_up_node_rejected(self, cluster):
        with pytest.raises(ClusterError):
            recover_node(cluster, 0)

    def test_historical_and_current_phases_split(self, cluster):
        epoch = cluster.commit_dml({"t": rows(10)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(1)
        for start in range(10, 60, 10):
            epoch = cluster.commit_dml({"t": rows(10, start=start)}, [], epoch)
        report = recover_node(cluster, 1, historical_lag=1)
        assert report.historical_rows > 0
        assert report.current_rows > 0

    def test_queries_run_during_failure_and_after(self, cluster):
        epoch = cluster.commit_dml({"t": rows(60)}, [], 0)
        cluster.run_tuple_movers()
        cluster.fail_node(2)
        assert table_snapshot(cluster, epoch) == list(range(60))
        recover_node(cluster, 2)
        assert table_snapshot(cluster, epoch) == list(range(60))


class TestRefresh:
    def test_new_projection_populated_from_existing_data(self, cluster):
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0)
        from repro.projections import ProjectionColumn, ProjectionDefinition

        narrow = ProjectionDefinition(
            name="t_narrow",
            anchor_table="t",
            columns=[ProjectionColumn("v", types.VARCHAR),
                     ProjectionColumn("k", types.INTEGER)],
            sort_order=["v"],
            segmentation=HashSegmentation(("k",)),
        )
        cluster.add_projection_family(narrow)
        stored = []
        for node in cluster.nodes:
            stored.extend(node.manager.read_visible_rows("t_narrow", epoch))
        assert sorted(row["k"] for row in stored) == list(range(40))

    def test_refresh_preserves_delete_history(self, cluster):
        epoch = cluster.commit_dml({"t": rows(20)}, [], 0)
        epoch = cluster.commit_dml({}, [("t", lambda r: r["k"] >= 15)], epoch)
        from repro.projections import ProjectionColumn, ProjectionDefinition

        narrow = ProjectionDefinition(
            name="t_n2",
            anchor_table="t",
            columns=[ProjectionColumn("k", types.INTEGER)],
            sort_order=["k"],
            segmentation=HashSegmentation(("k",)),
        )
        cluster.add_projection_family(narrow)
        visible = []
        for node in cluster.nodes:
            visible.extend(node.manager.read_visible_rows("t_n2", epoch))
        assert sorted(row["k"] for row in visible) == list(range(15))


class TestRebalance:
    def test_expand_cluster(self, cluster):
        epoch = cluster.commit_dml({"t": rows(200)}, [], 0)
        cluster.run_tuple_movers()
        report = rebalance(cluster, 5)
        assert report.new_node_count == 5
        assert cluster.node_count == 5
        assert table_snapshot(cluster, epoch) == list(range(200))
        family = cluster.catalog.super_projection_for("t")
        counts = [
            len(node.manager.read_visible_rows(family.primary.name, epoch))
            for node in cluster.nodes
        ]
        assert sum(counts) == 200
        assert all(count > 0 for count in counts)

    def test_shrink_cluster(self, cluster):
        epoch = cluster.commit_dml({"t": rows(100)}, [], 0)
        rebalance(cluster, 2)
        assert table_snapshot(cluster, epoch) == list(range(100))

    def test_rebalance_requires_all_up(self, cluster):
        cluster.commit_dml({"t": rows(10)}, [], 0)
        cluster.fail_node(1)
        with pytest.raises(ClusterError):
            rebalance(cluster, 4)


class TestBackup:
    def test_backup_and_restore(self, cluster, tmp_path):
        epoch = cluster.commit_dml({"t": rows(80)}, [], 0)
        cluster.run_tuple_movers()
        image = create_backup(cluster, str(tmp_path / "bk"))
        assert image.entries
        # wipe: drop all containers everywhere
        family = cluster.catalog.super_projection_for("t")
        for node in cluster.nodes:
            for copy in family.all_copies:
                state = node.manager.storage(copy.name)
                node.manager.remove_containers(copy.name, list(state.containers))
        assert table_snapshot(cluster, epoch) == []
        restored = restore_backup(cluster, image)
        assert restored == len(image.entries)
        assert table_snapshot(cluster, epoch) == list(range(80))

    def test_backup_survives_mergeout(self, cluster, tmp_path):
        # hard links keep the image alive even after the tuple mover
        # retires the original containers.
        epoch = cluster.commit_dml({"t": rows(30)}, [], 0)
        cluster.commit_dml({"t": rows(30, start=30)}, [], epoch)
        cluster.run_tuple_movers()
        image = create_backup(cluster, str(tmp_path / "bk"))
        cluster.commit_dml({"t": rows(30, start=60)}, [], 0)
        cluster.run_tuple_movers()  # merges / retires old containers
        manifest = load_manifest(str(tmp_path / "bk"))
        assert manifest["epoch"] == image.epoch
        # all linked files still readable
        import os

        for node_index, projection_name, container_dir in image.entries:
            path = os.path.join(
                str(tmp_path / "bk"), f"node{node_index:02d}",
                projection_name, container_dir,
            )
            assert os.path.isdir(path)
            assert os.listdir(path)

    def test_incremental_backup_links_only_new(self, cluster, tmp_path):
        epoch = cluster.commit_dml({"t": rows(40)}, [], 0)
        cluster.run_tuple_movers()
        full = create_backup(cluster, str(tmp_path / "full"))
        cluster.commit_dml({"t": rows(40, start=40)}, [], epoch)
        cluster.run_tuple_movers()
        incremental = create_backup(
            cluster, str(tmp_path / "incr"), base=full
        )
        import os

        full_dirs = sum(len(files) for _, _, files in os.walk(str(tmp_path / "full")))
        incr_dirs = sum(len(files) for _, _, files in os.walk(str(tmp_path / "incr")))
        assert incr_dirs < full_dirs + len(incremental.entries)
        assert len(incremental.entries) >= len(full.entries)
