"""Tests for the per-node storage manager."""

import pytest

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import UnknownObjectError
from repro.projections import super_projection
from repro.storage import StorageManager


@pytest.fixture
def table():
    return TableDefinition(
        "events",
        [
            ColumnDef("month", types.INTEGER),
            ColumnDef("cid", types.INTEGER),
            ColumnDef("value", types.FLOAT),
        ],
        partition_by=lambda row: row["month"],
        partition_by_text="month",
    )


@pytest.fixture
def projection(table):
    return super_projection(table, sort_order=["cid"])


@pytest.fixture
def manager(tmp_path, table, projection):
    manager = StorageManager(str(tmp_path / "node0"), wos_capacity=1000)
    manager.register_projection(projection, table)
    return manager


def make_rows(n, month=1):
    return [{"month": month, "cid": i, "value": float(i)} for i in range(n)]


NAME = "events_super"


class TestInsertPaths:
    def test_small_insert_goes_to_wos(self, manager):
        created = manager.insert(NAME, make_rows(10), epoch=1)
        assert created == []
        assert manager.wos_row_count(NAME) == 10
        assert manager.container_count(NAME) == 0

    def test_overflow_goes_direct_to_ros(self, manager):
        created = manager.insert(NAME, make_rows(2000), epoch=1)
        assert created
        assert manager.wos_row_count(NAME) == 0
        assert manager.container_count(NAME) == len(created)

    def test_direct_to_ros_flag(self, manager):
        created = manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        assert len(created) == 1

    def test_partition_separation(self, manager):
        rows = make_rows(10, month=3) + make_rows(10, month=4)
        manager.insert(NAME, rows, epoch=1, direct_to_ros=True)
        # one container per partition key
        assert manager.container_count(NAME) == 2
        assert manager.partition_keys(NAME) == [3, 4]

    def test_unknown_projection(self, manager):
        with pytest.raises(UnknownObjectError):
            manager.insert("nope", [], epoch=1)


class TestScan:
    def test_scan_merges_wos_and_ros(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        manager.insert(NAME, make_rows(3, month=2), epoch=2)
        rows = manager.read_visible_rows(NAME, epoch=2)
        assert len(rows) == 8

    def test_scan_respects_epoch(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        manager.insert(NAME, make_rows(3, month=2), epoch=5, direct_to_ros=True)
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 5
        assert len(manager.read_visible_rows(NAME, epoch=4)) == 5
        assert len(manager.read_visible_rows(NAME, epoch=5)) == 8

    def test_scan_column_subset(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        batches = list(manager.scan(NAME, epoch=1, columns=["value"]))
        assert set(batches[0].columns) == {"value"}

    def test_container_pruning(self, manager):
        manager.insert(NAME, make_rows(10, month=1), epoch=1, direct_to_ros=True)
        manager.insert(NAME, make_rows(10, month=9), epoch=1, direct_to_ros=True)
        batches = list(manager.scan(NAME, epoch=1, prune={"month": (9, 9)}))
        assert len(batches) == 1
        assert batches[0].columns["month"][0] == 9

    def test_sorted_within_container(self, manager):
        rows = [{"month": 1, "cid": c, "value": 0.0} for c in (5, 1, 3)]
        manager.insert(NAME, rows, epoch=1, direct_to_ros=True)
        batch = next(manager.scan(NAME, epoch=1))
        assert batch.columns["cid"] == [1, 3, 5]


class TestDeletes:
    def test_delete_from_wos(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1)
        deleted = manager.delete_where(
            NAME, lambda row: row["cid"] < 2, commit_epoch=2, snapshot_epoch=1
        )
        assert deleted == 2
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 3
        # historical snapshot still sees them
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 5

    def test_delete_from_ros(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        deleted = manager.delete_where(
            NAME, lambda row: row["cid"] == 4, commit_epoch=2, snapshot_epoch=1
        )
        assert deleted == 1
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 4

    def test_delete_is_not_physical(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        manager.delete_where(NAME, lambda row: True, 2, 1)
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        assert container.row_count == 5  # rows still on disk

    def test_double_delete_not_counted(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        assert manager.delete_where(NAME, lambda r: r["cid"] == 1, 2, 1) == 1
        # at snapshot 2 the row is already deleted -> no new marker
        assert manager.delete_where(NAME, lambda r: r["cid"] == 1, 3, 2) == 0

    def test_persist_delete_vectors(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        manager.delete_where(NAME, lambda r: r["cid"] < 3, 2, 1)
        assert manager.persist_delete_vectors(NAME) == 1
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 2
        state = manager.storage(NAME)
        assert not state.pending_ros_deletes

    def test_include_deleted_scan(self, manager):
        manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
        manager.delete_where(NAME, lambda r: True, 2, 1)
        assert len(manager.read_visible_rows(NAME, 2, include_deleted=True)) == 5


class TestPartitionDrop:
    def test_drop_partition_removes_files(self, manager):
        manager.insert(NAME, make_rows(10, month=3), epoch=1, direct_to_ros=True)
        manager.insert(NAME, make_rows(10, month=4), epoch=1, direct_to_ros=True)
        reclaimed = manager.drop_partition(NAME, 3)
        assert reclaimed == 10
        assert manager.partition_keys(NAME) == [4]
        rows = manager.read_visible_rows(NAME, epoch=1)
        assert all(row["month"] == 4 for row in rows)

    def test_drop_partition_covers_wos(self, manager):
        manager.insert(NAME, make_rows(5, month=3), epoch=1)
        assert manager.drop_partition(NAME, 3) == 5
        assert manager.wos_row_count(NAME) == 0


class TestLocalSegments:
    def test_local_segments_split_containers(self, tmp_path, table):
        from repro.projections import HashSegmentation

        projection = super_projection(
            table, sort_order=["cid"], segmentation=HashSegmentation(("cid",))
        )
        manager = StorageManager(
            str(tmp_path / "n"), node_count=1, segments_per_node=3
        )
        manager.register_projection(projection, table)
        manager.insert(NAME, make_rows(300), epoch=1, direct_to_ros=True)
        segments = {
            container.meta.local_segment
            for container in manager.storage(NAME).containers.values()
        }
        assert segments == {0, 1, 2}


class TestSizes:
    def test_byte_accounting(self, manager):
        manager.insert(NAME, make_rows(100), epoch=1, direct_to_ros=True)
        assert 0 < manager.total_data_bytes(NAME) <= manager.total_bytes(NAME)
