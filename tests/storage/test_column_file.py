"""Tests for blocks, position indexes and column files."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.errors import StorageError
from repro.storage.block import BlockInfo, decode_block, encode_block
from repro.storage.column_file import ColumnReader, ColumnWriter


def build_column(values, dtype=types.INTEGER, encoding="AUTO", block_rows=64):
    writer = ColumnWriter(dtype, encoding, block_rows=block_rows)
    writer.extend(values)
    data, index = writer.finish()
    return ColumnReader(data, index)


class TestBlockRoundtrip:
    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-(2**62), max_value=2**62))
        )
    )
    @settings(max_examples=50)
    def test_roundtrip_with_nulls(self, values):
        payload, info = encode_block(values, types.INTEGER, None, 0, 0)
        assert decode_block(payload, info) == values

    def test_min_max_ignore_nulls(self):
        payload, info = encode_block([None, 5, 1, None, 9], types.INTEGER, None, 0, 0)
        assert info.min_value == 1
        assert info.max_value == 9
        assert info.null_count == 2

    def test_all_null_block(self):
        payload, info = encode_block([None, None], types.INTEGER, None, 0, 0)
        assert info.min_value is None and info.max_value is None
        assert decode_block(payload, info) == [None, None]
        assert not info.may_contain(0, 100)

    def test_may_contain(self):
        _, info = encode_block([10, 20, 30], types.INTEGER, None, 0, 0)
        assert info.may_contain(15, 25)
        assert info.may_contain(None, 10)
        assert info.may_contain(30, None)
        assert not info.may_contain(31, None)
        assert not info.may_contain(None, 9)

    def test_blockinfo_serialization_roundtrip(self):
        info = BlockInfo(100, 50, 3, "RLE", 1234, 567, -5, "zz")
        out = bytearray()
        info.serialize(out)
        decoded, offset = BlockInfo.deserialize(bytes(out), 0)
        assert decoded == info
        assert offset == len(out)


class TestColumnWriterReader:
    def test_read_all(self):
        values = list(range(1000))
        reader = build_column(values)
        assert reader.read_all() == values
        assert reader.row_count == 1000

    def test_multiple_blocks_created(self):
        reader = build_column(list(range(1000)), block_rows=100)
        assert len(reader.blocks) == 10
        assert [b.start_position for b in reader.blocks][:3] == [0, 100, 200]

    def test_positional_get(self):
        values = [i * 3 for i in range(500)]
        reader = build_column(values, block_rows=64)
        for position in (0, 63, 64, 499, 250):
            assert reader.get(position) == values[position]

    def test_get_many_unsorted_positions(self):
        values = list(range(300))
        reader = build_column(values)
        assert reader.get_many([200, 5, 123]) == [200, 5, 123]

    def test_get_out_of_range(self):
        reader = build_column([1, 2, 3])
        with pytest.raises(StorageError):
            reader.get(3)

    def test_empty_column(self):
        reader = build_column([])
        assert reader.read_all() == []
        assert reader.row_count == 0
        assert reader.min_value() is None

    def test_min_max_from_metadata(self):
        reader = build_column([5, None, -2, 100, 7], block_rows=2)
        assert reader.min_value() == -2
        assert reader.max_value() == 100

    def test_block_pruning(self):
        # 10 blocks of 100 sorted values; a range filter hits few blocks.
        reader = build_column(list(range(1000)), block_rows=100)
        touched = list(reader.iter_blocks(low=250, high=260))
        assert len(touched) == 1
        info, values = touched[0]
        assert info.start_position == 200

    def test_iter_blocks_keeps_null_blocks(self):
        values = [None] * 100 + list(range(100))
        reader = build_column(values, block_rows=100)
        touched = list(reader.iter_blocks(low=5000, high=6000))
        # the all-NULL block is retained because NULL handling is the
        # predicate evaluator's job, not the pruner's.
        assert len(touched) == 1 and touched[0][0].null_count == 100

    def test_varchar_column(self):
        values = ["m%03d" % (i % 7) for i in range(200)]
        reader = build_column(values, dtype=types.VARCHAR)
        assert reader.read_all() == values

    def test_float_column(self):
        values = [i / 7.0 for i in range(200)]
        reader = build_column(values, dtype=types.FLOAT)
        assert reader.read_all() == values

    def test_explicit_encoding_respected(self):
        reader = build_column([1, 1, 1, 2, 2], encoding="RLE", block_rows=5)
        assert reader.blocks[0].encoding == "RLE"

    def test_position_index_is_small(self):
        # The paper: position index ~ 1/1000 the raw column data.
        values = list(range(100_000))
        writer = ColumnWriter(types.INTEGER, "PLAIN")
        writer.extend(values)
        data, index = writer.finish()
        assert len(index) < len(data) / 100

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(min_value=-(10**9), max_value=10**9)),
            max_size=300,
        )
    )
    @settings(max_examples=30)
    def test_property_roundtrip(self, values):
        reader = build_column(values, block_rows=37)
        assert reader.read_all() == values
        if values:
            assert reader.get(len(values) - 1) == values[-1]
