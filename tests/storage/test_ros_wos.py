"""Tests for ROS containers, the WOS and delete vectors."""

import os

import pytest

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import StorageError
from repro.projections import super_projection
from repro.storage import (
    DeleteVector,
    ROSContainer,
    WriteOptimizedStore,
    combined_deletes,
)


@pytest.fixture
def table():
    return TableDefinition(
        "t",
        [
            ColumnDef("k", types.INTEGER),
            ColumnDef("v", types.VARCHAR),
        ],
    )


@pytest.fixture
def projection(table):
    return super_projection(table, sort_order=["k"])


def make_rows(n):
    return [{"k": i, "v": f"row{i % 5}"} for i in range(n)]


class TestROSContainer:
    def test_write_load_roundtrip(self, tmp_path, projection):
        rows = make_rows(100)
        path = str(tmp_path / "ros_1")
        ROSContainer.write(path, 1, projection, rows, [7] * 100)
        loaded = ROSContainer.load(path)
        assert loaded.row_count == 100
        assert loaded.read_column("k") == [row["k"] for row in rows]
        assert loaded.read_column("v") == [row["v"] for row in rows]
        assert loaded.read_epochs() == [7] * 100

    def test_two_files_per_column(self, tmp_path, projection):
        path = str(tmp_path / "ros_1")
        container = ROSContainer.write(path, 1, projection, make_rows(10), [1] * 10)
        files = container.file_inventory()
        for column in ("k", "v", "_epoch"):
            assert f"{column}.dat" in files
            assert f"{column}.pidx" in files

    def test_unsorted_rows_rejected(self, tmp_path, projection):
        rows = [{"k": 2, "v": "a"}, {"k": 1, "v": "b"}]
        with pytest.raises(StorageError):
            ROSContainer.write(str(tmp_path / "r"), 1, projection, rows, [1, 1])

    def test_min_max_and_pruning(self, tmp_path, projection):
        rows = [{"k": i, "v": "x"} for i in range(100, 200)]
        container = ROSContainer.write(
            str(tmp_path / "r"), 1, projection, rows, [1] * 100
        )
        assert container.column_min_max("k") == (100, 199)
        assert container.may_contain("k", 150, 160)
        assert not container.may_contain("k", 0, 99)
        assert not container.may_contain("k", 200, None)

    def test_partition_key_roundtrip(self, tmp_path, projection):
        container = ROSContainer.write(
            str(tmp_path / "r"),
            1,
            projection,
            [{"k": 1, "v": "a"}],
            [1],
            partition_key=(2012, 3),
            local_segment=2,
        )
        loaded = ROSContainer.load(container.path)
        assert loaded.meta.partition_key == (2012, 3)
        assert loaded.meta.local_segment == 2

    def test_grouped_columns_mode(self, tmp_path, projection):
        rows = make_rows(50)
        container = ROSContainer.write(
            str(tmp_path / "r"),
            1,
            projection,
            rows,
            [1] * 50,
            column_groups=[["k", "v"]],
        )
        assert container.read_column("k") == [row["k"] for row in rows]
        assert container.read_column("v") == [row["v"] for row in rows]
        assert "_group0.dat" in container.file_inventory()
        with pytest.raises(StorageError):
            container.column_reader("k")

    def test_grouped_mode_compression_penalty(self, tmp_path, projection):
        # The paper: hybrid row-column storage exacts a compression
        # penalty — the ungrouped container must be smaller.
        rows = [{"k": i, "v": "const"} for i in range(2000)]
        grouped = ROSContainer.write(
            str(tmp_path / "g"), 1, projection, rows, [1] * 2000,
            column_groups=[["k", "v"]],
        )
        columnar = ROSContainer.write(
            str(tmp_path / "c"), 2, projection, rows, [1] * 2000
        )
        assert columnar.data_size_bytes() < grouped.data_size_bytes()

    def test_epoch_metadata(self, tmp_path, projection):
        rows = make_rows(4)
        container = ROSContainer.write(
            str(tmp_path / "r"), 1, projection, rows, [3, 3, 5, 9]
        )
        assert container.meta.min_epoch == 3
        assert container.meta.max_epoch == 9


class TestWOS:
    def test_insert_and_drain(self):
        wos = WriteOptimizedStore(capacity=100)
        wos.insert(make_rows(10), epoch=4)
        assert wos.row_count == 10
        rows, epochs = wos.drain()
        assert len(rows) == 10 and epochs == [4] * 10
        assert wos.row_count == 0

    def test_overflow_detection(self):
        wos = WriteOptimizedStore(capacity=10)
        wos.insert(make_rows(8), epoch=1)
        assert wos.would_overflow(5)
        assert not wos.would_overflow(2)

    def test_visibility_by_epoch(self):
        wos = WriteOptimizedStore()
        wos.insert(make_rows(3), epoch=2)
        wos.insert(make_rows(2), epoch=5)
        assert len(list(wos.visible(epoch=2, deleted_positions={}))) == 3
        assert len(list(wos.visible(epoch=5, deleted_positions={}))) == 5
        assert len(list(wos.visible(epoch=1, deleted_positions={}))) == 0

    def test_visibility_with_deletes(self):
        wos = WriteOptimizedStore()
        wos.insert(make_rows(3), epoch=1)
        deletes = {1: 3}
        assert len(list(wos.visible(2, deletes))) == 3  # delete not yet visible
        assert len(list(wos.visible(3, deletes))) == 2

    def test_truncate_after_epoch(self):
        wos = WriteOptimizedStore()
        wos.insert(make_rows(3), epoch=2)
        wos.insert(make_rows(2), epoch=7)
        assert wos.truncate_after_epoch(2) == 2
        assert wos.row_count == 3


class TestDeleteVector:
    def test_add_and_dict(self):
        vector = DeleteVector(target_container=3)
        vector.add(10, 5)
        vector.add(2, 6)
        assert vector.as_dict() == {10: 5, 2: 6}
        vector.sort()
        assert vector.positions == [2, 10]

    def test_persistence_roundtrip(self, tmp_path):
        vector = DeleteVector(7, [5, 1, 9], [4, 4, 6])
        vector.write(str(tmp_path / "dv"))
        loaded = DeleteVector.load(str(tmp_path / "dv"))
        assert loaded.target_container == 7
        assert loaded.as_dict() == {1: 4, 5: 4, 9: 6}

    def test_wos_target_roundtrip(self, tmp_path):
        vector = DeleteVector(None, [0], [2])
        vector.write(str(tmp_path / "dv"))
        assert DeleteVector.load(str(tmp_path / "dv")).target_container is None

    def test_merge(self):
        a = DeleteVector(1, [1, 3], [2, 2])
        b = DeleteVector(1, [2], [5])
        merged = a.merged_with(b)
        assert merged.positions == [1, 2, 3]

    def test_combined_earliest_epoch_wins(self):
        a = DeleteVector(1, [7], [9])
        b = DeleteVector(1, [7], [4])
        assert combined_deletes([a, b]) == {7: 4}

    def test_compressed_on_disk(self, tmp_path):
        vector = DeleteVector(1, list(range(10000)), [3] * 10000)
        vector.write(str(tmp_path / "dv"))
        size = sum(
            os.path.getsize(os.path.join(str(tmp_path / "dv"), f))
            for f in os.listdir(str(tmp_path / "dv"))
        )
        assert size < 2000  # 10k consecutive positions collapse
