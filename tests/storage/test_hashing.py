"""Tests for deterministic segmentation hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hashing import RING_SIZE, fnv1a_64, hash_row, hash_value


class TestFnv:
    def test_known_vector(self):
        # FNV-1a 64-bit of empty input is the offset basis
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_avalanche(self):
        assert fnv1a_64(b"a") != fnv1a_64(b"b")

    @given(st.binary(max_size=64))
    def test_in_range(self, data):
        assert 0 <= fnv1a_64(data) < RING_SIZE


class TestValueHashing:
    def test_stable_across_calls(self):
        assert hash_value("abc") == hash_value("abc")
        assert hash_row([1, "x", 2.5]) == hash_row([1, "x", 2.5])

    def test_no_cross_type_collisions_for_common_values(self):
        values = [0, 0.0, "0", False, None]
        hashes = {hash_value(v) for v in values}
        assert len(hashes) == len(values)

    def test_row_boundaries_matter(self):
        assert hash_row(["ab", "c"]) != hash_row(["a", "bc"])

    @given(st.lists(st.one_of(
        st.none(), st.booleans(),
        st.integers(min_value=-(2**62), max_value=2**62),
        st.floats(allow_nan=False), st.text(max_size=10),
    ), max_size=5))
    def test_row_hash_in_ring(self, values):
        assert 0 <= hash_row(values) < RING_SIZE
