"""Unit + property tests for all six paper encodings.

The core invariant (DESIGN.md section 5): decode(encode(x)) == x for
every encoding on every input it claims to support.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.storage import encodings as enc

int_lists = st.lists(st.integers(min_value=-(2**62), max_value=2**62))
float_lists = st.lists(st.floats(allow_nan=False, allow_infinity=False))
text_lists = st.lists(st.text(max_size=20))
low_card_lists = st.lists(st.sampled_from(["a", "b", "c", None]) | st.just("a"))


def roundtrip(encoding, values):
    return encoding.decode(encoding.encode(values), len(values))


class TestPlain:
    @given(st.lists(st.one_of(st.integers(), st.floats(allow_nan=False), st.text())))
    def test_roundtrip(self, values):
        assert roundtrip(enc.PLAIN, values) == values

    @given(text_lists)
    def test_compressed_plain_roundtrip(self, values):
        assert roundtrip(enc.COMPRESSED_PLAIN, values) == values

    def test_compressed_smaller_on_repetitive(self):
        values = ["warehouse"] * 5000
        assert len(enc.COMPRESSED_PLAIN.encode(values)) < len(
            enc.PLAIN.encode(values)
        )


class TestRle:
    @given(st.lists(st.sampled_from(["x", "y", "z"])))
    def test_roundtrip_low_cardinality(self, values):
        assert roundtrip(enc.RLE, values) == values

    @given(int_lists)
    def test_roundtrip_any_ints(self, values):
        assert roundtrip(enc.RLE, values) == values

    def test_sorted_low_cardinality_is_tiny(self):
        values = sorted(["a", "b", "c"] * 10000)
        assert len(enc.RLE.encode(values)) < 30

    def test_iter_runs(self):
        values = ["a", "a", "b", "c", "c", "c"]
        data = enc.RLE.encode(values)
        assert list(enc.RLE.iter_runs(data, len(values))) == [
            ("a", 2),
            ("b", 1),
            ("c", 3),
        ]

    def test_run_count(self):
        assert enc.RLE.run_count([]) == 0
        assert enc.RLE.run_count([1, 1, 2, 1]) == 3


class TestDeltaValue:
    @given(int_lists)
    def test_roundtrip(self, values):
        assert roundtrip(enc.DELTAVAL, values) == values

    def test_narrow_range_compact(self):
        # 10k values within a span of 100: one byte per value + header.
        values = [1_000_000_000 + (i % 100) for i in range(10000)]
        assert len(enc.DELTAVAL.encode(values)) < 10100

    def test_supports_integers_only(self):
        assert enc.DELTAVAL.supports(types.INTEGER, [1, 2])
        assert not enc.DELTAVAL.supports(types.FLOAT, [1.5])


class TestBlockDictionary:
    @given(st.lists(st.sampled_from([10.25, 10.5, 10.75, 11.0])))
    def test_roundtrip_stock_prices(self, values):
        assert roundtrip(enc.BLOCK_DICT, values) == values

    @given(text_lists)
    def test_roundtrip_text(self, values):
        assert roundtrip(enc.BLOCK_DICT, values) == values

    def test_few_valued_compact(self):
        values = (["AAPL", "GOOG", "HP", "VERT"] * 2500)[:8192]
        # 8192 strings -> dictionary of 4 + 2 bits per row ~= 2 KB.
        assert len(enc.BLOCK_DICT.encode(values)) < 2200

    def test_supports_rejects_high_cardinality(self):
        many = [str(i) for i in range(5000)]
        assert not enc.BLOCK_DICT.supports(types.VARCHAR, many)
        assert enc.BLOCK_DICT.supports(types.VARCHAR, ["a"] * 10)


class TestCompressedDeltaRange:
    @given(int_lists)
    def test_roundtrip_ints(self, values):
        assert roundtrip(enc.DELTARANGE_COMP, values) == values

    @given(float_lists)
    def test_roundtrip_floats_exact(self, values):
        decoded = roundtrip(enc.DELTARANGE_COMP, values)
        assert decoded == values
        assert all(type(d) is type(v) for d, v in zip(decoded, values))

    def test_sorted_floats_compact(self):
        values = [float(i) * 0.5 for i in range(8192)]
        assert len(enc.DELTARANGE_COMP.encode(values)) < 8192 * 2

    def test_ordered_int_mapping_is_monotone(self):
        from repro.storage.encodings.delta_range import float_to_ordered_int

        floats = [-1e300, -2.5, -0.0, 0.0, 1e-300, 3.25, 1e300]
        mapped = [float_to_ordered_int(f) for f in floats]
        assert mapped == sorted(mapped)


class TestCompressedCommonDelta:
    @given(int_lists)
    def test_roundtrip(self, values):
        assert roundtrip(enc.COMMONDELTA_COMP, values) == values

    def test_periodic_timestamps_tiny(self):
        # Readings every 300 s with a couple of breaks (section 8.2.2).
        values = []
        current = 0
        for i in range(8192):
            current += 300 if i % 1000 else 86400
            values.append(current)
        assert len(enc.COMMONDELTA_COMP.encode(values)) < 200

    def test_supports_needs_common_deltas(self):
        import random

        rng = random.Random(7)
        scattered = sorted(rng.sample(range(10**15), 8192))
        # all-distinct deltas within sample limit is still "supported";
        # the AUTO chooser simply won't pick it when it loses on size.
        assert enc.COMMONDELTA_COMP.supports(types.INTEGER, scattered)
        assert not enc.COMMONDELTA_COMP.supports(types.FLOAT, [1.5, 2.5])


class TestAuto:
    def test_picks_rle_for_sorted_low_cardinality(self):
        values = sorted([1, 2, 3] * 1000)
        chosen = enc.choose_encoding(types.INTEGER, values)
        assert chosen.name == "RLE"

    def test_picks_common_delta_for_periodic(self):
        values = list(range(0, 8192 * 300, 300))
        chosen = enc.choose_encoding(types.INTEGER, values)
        assert chosen.name in ("COMMONDELTA_COMP", "DELTARANGE_COMP")

    def test_picks_dictionary_for_few_valued_unsorted(self):
        values = (["alpha_metric", "beta_metric", "gamma_metric"] * 1400)[:4096]
        import random

        random.Random(3).shuffle(values)
        chosen = enc.choose_encoding(types.VARCHAR, values)
        assert chosen.name in ("BLOCK_DICT", "COMPRESSED_PLAIN")

    def test_empty_block_gets_plain(self):
        assert enc.choose_encoding(types.INTEGER, []).name == "PLAIN"

    @given(int_lists)
    @settings(max_examples=25)
    def test_auto_encoding_roundtrip(self, values):
        assert roundtrip(enc.AUTO, values) == values

    def test_never_larger_than_plain_by_much(self):
        import random

        rng = random.Random(11)
        values = [rng.randrange(10**12) for _ in range(4096)]
        chosen = enc.choose_encoding(types.INTEGER, values)
        assert len(chosen.encode(values)) <= len(enc.PLAIN.encode(values))


class TestRegistry:
    def test_all_paper_encodings_registered(self):
        for name in (
            "AUTO",
            "RLE",
            "DELTAVAL",
            "BLOCK_DICT",
            "DELTARANGE_COMP",
            "COMMONDELTA_COMP",
            "PLAIN",
            "COMPRESSED_PLAIN",
        ):
            assert enc.encoding_by_name(name).name == name

    def test_lookup_case_insensitive(self):
        assert enc.encoding_by_name("rle") is enc.RLE

    def test_unknown_encoding_raises(self):
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            enc.encoding_by_name("LZ77")
