"""Seeded property round-trips for every encoding, through the full
column pipeline.

Unlike tests/storage/test_encodings.py (which exercises
``encoding.encode``/``decode`` in isolation), these drive the whole
path a real container uses: ``ColumnWriter`` (blocking + position
index) -> serialized bytes -> ``ColumnReader`` -> decoded values.

Each stream shape the paper's encodings care about is covered — empty,
single run, all-distinct, boundary magnitudes, and seeded random typed
streams — and every serialization is checked byte-for-byte: writing
the same values twice must produce identical bytes, and the decoded
values must equal the originals exactly (types included).

The measured compressed size of every roundtrip is recorded in the
metrics registry (``encoding.compressed_bytes.<NAME>``), which is how
the bench trajectory tracks compression wins per encoding.
"""

import random

import pytest

from repro import types
from repro.monitor import METRICS
from repro.storage.column_file import ColumnReader, ColumnWriter

SEED = 20260806
#: Small blocks so a few thousand values span many blocks.
BLOCK = 256

INT_BOUND = 2**62


def _ints(rng, count):
    return [rng.randint(-INT_BOUND, INT_BOUND) for _ in range(count)]


def _floats(rng, count):
    return [rng.uniform(-1e9, 1e9) for _ in range(count)]


def _texts(rng, count):
    alphabet = "abcdefghijklmnop"
    return [
        "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 12)))
        for _ in range(count)
    ]


def _with_nulls(rng, values):
    return [None if rng.random() < 0.05 else value for value in values]


def _low_cardinality(rng, count):
    domain = ["AAPL", "GOOG", "HP", "VERT", None]
    return [rng.choice(domain) for _ in range(count)]


def _periodic_ints(rng, count):
    current = rng.randint(0, 10**9)
    out = []
    for index in range(count):
        current += 86400 if index % 500 == 499 else 300
        out.append(current)
    return out


# (encoding, dtype, stream builder) — every registered encoding appears
# with streams it supports; AUTO exercises the chooser itself.
CASES = [
    ("PLAIN", types.INTEGER, _ints),
    ("PLAIN", types.VARCHAR, lambda rng, n: _with_nulls(rng, _texts(rng, n))),
    ("COMPRESSED_PLAIN", types.VARCHAR, _texts),
    ("RLE", types.VARCHAR, _low_cardinality),
    ("RLE", types.INTEGER, lambda rng, n: sorted(rng.choices(range(8), k=n))),
    ("DELTAVAL", types.INTEGER, _ints),
    ("BLOCK_DICT", types.VARCHAR, _low_cardinality),
    ("BLOCK_DICT", types.FLOAT, lambda rng, n: [rng.choice([10.25, 10.5, 10.75]) for _ in range(n)]),
    ("DELTARANGE_COMP", types.INTEGER, lambda rng, n: sorted(_ints(rng, n))),
    ("DELTARANGE_COMP", types.FLOAT, _floats),
    ("COMMONDELTA_COMP", types.INTEGER, _periodic_ints),
    ("AUTO", types.INTEGER, _ints),
    ("AUTO", types.VARCHAR, _low_cardinality),
]

BOUNDARY_STREAMS = {
    types.INTEGER: [0, 1, -1, INT_BOUND, -INT_BOUND, INT_BOUND - 1, 2, -2],
    types.FLOAT: [0.0, -0.0, 1e300, -1e300, 1e-300, -1e-300, 2.5, -2.5],
    types.VARCHAR: ["", "a", "a" * 200, "zz", "\t|\n", "0", "a", ""],
}


def _roundtrip(encoding_name, dtype, values):
    """Write values, reread them, and return (decoded, data, index)."""
    writer = ColumnWriter(dtype, encoding_name, block_rows=BLOCK)
    writer.extend(values)
    data, index = writer.finish()
    reader = ColumnReader(data, index)
    return reader.read_all(), data, index


def _check(encoding_name, dtype, values):
    decoded, data, index = _roundtrip(encoding_name, dtype, values)
    assert decoded == values
    # equality is not enough: 1 == 1.0, so pin the types too.
    assert all(
        type(got) is type(want)
        for got, want in zip(decoded, values)
        if want is not None
    )
    # determinism, byte-for-byte: the same stream serializes identically.
    decoded2, data2, index2 = _roundtrip(encoding_name, dtype, values)
    assert (data2, index2) == (data, index)
    assert decoded2 == values
    METRICS.observe(f"encoding.compressed_bytes.{encoding_name}", len(data))
    histogram = METRICS.histogram(f"encoding.compressed_bytes.{encoding_name}")
    assert histogram is not None and histogram.count >= 1


@pytest.mark.parametrize(
    "encoding_name,dtype,build",
    CASES,
    ids=[f"{name}-{dtype.name}" for name, dtype, build in CASES],
)
class TestEncodingPipelineRoundtrip:
    def test_random_stream(self, encoding_name, dtype, build):
        rng = random.Random(SEED)
        _check(encoding_name, dtype, build(rng, 3000))

    def test_empty_stream(self, encoding_name, dtype, build):
        _check(encoding_name, dtype, [])

    def test_single_run(self, encoding_name, dtype, build):
        rng = random.Random(SEED + 1)
        value = next(v for v in build(rng, 50) if v is not None)
        _check(encoding_name, dtype, [value] * (BLOCK * 2 + 17))

    def test_all_distinct(self, encoding_name, dtype, build):
        rng = random.Random(SEED + 2)
        seen: dict = {}
        for value in build(rng, 8000):
            if value is not None:
                seen.setdefault(repr(value), value)
        distinct = list(seen.values())[: BLOCK + 50]
        if encoding_name == "BLOCK_DICT":
            # the dictionary encoder only claims low-cardinality blocks;
            # keep the distinct run within one block's dictionary limit.
            distinct = distinct[:40]
        _check(encoding_name, dtype, distinct)

    def test_boundary_magnitudes(self, encoding_name, dtype, build):
        _check(encoding_name, dtype, list(BOUNDARY_STREAMS[dtype]))

    def test_different_seeds_differ(self, encoding_name, dtype, build):
        # the generators really are seed-driven: two seeds, two streams.
        a = build(random.Random(1), 200)
        b = build(random.Random(2), 200)
        assert len(a) == len(b) == 200
        if encoding_name not in ("RLE", "BLOCK_DICT"):
            assert a != b


def test_sizes_recorded_for_every_encoding():
    """After a sweep, the registry holds a size histogram per encoding."""
    rng = random.Random(SEED + 3)
    for encoding_name, dtype, build in CASES:
        _check(encoding_name, dtype, build(rng, 500))
    snapshot = METRICS.snapshot()
    for encoding_name, _, _ in CASES:
        key = f"encoding.compressed_bytes.{encoding_name}"
        assert key in snapshot["histograms"]
        assert snapshot["histograms"][key]["count"] >= 1
