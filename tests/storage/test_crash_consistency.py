"""Crash consistency: fault plans, atomic commit, scavenge, quarantine.

Every test arms a deterministic :class:`repro.faults.FaultPlan` at one
of the registered fault points and asserts the storage layer's
contract: a crash leaves either an ignorable ``.tmp`` orphan or a
complete, checksum-verified container — never a half-committed one
that serves wrong rows.
"""

import json
import os

import pytest

from repro import faults, types
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import (
    CorruptContainerError,
    FaultPlanError,
    InjectedFaultError,
    StorageError,
)
from repro.faults import FaultPlan
from repro.projections import super_projection
from repro.storage import StorageManager
from repro.tuple_mover import TupleMover


@pytest.fixture
def table():
    return TableDefinition(
        "events",
        [
            ColumnDef("month", types.INTEGER),
            ColumnDef("cid", types.INTEGER),
            ColumnDef("value", types.FLOAT),
        ],
        partition_by=lambda row: row["month"],
        partition_by_text="month",
    )


@pytest.fixture
def projection(table):
    return super_projection(table, sort_order=["cid"])


@pytest.fixture
def manager(tmp_path, table, projection):
    manager = StorageManager(str(tmp_path / "node0"), wos_capacity=1000)
    manager.register_projection(projection, table)
    return manager


def make_rows(n, start=0):
    return [
        {"month": 1, "cid": i, "value": float(i)} for i in range(start, start + n)
    ]


def fresh_manager(manager, table, projection):
    """A new StorageManager over the same root — the restarted process."""
    restarted = StorageManager(manager.root, wos_capacity=1000)
    restarted.register_projection(projection, table)
    return restarted


def visible_cids(manager, epoch=10):
    return sorted(
        row["cid"] for row in manager.read_visible_rows(NAME, epoch)
    )


NAME = "events_super"


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultPlan().arm("no.such.point", "crash")

    def test_disallowed_action_rejected(self):
        # delivery points cannot crash, storage points cannot drop
        with pytest.raises(FaultPlanError, match="not supported"):
            FaultPlan().arm("membership.delivery", "crash")
        with pytest.raises(FaultPlanError, match="not supported"):
            FaultPlan().arm("ros.publish", "drop")
        # bitflip only makes sense on published (durable) files
        with pytest.raises(FaultPlanError, match="not supported"):
            FaultPlan().arm("ros.write.column", "bitflip")

    def test_inject_is_noop_without_plan(self):
        assert faults.active() is None
        assert faults.inject("ros.publish") is None

    def test_skip_and_count(self, manager):
        plan = FaultPlan().arm("ros.publish", "crash", skip=1)
        with plan:
            manager.insert(NAME, make_rows(5), epoch=1, direct_to_ros=True)
            with pytest.raises(InjectedFaultError):
                manager.insert(
                    NAME, make_rows(5, start=5), epoch=2, direct_to_ros=True
                )
        assert [f.point for f in plan.fired] == ["ros.publish"]
        # disarmed after count exhausted
        with plan:
            manager.insert(NAME, make_rows(5, start=10), epoch=3, direct_to_ros=True)
        assert len(plan.fired) == 1

    def test_same_seed_same_torn_offset(self, manager, table, projection):
        offsets = []
        for attempt in range(2):
            scratch = StorageManager(
                os.path.join(manager.root, f"scratch{attempt}"),
                wos_capacity=1000,
            )
            scratch.register_projection(projection, table)
            plan = FaultPlan(seed=42).arm("ros.write.meta", "torn")
            with plan:
                with pytest.raises(InjectedFaultError):
                    scratch.insert(
                        NAME, make_rows(20), epoch=1, direct_to_ros=True
                    )
            offsets.append(plan.fired[0].detail)
        assert offsets[0] == offsets[1]


class TestAtomicCommit:
    @pytest.mark.parametrize(
        "point", ["ros.write.column", "ros.write.meta", "ros.publish"]
    )
    def test_crash_before_publish_leaves_no_container(self, manager, point):
        with FaultPlan().arm(point, "crash"):
            with pytest.raises(InjectedFaultError):
                manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        directory = os.path.join(manager.root, NAME)
        published = [e for e in os.listdir(directory) if not e.endswith(".tmp")]
        assert published == []

    def test_torn_staged_write_never_published(self, manager):
        with FaultPlan(seed=3).arm("ros.write.meta", "torn"):
            with pytest.raises(InjectedFaultError):
                manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        directory = os.path.join(manager.root, NAME)
        assert all(e.endswith(".tmp") for e in os.listdir(directory))

    def test_scavenge_removes_tmp_orphans(self, manager, table, projection):
        with FaultPlan().arm("ros.publish", "crash"):
            with pytest.raises(InjectedFaultError):
                manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert len(report.removed_tmp) == 1
        assert report.containers_loaded == 0
        assert not report.clean()
        directory = os.path.join(manager.root, NAME)
        assert os.listdir(directory) == []

    def test_crash_after_publish_is_recovered_by_scavenge(
        self, manager, table, projection
    ):
        with FaultPlan().arm("ros.published", "crash"):
            with pytest.raises(InjectedFaultError):
                manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert report.containers_loaded == 1
        assert report.quarantined == []
        assert visible_cids(restarted) == list(range(10))

    def test_scavenge_is_idempotent(self, manager, table, projection):
        manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        restarted = fresh_manager(manager, table, projection)
        assert restarted.scavenge().containers_loaded == 1
        again = restarted.scavenge()
        assert again.clean()
        assert again.containers_loaded == 0


class TestCorruptionDetection:
    def corrupt_one_file(self, manager, suffix=".dat"):
        """Flip a byte in one published container file, bypassing CRC."""
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        target = os.path.join(container.path, f"cid{suffix}")
        with open(target, "r+b") as handle:
            original = handle.read(1)[0]
            handle.seek(0)
            handle.write(bytes([original ^ 0xFF]))
        return container

    def test_bitflip_detected_not_served(self, manager):
        from repro.storage import ROSContainer

        with FaultPlan(seed=5).arm("ros.published", "bitflip"):
            manager.insert(NAME, make_rows(50), epoch=1, direct_to_ros=True)
        (container,) = manager.storage(NAME).containers.values()
        # a fresh verified load of the flipped container must refuse it
        # outright (whichever file the seeded flip landed in) — silent
        # corruption is detected, never returned as rows.
        with pytest.raises(CorruptContainerError):
            ROSContainer.load(container.path)

    def test_verify_containers_reports_damage(self, manager):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        assert manager.verify_containers(NAME) == []
        container = self.corrupt_one_file(manager)
        damaged = manager.verify_containers(NAME)
        assert len(damaged) == 1
        container_id, bad = damaged[0]
        assert container_id == container.container_id
        assert bad == ["cid.dat (crc mismatch)"]

    def test_scavenge_quarantines_corrupt_container(
        self, manager, table, projection
    ):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        self.corrupt_one_file(manager)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert len(report.quarantined) == 1
        assert "crc mismatch" in report.quarantined[0].reason
        # the damaged container is out of service, not crashing reads
        assert visible_cids(restarted) == []
        assert os.path.isdir(
            os.path.join(restarted.root, NAME, "quarantine")
        )

    def test_scavenge_quarantines_missing_file(self, manager, table, projection):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        os.remove(os.path.join(container.path, "value.dat"))
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert len(report.quarantined) == 1
        assert "value.dat (missing)" in report.quarantined[0].reason

    def test_tampered_meta_fails_self_checksum(self, manager, table, projection):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        meta_path = os.path.join(container.path, "meta.json")
        with open(meta_path) as handle:
            raw = json.load(handle)
        raw["row_count"] = 19  # lie about the row count
        with open(meta_path, "w") as handle:
            json.dump(raw, handle)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert len(report.quarantined) == 1
        assert "self-checksum" in report.quarantined[0].reason

    def test_quarantine_container_and_purge(self, manager):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        state = manager.storage(NAME)
        (container_id,) = state.containers
        record = manager.quarantine_container(NAME, container_id, "test")
        assert state.containers == {}
        assert os.path.isdir(record.path)
        assert manager.purge_quarantine() == 1
        assert not os.path.exists(record.path)
        assert manager.quarantined == []


class TestMergeoutCrashRecovery:
    def test_duplicate_coverage_retired_on_scavenge(
        self, manager, table, projection
    ):
        mover = TupleMover(manager)
        for epoch in range(1, 5):
            manager.insert(
                NAME, make_rows(10, start=epoch * 10), epoch=epoch,
                direct_to_ros=True,
            )
        with FaultPlan().arm("mover.mergeout.retire", "crash"):
            with pytest.raises(InjectedFaultError):
                mover.mergeout(NAME)
        # crash left the merged container AND its inputs on disk
        directory = os.path.join(manager.root, NAME)
        on_disk = [e for e in os.listdir(directory) if e.startswith("ros_")]
        assert len(on_disk) == 5
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        retired = {cid for _, cid in report.duplicates_retired}
        assert len(retired) == 4
        # no duplicate rows: exactly the original multiset survives
        assert visible_cids(restarted) == list(range(10, 50))

    def test_moveout_crash_loses_only_undrained_tail(
        self, manager, table, projection
    ):
        mover = TupleMover(manager)
        rows = [{"month": m, "cid": i, "value": 1.0} for m in (1, 2) for i in range(5)]
        manager.insert(NAME, rows, epoch=1)
        with FaultPlan().arm("mover.moveout.container", "crash"):
            with pytest.raises(InjectedFaultError):
                mover.moveout(NAME)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert report.containers_loaded == 1
        # half the WOS made it out; the lost tail is what the LGE/
        # buddy-replay recovery path re-copies at cluster level.
        assert len(visible_cids(restarted)) == 5


class TestDeleteVectorCrash:
    def seeded(self, manager):
        manager.insert(NAME, make_rows(20), epoch=1, direct_to_ros=True)
        manager.delete_where(
            NAME, lambda row: row["cid"] < 5, commit_epoch=2, snapshot_epoch=1
        )

    def test_dv_publish_crash_leaves_no_vector(self, manager, table, projection):
        self.seeded(manager)
        with FaultPlan().arm("dv.publish", "crash"):
            with pytest.raises(InjectedFaultError):
                manager.persist_delete_vectors(NAME)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert report.removed_tmp  # the staged dv dir
        assert report.delete_vectors_loaded == 0
        # deletes were lost with the crash; rows are all visible again
        assert visible_cids(restarted) == list(range(20))

    def test_persisted_vectors_reattached_on_scavenge(
        self, manager, table, projection
    ):
        self.seeded(manager)
        manager.persist_delete_vectors(NAME)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert report.delete_vectors_loaded == 1
        assert visible_cids(restarted) == list(range(5, 20))

    def test_stale_vector_for_missing_container_removed(
        self, manager, table, projection
    ):
        self.seeded(manager)
        manager.persist_delete_vectors(NAME)
        state = manager.storage(NAME)
        (container_id,) = state.containers
        container = state.containers[container_id]
        import shutil

        shutil.rmtree(container.path)
        restarted = fresh_manager(manager, table, projection)
        report = restarted.scavenge()
        assert report.stale_delete_vectors == 1
        assert report.delete_vectors_loaded == 0


class TestAdoptContainer:
    def test_adopt_assigns_fresh_identity(self, manager, table, projection):
        manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        state = manager.storage(NAME)
        (source_id,) = state.containers
        source = state.containers[source_id]
        other = StorageManager(
            os.path.join(os.path.dirname(manager.root), "node1"),
            wos_capacity=1000,
        )
        other.register_projection(projection, table)
        other.insert(NAME, make_rows(3, start=100), epoch=1, direct_to_ros=True)
        new_id = other.adopt_container(NAME, source.path)
        assert new_id not in (source_id,)
        adopted = other.storage(NAME).containers[new_id]
        assert adopted.meta.container_id == new_id
        # the on-disk meta was rewritten, not just patched in memory
        with open(os.path.join(adopted.path, "meta.json")) as handle:
            assert json.load(handle)["container_id"] == new_id
        assert sorted(
            row["cid"] for row in other.read_visible_rows(NAME, 10)
        ) == list(range(10)) + [100, 101, 102]

    def test_adopt_rejects_wrong_projection(self, manager, table, tmp_path):
        other_projection = super_projection(
            TableDefinition("other", [ColumnDef("k", types.INTEGER)]),
            sort_order=["k"],
        )
        foreign = StorageManager(str(tmp_path / "foreign"), wos_capacity=1000)
        foreign.register_projection(
            other_projection, TableDefinition("other", [ColumnDef("k", types.INTEGER)])
        )
        foreign.insert("other_super", [{"k": 1}], epoch=1, direct_to_ros=True)
        source = next(
            iter(foreign.storage("other_super").containers.values())
        )
        with pytest.raises(StorageError, match="belongs to projection"):
            manager.adopt_container(NAME, source.path)

    def test_adopt_rejects_corrupt_source(self, manager):
        manager.insert(NAME, make_rows(10), epoch=1, direct_to_ros=True)
        state = manager.storage(NAME)
        (container_id,) = list(state.containers)
        source = state.containers[container_id]
        with open(os.path.join(source.path, "cid.dat"), "r+b") as handle:
            first = handle.read(1)[0]
            handle.seek(0)
            handle.write(bytes([first ^ 0xFF]))
        with pytest.raises(CorruptContainerError):
            manager.adopt_container(NAME, source.path)
