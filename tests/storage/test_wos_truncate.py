"""Regression tests for WOS truncation and its conservation sanitizer."""

import pytest

from repro.errors import InvariantViolation
from repro.lint import sanitizer
from repro.storage.wos import WriteOptimizedStore


def wos_with(epochs):
    wos = WriteOptimizedStore()
    for index, epoch in enumerate(epochs):
        wos.insert([{"k": index}], epoch)
    return wos


class TestTruncateAfterEpoch:
    def test_drops_only_rows_past_epoch(self):
        wos = wos_with([1, 2, 3, 2, 4])
        with sanitizer.override(True):
            dropped = wos.truncate_after_epoch(2)
        assert dropped == 2
        assert wos.epochs == [1, 2, 2]
        assert [row["k"] for row in wos.rows] == [0, 1, 3]

    def test_empty_wos_is_a_noop(self):
        wos = WriteOptimizedStore()
        with sanitizer.override(True):
            assert wos.truncate_after_epoch(5) == 0
        assert wos.rows == [] and wos.epochs == []

    def test_all_rows_truncated(self):
        wos = wos_with([7, 8, 9])
        with sanitizer.override(True):
            assert wos.truncate_after_epoch(6) == 3
        assert wos.rows == [] and wos.epochs == []

    def test_nothing_truncated_when_all_at_or_below(self):
        wos = wos_with([1, 1, 2])
        with sanitizer.override(True):
            assert wos.truncate_after_epoch(2) == 0
        assert wos.row_count == 3


class TestSanitizer:
    def test_detects_miscounted_drop(self):
        with sanitizer.override(True):
            with pytest.raises(InvariantViolation):
                sanitizer.check_wos_truncate(2, 3, 2, [1, 2])

    def test_detects_surviving_future_row(self):
        with sanitizer.override(True):
            with pytest.raises(InvariantViolation):
                sanitizer.check_wos_truncate(2, 1, 1, [1, 3])

    def test_noop_when_disabled(self):
        with sanitizer.override(False):
            sanitizer.check_wos_truncate(2, 3, 2, [1, 3])  # no raise
