"""Unit tests for the low-level serialization primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage import serde


class TestVarint:
    def test_zero(self):
        out = bytearray()
        serde.write_uvarint(out, 0)
        assert bytes(out) == b"\x00"
        assert serde.read_uvarint(bytes(out), 0) == (0, 1)

    def test_single_byte_boundary(self):
        out = bytearray()
        serde.write_uvarint(out, 127)
        assert len(out) == 1
        out2 = bytearray()
        serde.write_uvarint(out2, 128)
        assert len(out2) == 2

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            serde.write_uvarint(bytearray(), -1)

    def test_truncated_raises(self):
        out = bytearray()
        serde.write_uvarint(out, 1 << 40)
        with pytest.raises(EncodingError):
            serde.read_uvarint(bytes(out[:-1]), 0)

    @given(st.integers(min_value=0, max_value=2**70))
    def test_roundtrip(self, value):
        out = bytearray()
        serde.write_uvarint(out, value)
        assert serde.read_uvarint(bytes(out), 0) == (value, len(out))


class TestZigzag:
    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_roundtrip(self, value):
        assert serde.unzigzag(serde.zigzag(value)) == value

    def test_small_magnitudes_small_codes(self):
        assert serde.zigzag(0) == 0
        assert serde.zigzag(-1) == 1
        assert serde.zigzag(1) == 2
        assert serde.zigzag(-2) == 3

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_svarint_roundtrip(self, value):
        out = bytearray()
        serde.write_svarint(out, value)
        assert serde.read_svarint(bytes(out), 0) == (value, len(out))


class TestScalars:
    @given(st.floats(allow_nan=False))
    def test_double_roundtrip(self, value):
        out = bytearray()
        serde.write_double(out, value)
        decoded, offset = serde.read_double(bytes(out), 0)
        assert decoded == value
        assert offset == 8

    @given(st.text())
    def test_string_roundtrip(self, value):
        out = bytearray()
        serde.write_string(out, value)
        assert serde.read_string(bytes(out), 0) == (value, len(out))


sql_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(),
)


class TestSelfDescribingValues:
    @given(sql_values)
    def test_roundtrip(self, value):
        out = bytearray()
        serde.write_value(out, value)
        decoded, offset = serde.read_value(bytes(out), 0)
        assert decoded == value and type(decoded) is type(value)
        assert offset == len(out)

    def test_sequence_roundtrip(self):
        values = [None, True, False, -5, 3.25, "héllo", ""]
        out = bytearray()
        for value in values:
            serde.write_value(out, value)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = serde.read_value(bytes(out), offset)
            decoded.append(value)
        assert decoded == values

    def test_unsupported_type_raises(self):
        with pytest.raises(EncodingError):
            serde.write_value(bytearray(), object())


class TestBitPacking:
    @given(
        st.lists(st.integers(min_value=0, max_value=2**17 - 1)),
    )
    def test_roundtrip(self, values):
        width = serde.bit_width_for(max(values) if values else 0)
        packed = serde.pack_bits(values, width)
        assert serde.unpack_bits(packed, width, len(values)) == values

    def test_zero_width(self):
        assert serde.pack_bits([0, 0, 0], 0) == b""
        assert serde.unpack_bits(b"", 0, 3) == [0, 0, 0]

    def test_width_for(self):
        assert serde.bit_width_for(0) == 0
        assert serde.bit_width_for(1) == 1
        assert serde.bit_width_for(255) == 8
        assert serde.bit_width_for(256) == 9
