"""Tests for the epoch manager: clock, LGE and AHM."""

import pytest

from repro.errors import TransactionError
from repro.txn import AhmPolicy, EpochManager


class TestEpochClock:
    def test_initial_state(self):
        epochs = EpochManager()
        assert epochs.current_epoch == 1
        assert epochs.latest_queryable_epoch == 0

    def test_commit_advances_epoch(self):
        epochs = EpochManager()
        commit_epoch = epochs.advance_for_commit()
        assert commit_epoch == 1
        assert epochs.current_epoch == 2
        # the committed data (stamped epoch 1) is immediately queryable
        assert epochs.latest_queryable_epoch == 1

    def test_successive_commits_monotone(self):
        epochs = EpochManager()
        stamps = [epochs.advance_for_commit() for _ in range(5)]
        assert stamps == [1, 2, 3, 4, 5]


class TestLge:
    def test_lge_tracking(self):
        epochs = EpochManager()
        epochs.set_lge(0, "p1", 5)
        assert epochs.lge(0, "p1") == 5
        assert epochs.lge(0, "other") == 0

    def test_lge_cannot_regress(self):
        epochs = EpochManager()
        epochs.set_lge(0, "p1", 5)
        with pytest.raises(TransactionError):
            epochs.set_lge(0, "p1", 4)

    def test_cluster_lge_is_minimum(self):
        epochs = EpochManager()
        epochs.set_lge(0, "p1", 5)
        epochs.set_lge(1, "p1", 3)
        assert epochs.cluster_lge() == 3


class TestAhm:
    def test_ahm_advances_by_policy(self):
        epochs = EpochManager(policy=AhmPolicy(lag_epochs=2))
        for _ in range(10):
            epochs.advance_for_commit()
        assert epochs.advance_ahm() == 8  # latest queryable 10, lag 2

    def test_ahm_held_by_lge(self):
        epochs = EpochManager(policy=AhmPolicy(lag_epochs=0))
        for _ in range(10):
            epochs.advance_for_commit()
        epochs.set_lge(0, "p1", 4)
        assert epochs.advance_ahm() == 4

    def test_ahm_holds_while_node_down(self):
        epochs = EpochManager(policy=AhmPolicy(lag_epochs=0))
        for _ in range(5):
            epochs.advance_for_commit()
        epochs.node_down(2)
        assert epochs.advance_ahm() == 0
        epochs.node_up(2)
        assert epochs.advance_ahm() == 5

    def test_ahm_never_regresses(self):
        epochs = EpochManager(policy=AhmPolicy(lag_epochs=0))
        for _ in range(5):
            epochs.advance_for_commit()
        assert epochs.advance_ahm() == 5
        epochs.set_lge(0, "p1", 2)  # a laggard projection appears
        assert epochs.advance_ahm() == 5  # held, not rolled back
