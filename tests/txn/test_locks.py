"""Exact verification of Table 1 and Table 2, plus lock manager behaviour."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.txn import LockManager, LockMode, compatible, convert

S, I, SI, X, T, U, O = (
    LockMode.S,
    LockMode.I,
    LockMode.SI,
    LockMode.X,
    LockMode.T,
    LockMode.U,
    LockMode.O,
)

MODES = [S, I, SI, X, T, U, O]

# Table 1 of the paper, verbatim: rows = requested, cols = granted.
PAPER_COMPATIBILITY = [
    # S      I      SI     X      T      U      O
    [True, False, False, False, True, True, False],  # S
    [False, True, False, False, True, True, False],  # I
    [False, False, False, False, True, True, False],  # SI
    [False, False, False, False, False, True, False],  # X
    [True, True, True, False, True, True, False],  # T
    [True, True, True, True, True, True, False],  # U
    [False, False, False, False, False, False, False],  # O
]

# Table 2 of the paper, verbatim.
PAPER_CONVERSION = [
    # S   I   SI  X   T   U   O
    [S, SI, SI, X, S, S, O],  # S
    [SI, I, SI, X, I, I, O],  # I
    [SI, SI, SI, X, SI, SI, O],  # SI
    [X, X, X, X, X, X, O],  # X
    [S, I, SI, X, T, T, O],  # T
    [S, I, SI, X, T, U, O],  # U
    [O, O, O, O, O, O, O],  # O
]


class TestTable1:
    @pytest.mark.parametrize("row", range(7))
    @pytest.mark.parametrize("col", range(7))
    def test_every_cell(self, row, col):
        assert compatible(MODES[row], MODES[col]) is PAPER_COMPATIBILITY[row][col]

    def test_insert_self_compatible(self):
        # "enabling multiple inserts and bulk loads to occur
        # simultaneously which is critical to maintain high ingest rates"
        assert compatible(I, I)

    def test_usage_compatible_with_all_but_owner(self):
        for granted in MODES:
            assert compatible(U, granted) is (granted is not O)

    def test_owner_excludes_everything(self):
        for granted in MODES:
            assert not compatible(O, granted)
            assert not compatible(granted, O)


class TestTable2:
    @pytest.mark.parametrize("row", range(7))
    @pytest.mark.parametrize("col", range(7))
    def test_every_cell(self, row, col):
        assert convert(MODES[row], MODES[col]) is PAPER_CONVERSION[row][col]

    def test_read_plus_insert_is_shared_insert(self):
        assert convert(S, I) is SI
        assert convert(I, S) is SI


class TestLockManager:
    def test_grant_and_hold(self):
        manager = LockManager()
        assert manager.acquire(1, "t", S) is S
        assert manager.held(1, "t") is S

    def test_concurrent_inserts_allowed(self):
        manager = LockManager()
        manager.acquire(1, "t", I)
        manager.acquire(2, "t", I)
        assert manager.holders_of("t") == {1: I, 2: I}

    def test_exclusive_blocks_shared(self):
        manager = LockManager()
        manager.acquire(1, "t", X)
        with pytest.raises(LockTimeoutError):
            manager.acquire(2, "t", S)

    def test_tuple_mover_concurrent_with_writers(self):
        manager = LockManager()
        manager.acquire(1, "t", I)
        manager.acquire(99, "t", T)  # tuple mover
        manager.acquire(99, "t", U)

    def test_conversion_on_reacquire(self):
        manager = LockManager()
        manager.acquire(1, "t", I)
        assert manager.acquire(1, "t", S) is SI

    def test_conversion_checked_against_others(self):
        manager = LockManager()
        manager.acquire(1, "t", I)
        manager.acquire(2, "t", I)  # two concurrent loaders
        # txn 1 now wants to read as well -> SI, but SI is incompatible
        # with txn 2's I.
        with pytest.raises(LockTimeoutError):
            manager.acquire(1, "t", S)

    def test_release(self):
        manager = LockManager()
        manager.acquire(1, "t", X)
        manager.release(1, "t")
        manager.acquire(2, "t", S)  # now grantable

    def test_release_unheld_raises(self):
        manager = LockManager()
        with pytest.raises(TransactionError):
            manager.release(1, "t")

    def test_release_all(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        manager.acquire(1, "b", S)
        manager.release_all(1)
        assert manager.held(1, "a") is None
        assert manager.held(1, "b") is None

    def test_locks_are_per_object(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        manager.acquire(2, "b", X)  # different table: fine

    def test_matrix_exports_full(self):
        assert len(LockManager.compatibility_matrix()) == 49
        assert len(LockManager.conversion_matrix()) == 49
        assert LockManager.modes() == ["S", "I", "SI", "X", "T", "U", "O"]


def park(manager, txn_id, obj, mode, results, timeout=5.0):
    """Block ``txn_id`` on ``obj`` from a worker thread; returns it."""

    def run():
        try:
            results[txn_id] = manager.acquire(
                txn_id, obj, mode, block=True, timeout=timeout
            )
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            results[txn_id] = exc

    worker = threading.Thread(target=run)
    worker.start()
    deadline = time.monotonic() + 5.0
    while txn_id not in manager.waiting():
        if time.monotonic() > deadline or txn_id in results:
            break
        time.sleep(0.001)
    return worker


class TestDeadlockDetection:
    def test_two_party_cycle(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        manager.acquire(2, "b", X)
        results = {}
        worker = park(manager, 2, "a", X, results)
        # txn 1's request for "b" closes the cycle 1 -> 2 -> 1 and is
        # the deterministic victim; txn 2 stays parked.
        with pytest.raises(DeadlockError) as exc_info:
            manager.acquire(1, "b", X)
        assert exc_info.value.cycle[0] == 1
        assert set(exc_info.value.cycle) == {1, 2}
        assert "txn 1" in str(exc_info.value)
        assert "txn 2" in str(exc_info.value)
        # the victim rolls back; the survivor's parked request is granted.
        manager.release_all(1)
        worker.join(timeout=5.0)
        assert results[2] is X

    def test_three_party_cycle(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        manager.acquire(2, "b", X)
        manager.acquire(3, "c", X)
        results = {}
        worker2 = park(manager, 2, "a", X, results)
        worker3 = park(manager, 3, "b", X, results)
        with pytest.raises(DeadlockError) as exc_info:
            manager.acquire(1, "c", X)
        assert exc_info.value.cycle[0] == 1
        assert set(exc_info.value.cycle) == {1, 2, 3}
        # the victim's rollback unblocks txn 2; txn 3 follows once txn 2
        # commits and releases in turn.
        manager.release_all(1)
        worker2.join(timeout=5.0)
        assert results[2] is X
        manager.release_all(2)
        worker3.join(timeout=5.0)
        assert results[3] is X

    def test_usage_to_owner_upgrade_deadlock(self):
        # both hold U; each requests O, which U blocks — the classic
        # symmetric upgrade deadlock Table 2 makes possible.
        manager = LockManager()
        manager.acquire(1, "t", U)
        manager.acquire(2, "t", U)
        results = {}
        worker = park(manager, 2, "t", O, results)
        with pytest.raises(DeadlockError) as exc_info:
            manager.acquire(1, "t", O)
        assert set(exc_info.value.cycle) == {1, 2}
        assert manager.held(1, "t") is U  # failed upgrade left mode intact
        manager.release_all(1)
        worker.join(timeout=5.0)
        assert results[2] is O

    def test_deadlock_beats_timeout_without_blocking(self):
        # the cycle check runs before the block/timeout decision, so a
        # non-blocking request that closes a cycle reports the deadlock
        # rather than a generic timeout.
        manager = LockManager()
        manager.acquire(1, "a", X)
        manager.acquire(2, "b", X)
        results = {}
        worker = park(manager, 2, "a", X, results)
        with pytest.raises(DeadlockError):
            manager.acquire(1, "b", X, block=False)
        manager.release_all(1)
        worker.join(timeout=5.0)
        assert results[2] is X

    def test_blocking_wait_times_out(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        with pytest.raises(LockTimeoutError, match="txn 1 holds X"):
            manager.acquire(2, "a", S, block=True, timeout=0.05)
        assert manager.waiting() == {}

    def test_blocking_wait_granted_on_release(self):
        manager = LockManager()
        manager.acquire(1, "a", X)
        results = {}
        worker = park(manager, 2, "a", S, results)
        assert manager.waiting() == {2: ("a", "S")}
        manager.release(1, "a")
        worker.join(timeout=5.0)
        assert results[2] is S
        assert manager.waiting() == {}

    def test_no_false_deadlock_on_plain_contention(self):
        manager = LockManager()
        before = METRICS_DEADLOCKS()
        manager.acquire(1, "a", X)
        with pytest.raises(LockTimeoutError):
            manager.acquire(2, "a", X)
        assert METRICS_DEADLOCKS() == before

    def test_deadlock_bumps_metric(self):
        manager = LockManager()
        before = METRICS_DEADLOCKS()
        manager.acquire(1, "a", X)
        manager.acquire(2, "b", X)
        results = {}
        worker = park(manager, 2, "a", X, results)
        with pytest.raises(DeadlockError):
            manager.acquire(1, "b", X)
        assert METRICS_DEADLOCKS() == before + 1
        manager.release_all(1)
        worker.join(timeout=5.0)


def METRICS_DEADLOCKS():
    from repro.monitor import METRICS

    return METRICS.counters_with_prefix("locks.deadlocks").get(
        "locks.deadlocks", 0
    )


class TestWaiterCleanup:
    """A waiter that leaves by timeout or cancellation must take its
    waits-for edges and CV registration with it — otherwise a later
    deadlock search can pick a transaction that is no longer waiting."""

    def test_timed_out_waiter_cannot_become_deadlock_victim(self):
        # txn 2 times out waiting for "t" (held by txn 1), then txn 1
        # requests "u" (held by txn 2).  Were txn 2's stale wait edge
        # still in the graph, 1→u→2→t→1 would read as a cycle and txn 1
        # would be spuriously killed; the real outcome is a plain
        # timeout because nobody is actually waiting on txn 1.
        manager = LockManager()
        manager.acquire(1, "t", X)
        manager.acquire(2, "u", X)
        with pytest.raises(LockTimeoutError):
            manager.acquire(2, "t", S, block=True, timeout=0.05)
        assert manager.waiting() == {}
        with pytest.raises(LockTimeoutError):
            manager.acquire(1, "u", S, block=True, timeout=0.05)

    def test_cancelled_waiter_deregisters(self):
        from repro.errors import QueryCancelledError

        manager = LockManager()
        manager.acquire(1, "t", X)

        calls = {"n": 0}

        def cancel():
            calls["n"] += 1
            if calls["n"] > 1:  # let the first registration happen
                raise QueryCancelledError("client cancelled")

        with pytest.raises(QueryCancelledError):
            manager.acquire(
                2, "t", S, block=True, timeout=5.0, cancel=cancel
            )
        assert manager.waiting() == {}
        # the lock table is undisturbed: txn 1 still holds X, and a
        # third party sees ordinary contention, not a phantom waiter.
        with pytest.raises(LockTimeoutError):
            manager.acquire(3, "t", S, block=False)

    def test_cancelled_waiter_cannot_become_deadlock_victim(self):
        from repro.errors import QueryCancelledError

        manager = LockManager()
        manager.acquire(1, "t", X)
        manager.acquire(2, "u", X)

        def cancel():
            if 2 in manager.waiting():
                raise QueryCancelledError("client cancelled")

        with pytest.raises(QueryCancelledError):
            manager.acquire(2, "t", S, block=True, timeout=5.0, cancel=cancel)
        with pytest.raises(LockTimeoutError):
            manager.acquire(1, "u", S, block=True, timeout=0.05)

    def test_wake_waiters_prods_parked_threads(self):
        # wake_waiters lets an external cancel flag be observed promptly
        # instead of at the next wake slice.
        from repro.errors import QueryCancelledError

        manager = LockManager()
        manager.acquire(1, "t", X)
        flag = {"cancelled": False}

        def cancel():
            if flag["cancelled"]:
                raise QueryCancelledError("flagged")

        results = {}

        def run():
            try:
                results[2] = manager.acquire(
                    2, "t", S, block=True, timeout=30.0, cancel=cancel
                )
            except Exception as exc:  # noqa: BLE001 - surfaced by the test
                results[2] = exc

        worker = threading.Thread(target=run)
        worker.start()
        deadline = time.monotonic() + 5.0
        while 2 not in manager.waiting():
            if time.monotonic() > deadline:
                raise AssertionError("waiter never parked")
            time.sleep(0.001)
        flag["cancelled"] = True
        manager.wake_waiters()
        worker.join(timeout=5.0)
        assert isinstance(results[2], QueryCancelledError)
        assert manager.waiting() == {}


class TestMatrixInternalConsistency:
    def test_compatibility_is_symmetric(self):
        # Table 1 is symmetric in the paper; verify our copy is too.
        for a in MODES:
            for b in MODES:
                assert compatible(a, b) == compatible(b, a)

    def test_conversion_result_at_least_as_strong(self):
        # Converting never yields a mode compatible with something the
        # original pair was not both compatible with.
        for requested in MODES:
            for granted in MODES:
                result = convert(requested, granted)
                for other in MODES:
                    if not compatible(granted, other):
                        assert not compatible(result, other), (
                            requested,
                            granted,
                            other,
                        )

    def test_conversion_idempotent_on_diagonal(self):
        for mode in MODES:
            assert convert(mode, mode) is mode


class TestConversionEdgeCases:
    """Audit of Table 2 corner cases through the lock manager.

    The interesting rows are O (DDL upgrade paths) and the tuple-mover
    pair T/U, where the converted mode is *not* simply the stronger of
    the two enum values.
    """

    def test_owner_absorbs_every_mode(self):
        # Requesting O while holding anything, or anything while holding
        # O, always lands on O — DDL ownership is absorbing.
        for mode in MODES:
            assert convert(O, mode) is O
            assert convert(mode, O) is O

    def test_usage_to_owner_upgrade_single_holder(self):
        # The tuple mover holds U; a DDL request by the same transaction
        # upgrades in place because no one else holds the table.
        manager = LockManager()
        assert manager.acquire(1, "t", U) is U
        assert manager.acquire(1, "t", O) is O
        assert manager.held(1, "t") is O

    def test_usage_to_owner_upgrade_blocked_by_concurrent_holder(self):
        # U is compatible with everything but O, so two transactions can
        # hold U together — but then neither can upgrade to O, and the
        # failed upgrade must leave the held mode untouched.
        manager = LockManager()
        manager.acquire(1, "t", U)
        manager.acquire(2, "t", U)
        with pytest.raises(LockTimeoutError):
            manager.acquire(1, "t", O)
        assert manager.held(1, "t") is U
        assert manager.held(2, "t") is U

    def test_failed_upgrade_to_exclusive_leaves_shared(self):
        manager = LockManager()
        manager.acquire(1, "t", S)
        manager.acquire(2, "t", S)
        with pytest.raises(LockTimeoutError):
            manager.acquire(1, "t", X)  # convert(X, S) = X, blocked by txn 2
        assert manager.held(1, "t") is S

    def test_tuple_mover_modes_convert_to_t(self):
        # T + U in either order yields T, not U: the short tuple-mover
        # mode dominates the long-held usage mode.
        assert convert(T, U) is T
        assert convert(U, T) is T
        manager = LockManager()
        manager.acquire(1, "t", U)
        assert manager.acquire(1, "t", T) is T

    def test_conversion_is_commutative(self):
        # Table 2 is symmetric: the combined mode does not depend on
        # which of the two modes was requested first.
        for a in MODES:
            for b in MODES:
                assert convert(a, b) is convert(b, a), (a, b)

    def test_conversion_strengthens_requested_side_too(self):
        # The converted mode is at least as strong as the *requested*
        # mode as well (TestMatrixInternalConsistency covers the granted
        # side): anything incompatible with the request stays
        # incompatible with the result.
        for requested in MODES:
            for granted in MODES:
                result = convert(requested, granted)
                for other in MODES:
                    if not compatible(requested, other):
                        assert not compatible(result, other), (
                            requested,
                            granted,
                            other,
                        )
