"""Tests for the Transaction state object."""

import pytest

from repro.errors import TransactionError
from repro.txn import IsolationLevel, Transaction, TxnStatus


class TestLifecycle:
    def test_initial_state(self):
        txn = Transaction(txn_id=1)
        assert txn.status is TxnStatus.ACTIVE
        assert txn.isolation is IsolationLevel.READ_COMMITTED
        assert not txn.has_dml

    def test_buffering_marks_dml(self):
        txn = Transaction(txn_id=1)
        txn.buffer_insert("t", [{"a": 1}])
        assert txn.has_dml
        assert txn.local_inserts_for("t") == [{"a": 1}]
        assert txn.local_inserts_for("other") == []

    def test_buffer_delete(self):
        txn = Transaction(txn_id=1)
        txn.buffer_delete("t", lambda row: True)
        assert txn.has_dml
        assert txn.pending_deletes[0].table == "t"

    def test_inserts_accumulate(self):
        txn = Transaction(txn_id=1)
        txn.buffer_insert("t", [{"a": 1}])
        txn.buffer_insert("t", [{"a": 2}])
        assert len(txn.local_inserts_for("t")) == 2

    def test_committed_txn_rejects_statements(self):
        txn = Transaction(txn_id=1)
        txn.status = TxnStatus.COMMITTED
        with pytest.raises(TransactionError):
            txn.buffer_insert("t", [])
        with pytest.raises(TransactionError):
            txn.check_active()

    def test_aborted_txn_rejects_statements(self):
        txn = Transaction(txn_id=1)
        txn.status = TxnStatus.ABORTED
        with pytest.raises(TransactionError):
            txn.buffer_delete("t", lambda row: True)
