"""Deterministic unit tests for the resource governor.

Everything here drives :meth:`ResourceGovernor.submit` /
:meth:`release` / :meth:`on_tick` single-threaded: admission is a pure
function of governor state and call order, so each scenario replays
exactly (no threads, no sleeps, no wall clock).
"""

import pytest

from repro.cluster.clock import SimulatedClock
from repro.errors import AdmissionTimeoutError, ResourceExceededError
from repro.service import PoolConfig, ResourceGovernor
from repro.service.governor import (
    CANCELLED,
    GRANTED,
    QUEUED,
    REJECTED,
    RELEASED,
    TIMED_OUT,
)


def make_governor(**overrides):
    clock = SimulatedClock()
    config = dict(
        name="p",
        memory_budget_rows=100,
        max_concurrency=2,
        queue_depth=2,
        queue_timeout_ticks=5,
    )
    config.update(overrides)
    return clock, ResourceGovernor(clock, [PoolConfig(**config)])


class TestSubmit:
    def test_grant_queue_reject_ladder(self):
        _, governor = make_governor()
        states = [governor.submit("p").state for _ in range(6)]
        # 2 run, 2 queue, the rest are turned away at the door.
        assert states == [GRANTED, GRANTED, QUEUED, QUEUED, REJECTED, REJECTED]

    def test_same_sequence_replays_identically(self):
        first = [make_governor()[1].submit("p").state for _ in range(6)]
        second = [make_governor()[1].submit("p").state for _ in range(6)]
        assert first == second

    def test_memory_limits_concurrency(self):
        # budget 100, each statement asks 60: the second fits the
        # concurrency slot but not the memory budget -> queued.
        _, governor = make_governor()
        assert governor.submit("p", memory_rows=60).state == GRANTED
        assert governor.submit("p", memory_rows=60).state == QUEUED

    def test_default_grant_is_budget_over_concurrency(self):
        _, governor = make_governor()
        ticket = governor.submit("p")
        assert ticket.memory_rows == 50

    def test_oversized_request_rejected_outright(self):
        _, governor = make_governor()
        with pytest.raises(ResourceExceededError):
            governor.submit("p", memory_rows=101)

    def test_unknown_pool_raises(self):
        _, governor = make_governor()
        with pytest.raises(AdmissionTimeoutError, match="unknown resource pool"):
            governor.submit("nope")

    def test_arrival_behind_queue_never_jumps_it(self):
        # a statement that would fit must still queue behind earlier
        # arrivals: FIFO admission, no sly overtaking.
        _, governor = make_governor()
        governor.submit("p", memory_rows=60)  # granted
        big = governor.submit("p", memory_rows=60)  # queued (memory)
        small = governor.submit("p", memory_rows=1)  # would fit, queues anyway
        assert big.state == QUEUED
        assert small.state == QUEUED


class TestReleaseAndPump:
    def test_release_promotes_fifo(self):
        _, governor = make_governor()
        first = governor.submit("p")
        second = governor.submit("p")
        third = governor.submit("p")
        fourth = governor.submit("p")
        governor.release(first)
        assert third.state == GRANTED
        assert fourth.state == QUEUED
        governor.release(second)
        assert fourth.state == GRANTED
        assert first.state == RELEASED

    def test_release_is_idempotent(self):
        _, governor = make_governor()
        ticket = governor.submit("p")
        governor.release(ticket)
        governor.release(ticket)  # no-op, no error
        governor.assert_idle()

    def test_release_of_never_granted_ticket_is_noop(self):
        _, governor = make_governor()
        governor.submit("p")
        governor.submit("p")
        queued = governor.submit("p")
        governor.release(queued)
        assert queued.state == QUEUED  # still waiting; nothing corrupted

    def test_grant_tick_and_queued_ticks(self):
        clock, governor = make_governor()
        blocker = governor.submit("p")
        governor.submit("p")
        waiter = governor.submit("p")
        clock.advance(3)
        governor.release(blocker)
        assert waiter.state == GRANTED
        assert waiter.queued_ticks == 3


class TestTickExpiry:
    def test_queued_ticket_times_out_at_deadline(self):
        clock, governor = make_governor()
        governor.submit("p")
        governor.submit("p")
        waiter = governor.submit("p")
        clock.advance(4)
        governor.on_tick()
        assert waiter.state == QUEUED  # deadline is submit + 5
        clock.advance(1)
        governor.on_tick()
        assert waiter.state == TIMED_OUT
        assert "deadline tick" in waiter.detail

    def test_expiry_frees_queue_slots_for_new_arrivals(self):
        clock, governor = make_governor()
        for _ in range(4):
            governor.submit("p")
        assert governor.submit("p").state == REJECTED
        clock.advance(5)
        governor.on_tick()
        assert governor.submit("p").state == QUEUED

    def test_cancel_queued_withdraws(self):
        _, governor = make_governor()
        governor.submit("p")
        governor.submit("p")
        waiter = governor.submit("p")
        governor.cancel_queued(waiter)
        assert waiter.state == CANCELLED
        rows = governor.pool_rows()[0]
        assert rows["cancelled_total"] == 1
        assert rows["queued"] == 0


class TestObservability:
    def test_pool_rows_accounting(self):
        clock, governor = make_governor()
        tickets = [governor.submit("p") for _ in range(6)]
        clock.advance(5)
        governor.on_tick()
        rows = governor.pool_rows()[0]
        assert rows["pool_name"] == "p"
        assert rows["running"] == 2
        assert rows["queued"] == 0
        assert rows["admitted_total"] == 2
        assert rows["queued_total"] == 2
        assert rows["rejected_total"] == 2
        assert rows["timed_out_total"] == 2
        assert rows["peak_running"] == 2
        assert rows["memory_in_use_rows"] == 100
        for ticket in tickets:
            governor.release(ticket)
        governor.assert_idle()

    def test_assert_idle_raises_on_leak(self):
        _, governor = make_governor()
        governor.submit("p")
        with pytest.raises(AssertionError, match="not idle"):
            governor.assert_idle()

    def test_add_pool_and_names(self):
        _, governor = make_governor()
        governor.add_pool(PoolConfig("batch", max_concurrency=1))
        assert governor.pool_names() == ["batch", "p"]
        assert governor.submit("batch").state == GRANTED


class TestAdmitBlocking:
    def test_admit_returns_granted_immediately(self):
        _, governor = make_governor()
        ticket = governor.admit("p")
        assert ticket.state == GRANTED

    def test_admit_raises_on_full_queue(self):
        _, governor = make_governor()
        for _ in range(4):
            governor.submit("p")
        with pytest.raises(AdmissionTimeoutError, match="saturated"):
            governor.admit("p")

    def test_admit_cancel_callback_unwinds_cleanly(self):
        from repro.errors import QueryCancelledError

        _, governor = make_governor()
        governor.submit("p")
        governor.submit("p")

        def cancel():
            raise QueryCancelledError("client went away")

        with pytest.raises(QueryCancelledError):
            governor.admit("p", cancel=cancel)
        rows = governor.pool_rows()[0]
        assert rows["queued"] == 0
        assert rows["cancelled_total"] == 1
