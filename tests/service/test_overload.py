"""The ISSUE acceptance scenario: graceful overload degradation.

A pool of max-concurrency 4 whose slots are all occupied receives 64
concurrent statements.  Exactly ``queue_depth`` of them wait in the
admission queue; every other one is rejected at the door.  When the
simulated clock passes the queue deadline the waiters give up too — so
all 64 end in :class:`AdmissionTimeoutError`, and afterwards *nothing*
is leaked: no pool grant, no lock-manager entry, no open trace span,
no stuck session.  The run executes under the runtime sanitizer (the
repo-root conftest turns it on for every test).

Counts are deterministic even though thread interleaving is not: no
grant is released until the storm has fully settled, so the first
``queue_depth`` submissions queue and every later one rejects — which
threads land where varies, how many land where does not.
"""

import threading
import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import AdmissionTimeoutError
from repro.service import PoolConfig, SqlService
from repro.trace import TRACER

MAX_CONCURRENCY = 4
QUEUE_DEPTH = 8
QUEUE_TIMEOUT_TICKS = 10
STATEMENTS = 64


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": i % 5} for i in range(100)])
    return db


def wait_until(predicate, what, timeout=10.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"never observed: {what}")
        time.sleep(0.001)


class TestOverloadAcceptance:
    def test_64_statements_against_a_full_pool(self, db):
        service = SqlService(
            db,
            pools=[
                PoolConfig(
                    "general",
                    max_concurrency=MAX_CONCURRENCY,
                    queue_depth=QUEUE_DEPTH,
                    queue_timeout_ticks=QUEUE_TIMEOUT_TICKS,
                )
            ],
        )
        governor = service.governor
        # occupy every slot: four long-running statements in flight.
        blockers = [governor.submit("general") for _ in range(MAX_CONCURRENCY)]
        assert all(t.state == "granted" for t in blockers)

        outcomes: list[BaseException | str] = []
        outcome_lock = threading.Lock()
        barrier = threading.Barrier(STATEMENTS)

        def client(i):
            session = service.connect()
            try:
                barrier.wait(timeout=30)
                session.execute("SELECT count(*) AS n FROM t")
                result = "ran"
            except BaseException as exc:  # noqa: BLE001 - audited below
                result = exc
            finally:
                session.close()
            with outcome_lock:
                outcomes.append(result)

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(STATEMENTS)
        ]
        for thread in threads:
            thread.start()

        # the storm settles: every statement is either parked in the
        # queue (exactly QUEUE_DEPTH of them) or already rejected.
        def settled():
            rows = governor.pool_rows()[0]
            return (
                rows["queued"] == QUEUE_DEPTH
                and rows["rejected_total"] == STATEMENTS - QUEUE_DEPTH
            )

        wait_until(settled, "queue full and the rest rejected")
        rows = governor.pool_rows()[0]
        assert rows["queued"] == QUEUE_DEPTH
        assert rows["rejected_total"] == STATEMENTS - QUEUE_DEPTH
        assert rows["running"] == MAX_CONCURRENCY  # blockers only

        # the clock passes the queue deadline: the waiters give up too.
        service.clock.advance(QUEUE_TIMEOUT_TICKS)
        governor.on_tick()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)

        # every one of the 64 statements was turned away, none ran.
        assert len(outcomes) == STATEMENTS
        assert all(
            isinstance(outcome, AdmissionTimeoutError) for outcome in outcomes
        ), [o for o in outcomes if not isinstance(o, AdmissionTimeoutError)]
        rows = governor.pool_rows()[0]
        assert rows["timed_out_total"] == QUEUE_DEPTH
        assert rows["rejected_total"] == STATEMENTS - QUEUE_DEPTH

        # nothing leaked: grants, locks, sessions, traces.
        assert rows["queued"] == 0
        assert db.cluster.locks.waiting() == {}
        assert db.cluster.locks.holders_of("t") == {}
        assert service.sessions() == []  # every client closed cleanly
        assert TRACER.active is None
        for blocker in blockers:
            governor.release(blocker)
        governor.assert_idle()

        # the service is healthy again: a fresh statement runs at once.
        survivor = service.connect()
        assert survivor.execute("SELECT count(*) AS n FROM t") == [{"n": 100}]
        service.shutdown()
        governor.assert_idle()
