"""Service-session behaviour: governed execution, timeouts, cancel,
deadlock victims, read-only degradation, and the serial oracle.

Threaded scenarios follow the repo's determinism discipline: threads
are sequenced by observable state (``locks.waiting()``, session
states), timeouts live on the simulated clock, and every scenario ends
with a no-leak audit (governor idle, no lock waiters, sessions idle).
"""

import threading
import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import (
    AdmissionTimeoutError,
    DeadlockError,
    QueryCancelledError,
    ReadOnlyModeError,
    StatementTimeoutError,
    TransactionError,
)
from repro.service import PoolConfig, SqlService
from repro.txn import IsolationLevel


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": 0} for i in range(10)])
    return db


@pytest.fixture
def service(db):
    service = SqlService(db, pools=[PoolConfig("general", max_concurrency=4)])
    yield service
    service.shutdown()


def wait_until(predicate, what, timeout=5.0):
    """Spin until ``predicate()`` holds; wall timeout only guards hangs."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"never observed: {what}")
        time.sleep(0.001)


class TestBasicLifecycle:
    def test_select_insert_autocommit(self, db, service):
        session = service.connect()
        session.execute("INSERT INTO t VALUES (100, 7)")
        rows = session.execute("SELECT v FROM t WHERE k = 100")
        assert rows == [{"v": 7}]
        assert session.statements_run == 2
        assert session.txn_id is None  # autocommitted, nothing open
        # a second session sees the committed row immediately.
        other = service.connect()
        assert other.execute("SELECT count(*) AS n FROM t") == [{"n": 11}]

    def test_explicit_transaction_commit(self, db, tmp_path):
        service = SqlService(db, autocommit=False)
        try:
            writer = service.connect()
            writer.execute("INSERT INTO t VALUES (200, 1)")
            assert writer.txn_id is not None
            reader = service.connect()
            assert reader.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]
            writer.commit()
            assert reader.execute("SELECT count(*) AS n FROM t") == [{"n": 11}]
        finally:
            service.shutdown()

    def test_rollback_discards(self, db, tmp_path):
        service = SqlService(db, autocommit=False)
        try:
            session = service.connect()
            session.execute("INSERT INTO t VALUES (300, 1)")
            session.rollback()
            assert session.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]
        finally:
            service.shutdown()

    def test_closed_session_rejects_statements(self, service):
        session = service.connect()
        session.close()
        with pytest.raises(TransactionError, match="closed"):
            session.execute("SELECT 1 AS x")

    def test_close_rolls_back_open_transaction(self, db):
        service = SqlService(db, autocommit=False)
        try:
            session = service.connect()
            session.execute("INSERT INTO t VALUES (400, 1)")
            session.close()
            check = service.connect()
            assert check.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]
        finally:
            service.shutdown()

    def test_failed_statement_keeps_session_usable(self, service):
        session = service.connect()
        with pytest.raises(Exception):
            session.execute("SELECT nope FROM missing_table")
        assert session.statements_failed == 1
        assert session.last_error is not None
        assert session.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]


class TestStatementTimeout:
    def test_expired_deadline_raises_and_releases(self, db, service):
        # a 0-tick budget expires at the statement's first checkpoint —
        # the deterministic stand-in for "the clock passed the deadline
        # mid-statement".
        timed = service.connect(statement_timeout_ticks=0)
        with pytest.raises(StatementTimeoutError):
            timed.execute("SELECT count(*) AS n FROM t")
        assert timed.state == "idle"
        assert timed.statements_failed == 1
        # untimed sibling still works; nothing leaked.
        untimed = service.connect()
        assert untimed.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]
        service.governor.assert_idle()

    def test_generous_deadline_does_not_fire(self, service):
        session = service.connect(statement_timeout_ticks=1_000)
        assert session.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]


class TestCancellation:
    def test_cancel_parked_lock_wait(self, db):
        service = SqlService(db, autocommit=False, lock_timeout_seconds=30.0)
        try:
            holder = service.connect()
            holder.execute("UPDATE t SET v = 1 WHERE k = 0")  # X on t, held
            blocked = service.connect()
            errors = {}

            def run():
                try:
                    blocked.execute("UPDATE t SET v = 2 WHERE k = 1")
                except Exception as exc:  # noqa: BLE001 - checked below
                    errors["blocked"] = exc

            worker = threading.Thread(target=run)
            worker.start()
            locks = db.cluster.locks
            wait_until(lambda: locks.waiting(), "second update parked")
            blocked.cancel("user pressed ^C")
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            assert isinstance(errors["blocked"], QueryCancelledError)
            assert locks.waiting() == {}
            holder.commit()  # unimpeded
            service.governor.assert_idle()
        finally:
            service.shutdown()


class TestDeadlockVictim:
    def test_concurrent_deadlock_one_victim_one_committer(self, db):
        db.create_table(
            TableDefinition("u", [ColumnDef("k", types.INTEGER)]),
            sort_order=["k"],
        )
        db.load("u", [{"k": 0}])
        service = SqlService(db, autocommit=False, lock_timeout_seconds=30.0)
        try:
            s1 = service.connect()
            s2 = service.connect()
            s1.execute("UPDATE t SET v = 1 WHERE k = 0")  # s1: X on t
            s2.execute("UPDATE u SET k = 0 WHERE k = 0")  # s2: X on u
            results = {}

            def park_s1():
                try:
                    s1.execute("UPDATE u SET k = 1 WHERE k = 0")
                    results["s1"] = "ran"
                except Exception as exc:  # noqa: BLE001 - checked below
                    results["s1"] = exc

            worker = threading.Thread(target=park_s1)
            worker.start()
            locks = db.cluster.locks
            wait_until(lambda: locks.waiting(), "s1 parked on u")
            # s2's request closes the cycle -> s2 is the victim, by the
            # lock manager's deterministic victim rule.
            with pytest.raises(DeadlockError):
                s2.execute("UPDATE t SET v = 2 WHERE k = 0")
            worker.join(timeout=10.0)
            assert results["s1"] == "ran"  # survivor finished its update
            s1.commit()
            # exactly one victim, one committer; victim was rolled back.
            assert s2.statements_failed == 1
            assert s2.txn_id is None
            check = service.connect()
            assert check.execute("SELECT v FROM t WHERE k = 0") == [{"v": 1}]
            assert locks.waiting() == {}
            service.governor.assert_idle()
        finally:
            service.shutdown()


class TestReadOnlyDegradation:
    """Quorum loss on a 4-node cluster (quorum = 3): ejecting two
    *non-adjacent* nodes loses quorum while k-safety 1 keeps every
    segment readable — the regime where read-only degradation matters."""

    @pytest.fixture
    def wide_db(self, tmp_path):
        db = Database(str(tmp_path / "wide"), node_count=4)
        db.create_table(
            TableDefinition(
                "t",
                [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
            ),
            sort_order=["k"],
        )
        db.load("t", [{"k": i, "v": 0} for i in range(10)])
        return db

    def test_quorum_loss_degrades_writes_not_reads(self, wide_db):
        service = SqlService(wide_db)
        try:
            membership = wide_db.cluster.membership
            membership.eject(1, "test")
            membership.eject(3, "test")
            assert not membership.has_quorum()
            session = service.connect()
            with pytest.raises(ReadOnlyModeError, match="read-only"):
                session.execute("INSERT INTO t VALUES (500, 1)")
            assert service.read_only
            # reads keep answering through the degraded service.
            rows = session.execute("SELECT count(*) AS n FROM t")
            assert rows == [{"n": 10}]
        finally:
            service.shutdown()

    def test_step_up_when_quorum_returns(self, wide_db):
        service = SqlService(wide_db)
        try:
            membership = wide_db.cluster.membership
            membership.eject(1, "test")
            membership.eject(3, "test")
            session = service.connect()
            with pytest.raises(ReadOnlyModeError):
                session.execute("INSERT INTO t VALUES (500, 1)")
            membership.rejoin(1)
            membership.rejoin(3)
            session.execute("INSERT INTO t VALUES (500, 1)")  # steps back up
            assert not service.read_only
            rows = session.execute("SELECT count(*) AS n FROM t")
            assert rows == [{"n": 11}]
        finally:
            service.shutdown()


class TestSerialOracle:
    THREADS = 6
    ROWS_PER_THREAD = 8

    def test_concurrent_mixed_workload_matches_serial_oracle(self, tmp_path):
        def build(path):
            db = Database(str(path), node_count=3)
            db.create_table(
                TableDefinition(
                    "t",
                    [
                        ColumnDef("k", types.INTEGER),
                        ColumnDef("v", types.INTEGER),
                    ],
                ),
                sort_order=["k"],
            )
            return db

        statements = [
            f"INSERT INTO t VALUES ({worker * 1000 + i}, {worker})"
            for worker in range(self.THREADS)
            for i in range(self.ROWS_PER_THREAD)
        ]

        # serial oracle: same statements, one session, one thread.
        oracle_db = build(tmp_path / "oracle")
        oracle = SqlService(oracle_db)
        session = oracle.connect()
        for statement in statements:
            session.execute(statement)
        expected = sorted(
            tuple(sorted(row.items()))
            for row in session.execute("SELECT k, v FROM t")
        )
        oracle.shutdown()

        # concurrent run: one session per thread, reads mixed in.
        db = build(tmp_path / "concurrent")
        service = SqlService(
            db,
            pools=[
                PoolConfig(
                    "general",
                    max_concurrency=self.THREADS,
                    queue_depth=self.THREADS,
                )
            ],
            lock_timeout_seconds=30.0,
        )
        errors = []
        barrier = threading.Barrier(self.THREADS)

        def worker(worker_id):
            session = service.connect()
            try:
                barrier.wait(timeout=10)
                for i in range(self.ROWS_PER_THREAD):
                    session.execute(
                        f"INSERT INTO t VALUES ({worker_id * 1000 + i}, "
                        f"{worker_id})"
                    )
                    rows = session.execute("SELECT count(*) AS n FROM t")
                    # snapshot sees at least this thread's own commits.
                    assert rows[0]["n"] >= i + 1
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        final = service.connect()
        got = sorted(
            tuple(sorted(row.items()))
            for row in final.execute("SELECT k, v FROM t")
        )
        assert got == expected
        assert db.cluster.locks.waiting() == {}
        service.governor.assert_idle()
        service.shutdown()


class TestMonitorTables:
    def test_sessions_and_pools_via_sql(self, db, service):
        session = service.connect()
        session.execute("SELECT count(*) AS n FROM t")
        rows = db.sql(
            "SELECT session_id, state, pool_name FROM v_monitor.sessions"
        )
        assert {"session_id": session.session_id, "state": "idle",
                "pool_name": "general"} in rows
        pools = db.sql(
            "SELECT pool_name, running, admitted_total, max_concurrency "
            "FROM v_monitor.resource_pools"
        )
        assert pools == [
            {
                "pool_name": "general",
                "running": 0,
                "admitted_total": 1,
                "max_concurrency": 4,
            }
        ]

    def test_tables_empty_without_service(self, tmp_path):
        db = Database(str(tmp_path / "plain"), node_count=1)
        assert db.sql("SELECT * FROM v_monitor.sessions") == []
        assert db.sql("SELECT * FROM v_monitor.resource_pools") == []

    def test_admission_counters_surface(self, db, service):
        session = service.connect()
        for _ in range(3):
            session.execute("SELECT count(*) AS n FROM t")
        rows = db.sql(
            "SELECT admitted_total FROM v_monitor.resource_pools"
        )
        assert rows == [{"admitted_total": 3}]


class TestIsolationLevels:
    def test_serializable_session_rides_lock_matrix(self, db, service):
        session = service.connect(isolation=IsolationLevel.SERIALIZABLE)
        assert session.isolation is IsolationLevel.SERIALIZABLE
        assert session.execute("SELECT count(*) AS n FROM t") == [{"n": 10}]
