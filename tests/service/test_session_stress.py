"""Seeded multi-session stress: the check.sh ``session-stress`` stage.

Eight worker threads, each with its own service session and its own
seeded RNG, run a mixed read/write workload through the governed path
while the lockset race detector watches the monitoring singletons and
the runtime sanitizer (on for the whole suite) checks invariants.  The
workload is derandomised by construction: the seed fixes every
thread's statement sequence, writes touch thread-disjoint key ranges,
and the final row count is a pure function of the seed — so a failure
replays exactly.

Admission pressure is part of the test: the pool is sized below the
thread count, so sessions routinely queue and occasionally time out;
an :class:`AdmissionTimeoutError` is an *expected* outcome that must
leave no residue, not a failure.
"""

import random
import threading

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import AdmissionTimeoutError
from repro.lint.concur.runtime import RACES
from repro.monitor import METRICS
from repro.service import PoolConfig, SqlService

pytestmark = pytest.mark.lint

SEED = 0xC57
THREADS = 8
OPS_PER_THREAD = 12


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": 0} for i in range(50)])
    return db


def plan_ops(seed, worker_id):
    """The seeded statement plan for one worker: ('insert', k) | ('read',)."""
    rng = random.Random((seed << 8) | worker_id)
    ops = []
    inserted = 0
    for _ in range(OPS_PER_THREAD):
        if rng.random() < 0.5:
            ops.append(("insert", 1000 * (worker_id + 1) + inserted))
            inserted += 1
        else:
            ops.append(("read",))
    return ops


class TestSessionStress:
    def test_seeded_mixed_workload_is_race_free(self, db):
        service = SqlService(
            db,
            pools=[
                PoolConfig(
                    "general",
                    max_concurrency=THREADS // 2,
                    queue_depth=THREADS,
                    queue_timeout_ticks=1_000,
                )
            ],
            lock_timeout_seconds=30.0,
        )
        RACES.reset()
        RACES.track("METRICS._counters")
        plans = [plan_ops(SEED, worker_id) for worker_id in range(THREADS)]
        errors = []
        attempted_inserts = [0] * THREADS
        landed_inserts = [0] * THREADS
        barrier = threading.Barrier(THREADS)

        def worker(worker_id):
            session = service.connect()
            try:
                barrier.wait(timeout=30)
                for op in plans[worker_id]:
                    try:
                        if op[0] == "insert":
                            attempted_inserts[worker_id] += 1
                            session.execute(
                                f"INSERT INTO t VALUES ({op[1]}, {worker_id})"
                            )
                            landed_inserts[worker_id] += 1
                        else:
                            rows = session.execute(
                                "SELECT count(*) AS n FROM t"
                            )
                            assert rows[0]["n"] >= 50
                    except AdmissionTimeoutError:
                        pass  # shed load is a valid outcome, not an error
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append((worker_id, exc))
            finally:
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        try:
            assert not any(thread.is_alive() for thread in threads)
            assert errors == [], errors
            reports = RACES.reports()
            assert reports == [], "\n".join(r.render() for r in reports)
            # the workload is seed-determined: every op either landed or
            # was shed; rows present == inserts that returned success.
            rows = db.sql("SELECT count(*) AS n FROM t")
            assert rows == [{"n": 50 + sum(landed_inserts)}]
            # with a 1000-tick queue deadline and nobody advancing the
            # clock, nothing can have timed out: every insert landed.
            assert landed_inserts == attempted_inserts
            # no residue: grants returned, no waiters, sessions gone.
            service.governor.assert_idle()
            assert db.cluster.locks.waiting() == {}
            assert db.cluster.locks.holders_of("t") == {}
            assert service.sessions() == []
            stats = METRICS.counters_with_prefix("service.")
            assert stats.get("service.statements", 0) >= sum(landed_inserts)
        finally:
            RACES.reset()
            service.shutdown()
