"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, tokenize


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a, 1.5 FROM t WHERE b = 'x''y'")
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert ("keyword", "SELECT") in kinds
        assert ("ident", "a") in kinds
        assert ("number", "1.5") in kinds
        assert ("string", "x'y") in kinds

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n, 2")
        assert [t.value for t in tokens if t.kind == "number"] == ["1", "2"]

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "Weird Name" FROM t')
        assert any(t.kind == "ident" and t.value == "Weird Name" for t in tokens)

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")

    def test_operators(self):
        tokens = tokenize("a <> b >= c != d")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<>", ">=", "!="]


class TestSelectParsing:
    def test_simple(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.from_tables[0].table == "t"

    def test_star_and_qualified_star(self):
        stmt = parse("SELECT *, t.* FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)
        assert stmt.items[1].expr.qualifier == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_tables[0].alias == "u"

    def test_where_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "OR"
        assert stmt.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_group_having_order_limit(self):
        stmt = parse(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 2 "
            "ORDER BY a DESC LIMIT 10 OFFSET 5"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is False
        assert stmt.limit == 10 and stmt.offset == 5

    def test_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w"
        )
        assert [j.join_type for j in stmt.joins] == ["INNER", "LEFT"]

    def test_comma_join(self):
        stmt = parse("SELECT * FROM a, b WHERE a.x = b.y")
        assert len(stmt.from_tables) == 2

    def test_between_in_like_isnull(self):
        stmt = parse(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2) "
            "AND c LIKE 'x%' AND d IS NOT NULL"
        )
        assert stmt.where is not None

    def test_case(self):
        stmt = parse(
            "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t"
        )
        assert isinstance(stmt.items[0].expr, ast.CaseExpr)

    def test_aggregates(self):
        stmt = parse("SELECT count(*), sum(x), count(DISTINCT y) FROM t")
        count, total, distinct = (item.expr for item in stmt.items)
        assert count.star and count.name == "COUNT"
        assert total.name == "SUM"
        assert distinct.distinct

    def test_window(self):
        stmt = parse(
            "SELECT ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC) FROM t"
        )
        window = stmt.items[0].expr
        assert isinstance(window, ast.WindowCall)
        assert window.order_by[0][1] is False

    def test_date_literal(self):
        stmt = parse("SELECT * FROM t WHERE d = DATE '2006-01-01'")
        assert isinstance(stmt.where.right, ast.Constant)

    def test_at_epoch(self):
        stmt = parse("AT EPOCH 5 SELECT * FROM t")
        assert stmt.at_epoch == 5

    def test_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT FROM")
        with pytest.raises(SqlSyntaxError):
            parse("SELEC a FROM t")


class TestDmlDdlParsing:
    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2
        assert stmt.rows[1][1].value is None

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert set(stmt.assignments) == {"a", "b"}

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 5")
        assert stmt.table == "t"

    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE sales (sale_id INTEGER, cust VARCHAR(20), "
            "price FLOAT, PRIMARY KEY (sale_id)) PARTITION BY sale_id % 12"
        )
        assert [c.name for c in stmt.columns] == ["sale_id", "cust", "price"]
        assert stmt.primary_key == ["sale_id"]
        assert stmt.partition_by is not None

    def test_create_projection(self):
        stmt = parse(
            "CREATE PROJECTION p (cust ENCODING RLE, price) AS "
            "SELECT cust, price FROM sales ORDER BY cust "
            "SEGMENTED BY HASH(cust) ALL NODES"
        )
        assert stmt.name == "p"
        assert stmt.columns[0].encoding == "RLE"
        assert stmt.order_by == ["cust"]
        assert stmt.segmented_by == ["cust"]

    def test_create_unsegmented_projection(self):
        stmt = parse(
            "CREATE PROJECTION p (a) AS SELECT a FROM t ORDER BY a "
            "UNSEGMENTED ALL NODES"
        )
        assert stmt.segmented_by is None

    def test_copy(self):
        stmt = parse("COPY t (a, b) FROM STDIN")
        assert stmt.columns == ["a", "b"]

    def test_drop(self):
        stmt = parse("DROP TABLE t")
        assert stmt.name == "t"

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(stmt, ast.ExplainStatement)
