"""Tests for IN/NOT IN subquery flattening to semi/anti joins (§6.2)."""

import pytest

from repro import Database


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.sql("CREATE TABLE orders (oid INTEGER, cid INTEGER, amount FLOAT, "
           "PRIMARY KEY (oid))")
    db.sql("CREATE TABLE vip (cid INTEGER, PRIMARY KEY (cid))")
    db.sql("COPY orders FROM STDIN", copy_rows=[
        {"oid": i, "cid": i % 10, "amount": float(i)} for i in range(200)
    ])
    db.sql("COPY vip FROM STDIN", copy_rows=[{"cid": c} for c in (1, 3, 5)])
    db.analyze_statistics()
    return db


class TestInSubquery:
    def test_in_becomes_semi_join(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid IN (SELECT cid FROM vip)"
        )
        assert rows == [{"n": 60}]

    def test_not_in_becomes_anti_join(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid NOT IN (SELECT cid FROM vip)"
        )
        assert rows == [{"n": 140}]

    def test_subquery_with_its_own_predicate(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid IN (SELECT cid FROM vip WHERE cid > 2)"
        )
        assert rows == [{"n": 40}]

    def test_combined_with_plain_predicates(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid IN (SELECT cid FROM vip) AND amount >= 100"
        )
        assert rows == [{"n": 30}]

    def test_semi_and_anti_partition(self, db):
        semi = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid IN (SELECT cid FROM vip)")[0]["n"]
        anti = db.sql(
            "SELECT count(*) AS n FROM orders "
            "WHERE cid NOT IN (SELECT cid FROM vip)")[0]["n"]
        assert semi + anti == 200

    def test_explain_shows_semi_join(self, db):
        text = db.sql(
            "EXPLAIN SELECT oid FROM orders "
            "WHERE cid IN (SELECT cid FROM vip)"
        )
        assert "SEMI" in text

    def test_multi_column_subquery_rejected(self, db):
        from repro.errors import SqlAnalysisError

        with pytest.raises(SqlAnalysisError):
            db.sql(
                "SELECT oid FROM orders "
                "WHERE cid IN (SELECT cid, cid FROM vip)"
            )

    def test_subquery_with_aggregation(self, db):
        # semi join against an aggregated subquery
        rows = db.sql(
            "SELECT count(*) AS n FROM orders WHERE cid IN "
            "(SELECT cid FROM vip GROUP BY cid HAVING count(*) >= 1)"
        )
        assert rows == [{"n": 60}]
