"""End-to-end SQL tests: full statements through Database.sql."""

import pytest

from repro import Database
from repro.errors import SqlAnalysisError


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.sql(
        "CREATE TABLE sales (sale_id INTEGER, cid INTEGER, cust VARCHAR, "
        "sale_date DATE, price FLOAT, PRIMARY KEY (sale_id))"
    )
    db.sql(
        "CREATE TABLE customers (cid INTEGER, name VARCHAR, "
        "region VARCHAR, PRIMARY KEY (cid))"
    )
    for c in range(10):
        db.sql(
            f"INSERT INTO customers VALUES ({c}, 'name{c}', "
            f"'{'north' if c % 2 else 'south'}')"
        )
    rows = [
        {
            "sale_id": i,
            "cid": i % 10,
            "cust": f"name{i % 10}",
            "sale_date": i % 50,
            "price": float(i % 37),
        }
        for i in range(1000)
    ]
    db.sql("COPY sales FROM STDIN", copy_rows=rows)
    db.analyze_statistics()
    return db


class TestSelect:
    def test_count(self, db):
        assert db.sql("SELECT count(*) AS n FROM sales") == [{"n": 1000}]

    def test_where(self, db):
        rows = db.sql("SELECT sale_id FROM sales WHERE price > 35.0")
        assert all(row["sale_id"] % 37 == 36 for row in rows)

    def test_star(self, db):
        rows = db.sql("SELECT * FROM customers WHERE cid = 3")
        assert rows == [{"cid": 3, "name": "name3", "region": "north"}]

    def test_group_by_having_order(self, db):
        rows = db.sql(
            "SELECT cid, count(*) AS n, sum(price) AS total FROM sales "
            "GROUP BY cid HAVING count(*) >= 100 ORDER BY cid"
        )
        assert len(rows) == 10
        assert [row["cid"] for row in rows] == list(range(10))

    def test_expression_select(self, db):
        rows = db.sql(
            "SELECT sale_id, price * 2 AS double_price FROM sales "
            "WHERE sale_id = 10"
        )
        assert rows == [{"sale_id": 10, "double_price": 20.0}]

    def test_join(self, db):
        rows = db.sql(
            "SELECT region, count(*) AS n FROM sales "
            "JOIN customers ON sales.cid = customers.cid "
            "GROUP BY region ORDER BY region"
        )
        assert [row["region"] for row in rows] == ["north", "south"]
        assert sum(row["n"] for row in rows) == 1000

    def test_comma_join_with_where(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM sales s, customers c "
            "WHERE s.cid = c.cid AND c.region = 'north'"
        )
        assert rows == [{"n": 500}]

    def test_left_join_preserves(self, db):
        db.sql("DELETE FROM customers WHERE cid = 4")
        rows = db.sql(
            "SELECT count(*) AS n FROM sales "
            "LEFT JOIN customers ON sales.cid = customers.cid "
            "WHERE customers.name IS NULL"
        )
        assert rows == [{"n": 100}]

    def test_order_limit_offset(self, db):
        rows = db.sql(
            "SELECT sale_id FROM sales ORDER BY sale_id DESC LIMIT 3 OFFSET 2"
        )
        assert [row["sale_id"] for row in rows] == [997, 996, 995]

    def test_distinct(self, db):
        rows = db.sql("SELECT DISTINCT cid FROM sales")
        assert sorted(row["cid"] for row in rows) == list(range(10))

    def test_count_distinct(self, db):
        assert db.sql("SELECT count(DISTINCT cid) AS n FROM sales") == [
            {"n": 10}
        ]

    def test_case_when(self, db):
        rows = db.sql(
            "SELECT sale_id, CASE WHEN price > 18 THEN 'high' ELSE 'low' END "
            "AS bucket FROM sales WHERE sale_id IN (1, 20) ORDER BY sale_id"
        )
        assert rows[0]["bucket"] == "low"
        assert rows[1]["bucket"] == "high"

    def test_like(self, db):
        rows = db.sql("SELECT count(*) AS n FROM customers WHERE name LIKE 'name_'")
        assert rows == [{"n": 10}]

    def test_between(self, db):
        rows = db.sql(
            "SELECT count(*) AS n FROM sales WHERE sale_id BETWEEN 10 AND 19"
        )
        assert rows == [{"n": 10}]

    def test_window_function(self, db):
        rows = db.sql(
            "SELECT cid, price, ROW_NUMBER() OVER "
            "(PARTITION BY cid ORDER BY price DESC, sale_id) AS rn "
            "FROM sales WHERE sale_id < 30"
        )
        per_cid = {}
        for row in rows:
            per_cid.setdefault(row["cid"], []).append(row["rn"])
        assert all(sorted(v) == list(range(1, len(v) + 1)) for v in per_cid.values())

    def test_at_epoch(self, db):
        db.sql("DELETE FROM sales WHERE sale_id < 500")
        current = db.sql("SELECT count(*) AS n FROM sales")[0]["n"]
        assert current == 500
        historical_epoch = db.latest_epoch - 1
        rows = db.sql(f"AT EPOCH {historical_epoch} SELECT count(*) AS n FROM sales")
        assert rows == [{"n": 1000}]

    def test_group_by_expression(self, db):
        rows = db.sql(
            "SELECT sale_date % 7 AS weekday, count(*) AS n FROM sales "
            "GROUP BY sale_date % 7 ORDER BY weekday"
        )
        assert len(rows) == 7
        assert sum(row["n"] for row in rows) == 1000

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(SqlAnalysisError):
            db.sql("SELECT cid, price FROM sales GROUP BY cid")

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SqlAnalysisError):
            db.sql("SELECT cid FROM sales, customers")

    def test_explain(self, db):
        text = db.sql(
            "EXPLAIN SELECT region, count(*) FROM sales "
            "JOIN customers ON sales.cid = customers.cid GROUP BY region"
        )
        assert "GroupBy" in text and "Join" in text and "Scan" in text


class TestDml:
    def test_insert_and_update(self, db):
        db.sql("INSERT INTO sales VALUES (5000, 1, 'name1', 3, 9.5)")
        assert db.sql("SELECT count(*) AS n FROM sales")[0]["n"] == 1001
        changed = db.sql("UPDATE sales SET price = 0.0 WHERE sale_id = 5000")
        assert changed == 1
        rows = db.sql("SELECT price FROM sales WHERE sale_id = 5000")
        assert rows == [{"price": 0.0}]

    def test_delete(self, db):
        db.sql("DELETE FROM sales WHERE cid = 0")
        assert db.sql("SELECT count(*) AS n FROM sales")[0]["n"] == 900

    def test_session_transaction(self, db):
        session = db.session()
        session.sql("INSERT INTO sales VALUES (7000, 1, 'name1', 3, 9.5)")
        # visible inside the session, invisible outside
        inside = session.sql("SELECT count(*) AS n FROM sales WHERE sale_id = 7000")
        assert inside == [{"n": 1}]
        outside = db.sql("SELECT count(*) AS n FROM sales WHERE sale_id = 7000")
        assert outside == [{"n": 0}]
        session.rollback()


class TestCopy:
    def test_copy_rejects_bad_records(self, db):
        result = db.sql(
            "COPY customers (cid, name, region) FROM STDIN",
            copy_rows=[
                "100|alice|west",
                "not_an_int|bob|east",  # rejected
                "101|carol|west",
                "102|dave",  # wrong arity, rejected
            ],
        )
        assert result.loaded == 2
        assert len(result.rejected) == 2
        assert db.sql("SELECT count(*) AS n FROM customers WHERE cid >= 100") == [
            {"n": 2}
        ]


class TestDdl:
    def test_create_projection_via_sql(self, db):
        db.sql(
            "CREATE PROJECTION sales_by_cust (cust ENCODING RLE, price) AS "
            "SELECT cust, price FROM sales ORDER BY cust "
            "SEGMENTED BY HASH(cust) ALL NODES"
        )
        family = db.cluster.catalog.family("sales_by_cust")
        assert family.primary.column("cust").encoding == "RLE"
        # refreshed from existing data: narrow queries can use it
        db.analyze_statistics()
        rows = db.sql("SELECT cust, count(*) AS n FROM sales GROUP BY cust")
        assert len(rows) == 10

    def test_partitioned_table(self, db):
        db.sql(
            "CREATE TABLE events (ts INTEGER, v FLOAT) "
            "PARTITION BY FLOOR(ts / 100)"
        )
        rows = [{"ts": i, "v": 1.0} for i in range(300)]
        db.sql("COPY events FROM STDIN", copy_rows=rows)
        db.run_tuple_movers()
        family = db.cluster.catalog.super_projection_for("events")
        keys = set()
        for node in db.cluster.nodes:
            keys.update(node.manager.partition_keys(family.primary.name))
        assert keys == {0, 1, 2}

    def test_drop_table(self, db):
        db.sql("CREATE TABLE tiny (x INTEGER)")
        db.sql("DROP TABLE tiny")
        with pytest.raises(Exception):
            db.sql("SELECT * FROM tiny")


class TestWindowAggregates:
    def test_sum_over_partition(self, db):
        rows = db.sql(
            "SELECT cid, price, SUM(price) OVER (PARTITION BY cid) AS total "
            "FROM sales WHERE sale_id < 20"
        )
        by_cid = {}
        for row in rows:
            by_cid.setdefault(row["cid"], set()).add(row["total"])
        # every row of a partition carries the same total
        assert all(len(totals) == 1 for totals in by_cid.values())

    def test_running_sum(self, db):
        rows = db.sql(
            "SELECT sale_id, SUM(price) OVER (ORDER BY sale_id) AS running "
            "FROM sales WHERE sale_id < 5"
        )
        rows.sort(key=lambda r: r["sale_id"])
        runnings = [row["running"] for row in rows]
        assert runnings == sorted(runnings)
        assert runnings[-1] == sum(float(i % 37) for i in range(5))
