"""Randomized crash-recovery property test (``pytest -m chaos``).

Each scenario derives an operation stream and one armed fault from a
seed, runs it against a 3-node K=1 cluster, then heals the cluster
(restart + recover + scrub) and asserts the visible rows equal a
fault-free single-node oracle that applied the same logical stream.

The property under test is the PR's acceptance criterion: **with any
single injected fault, queries never return wrong rows** — corruption
is detected via checksums and quarantined, crashes are ejected and
recovered from buddies, torn writes never publish.
"""

import random

import pytest

from repro import types
from repro.cluster import Cluster, recover_node
from repro.core.schema import ColumnDef, TableDefinition
from repro.faults import REGISTRY, FaultPlan

pytestmark = pytest.mark.chaos


def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def build_cluster(root, node_count):
    cluster = Cluster(
        str(root), node_count=node_count, k_safety=1 if node_count > 1 else 0
    )
    cluster.create_table(table(), sort_order=["k"])
    return cluster


def make_ops(rng, steps=6):
    """A seed-determined stream of logical operations.

    Each op is a pure description; :func:`apply_op` executes it against
    any cluster, so the oracle and the system under test replay the
    exact same stream.
    """
    ops = []
    next_k = 0
    for _ in range(steps):
        kind = rng.choice(["insert", "insert", "insert", "delete", "move"])
        if kind == "insert":
            count = rng.randrange(5, 25)
            ops.append(
                ("insert", next_k, count, rng.random() < 0.5)
            )
            next_k += count
        elif kind == "delete":
            ops.append(("delete", rng.randrange(2, 5), rng.randrange(5)))
        else:
            ops.append(("move",))
    return ops


def apply_op(cluster, epoch, op):
    """Execute one op; returns the new snapshot epoch."""
    if op[0] == "insert":
        _, start, count, direct = op
        rows = [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + count)]
        return cluster.commit_dml(
            {"t": rows}, [], epoch, direct_to_ros=direct
        )
    if op[0] == "delete":
        _, mod, rem = op
        return cluster.commit_dml(
            {}, [("t", lambda row: row["k"] % mod == rem)], epoch
        )
    cluster.run_tuple_movers()
    return epoch


def pick_fault(rng):
    """One (point, action) pair drawn from the registered catalog."""
    point = rng.choice(sorted(REGISTRY))
    action = rng.choice(sorted(REGISTRY[point].allowed_actions()))
    return point, action


def heal(cluster):
    """Post-scenario repair: restart + recover crashed nodes, scrub."""
    for node_index in cluster.membership.down_nodes():
        cluster.restart_node(node_index)
        recover_node(cluster, node_index)
    cluster.scrub()


def visible(cluster, epoch):
    return sorted(
        (row["k"], row["v"]) for row in cluster.read_table("t", epoch)
    )


@pytest.mark.parametrize("seed", range(12))
def test_single_fault_never_yields_wrong_rows(seed, tmp_path):
    rng = random.Random(seed)
    ops = make_ops(rng)
    point, action = pick_fault(rng)
    fault_step = rng.randrange(len(ops))
    skip = rng.randrange(3)

    oracle = build_cluster(tmp_path / "oracle", 1)
    oracle_epoch = 0
    for op in ops:
        oracle_epoch = apply_op(oracle, oracle_epoch, op)

    sut = build_cluster(tmp_path / "sut", 3)
    plan = FaultPlan(seed=seed).arm(point, action, skip=skip)
    sut_epoch = 0
    for index, op in enumerate(ops):
        if index == fault_step:
            with plan:
                sut_epoch = apply_op(sut, sut_epoch, op)
        else:
            sut_epoch = apply_op(sut, sut_epoch, op)

    heal(sut)
    assert visible(sut, sut_epoch) == visible(oracle, oracle_epoch), (
        f"seed={seed} fault={point}/{action} at step {fault_step} "
        f"(fired: {plan.fired})"
    )
    # the healed cluster also answers identically from any 2-node view
    for down in range(3):
        sut.fail_node(down)
        assert visible(sut, sut_epoch) == visible(oracle, oracle_epoch)
        sut.restart_node(down)
        recover_node(sut, down)


def test_scrub_smoke_after_chaos(tmp_path):
    """Scrub on a healed cluster is clean — no latent damage left."""
    rng = random.Random(99)
    sut = build_cluster(tmp_path / "sut", 3)
    epoch = 0
    for op in make_ops(rng, steps=4):
        epoch = apply_op(sut, epoch, op)
    with FaultPlan(seed=99).arm("ros.published", "bitflip"):
        epoch = apply_op(sut, epoch, ("insert", 1000, 20, True))
    heal(sut)
    report = sut.scrub()
    assert report.clean()
