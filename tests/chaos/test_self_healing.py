"""Seeded chaos tests for the self-healing cluster runtime
(``pytest -m chaos``).

Four scenario families, all deterministic per seed:

* a node killed **mid-query** fails over to buddy copies at the same
  snapshot epoch and returns exactly the fault-free oracle's rows,
  with the retry visible in ``v_monitor.failover_events``;
* a node killed repeatedly **during recovery** is retried with
  exponential backoff until it heals;
* **quorum loss** rejects writes with :class:`QuorumLossError` while
  reads keep answering from the surviving copies;
* a randomized kill schedule converges back to every-node-UP and the
  oracle's rows through :meth:`ClusterSupervisor.tick` **alone** — no
  test here calls ``restart_node``/``recover_node`` directly.

``tools/check.sh`` re-runs the convergence family on two fixed seeds
plus one derived from the git SHA via ``REPRO_CHAOS_SEEDS``.
"""

import os
import random

import pytest

from repro import types
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import QuorumLossError
from repro.faults import FaultPlan

pytestmark = pytest.mark.chaos

SELECT = (
    "SELECT cid, COUNT(*) AS n, SUM(price) AS total "
    "FROM sales GROUP BY cid ORDER BY cid"
)


def chaos_seeds(default):
    """Seeds to run: ``REPRO_CHAOS_SEEDS`` (comma-separated) overrides
    the built-in list, so CI can pin two fixed seeds and add a fresh
    one derived from the commit SHA."""
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "")
    picked = [int(part) for part in raw.split(",") if part.strip()]
    return picked or default


def build_db(root, node_count, k_safety):
    db = Database(str(root), node_count=node_count, k_safety=k_safety)
    db.create_table(
        TableDefinition(
            "sales",
            [
                ColumnDef("sale_id", types.INTEGER),
                ColumnDef("cid", types.INTEGER),
                ColumnDef("price", types.FLOAT),
            ],
            primary_key=("sale_id",),
        ),
        sort_order=["sale_id"],
    )
    return db


def seed_rows(rng, count=150):
    return [
        {"sale_id": i, "cid": rng.randrange(12), "price": float(rng.randrange(100))}
        for i in range(count)
    ]


def loaded_pair(tmp_path, rng, sut_nodes, k_safety):
    """(oracle, sut) with identical data, movers run on both."""
    rows = seed_rows(rng)
    oracle = build_db(tmp_path / "oracle", 1, 0)
    sut = build_db(tmp_path / "sut", sut_nodes, k_safety)
    for db in (oracle, sut):
        db.load("sales", rows)
        db.run_tuple_movers()
    return oracle, sut


def supervisor_only_heal(sut, max_ticks=64):
    """The acceptance discipline: the supervisor's tick loop is the
    only thing allowed to restart/recover nodes."""
    return sut.cluster.supervisor.run_until_converged(max_ticks=max_ticks)


@pytest.mark.parametrize("seed", chaos_seeds(list(range(6))))
def test_kill_mid_query_fails_over_and_self_heals(seed, tmp_path):
    rng = random.Random(seed)
    oracle, sut = loaded_pair(tmp_path, rng, sut_nodes=3, k_safety=1)
    expected = oracle.sql(SELECT)
    victim = rng.randrange(3)
    plan = FaultPlan(seed=seed).arm(
        "executor.scan", "crash", node=victim, skip=rng.randrange(2)
    )
    with plan:
        got = sut.sql(SELECT)
    assert got == expected, f"seed={seed} victim={victim}"
    assert [f.point for f in plan.fired] == ["executor.scan"]
    assert not sut.cluster.membership.is_up(victim)

    retries = sut.sql(
        "SELECT node_index, attempt FROM v_monitor.failover_events "
        "WHERE kind = 'query_retry'"
    )
    assert retries == [{"node_index": victim, "attempt": 1}]
    ejections = sut.sql(
        "SELECT node_index FROM v_monitor.failover_events "
        "WHERE kind = 'ejection'"
    )
    assert {"node_index": victim} in ejections

    ticks = supervisor_only_heal(sut)
    assert ticks <= 3
    assert sut.cluster.membership.is_up(victim)
    states = sut.sql(
        "SELECT node_index, is_up, supervisor_state FROM "
        "v_monitor.node_states ORDER BY node_index"
    )
    assert states == [
        {"node_index": i, "is_up": True, "supervisor_state": "UP"}
        for i in range(3)
    ]
    assert sut.sql(SELECT) == expected


@pytest.mark.parametrize("seed", chaos_seeds([3, 11]))
def test_kill_during_recovery_backs_off_until_healed(seed, tmp_path):
    rng = random.Random(seed)
    oracle, sut = loaded_pair(tmp_path, rng, sut_nodes=3, k_safety=1)
    victim = rng.randrange(3)
    sut.fail_node(victim)
    # rows committed while the victim is down give recovery a real
    # replay window — the armed crash fires when the replayed
    # containers publish on the recovering node.
    extra = [
        {"sale_id": 1000 + i, "cid": rng.randrange(12),
         "price": float(rng.randrange(100))}
        for i in range(25)
    ]
    for db in (oracle, sut):
        db.load("sales", extra)
    expected = oracle.sql(SELECT)
    crashes = 1 + rng.randrange(2)
    plan = FaultPlan(seed=seed).arm("ros.publish", "crash", count=crashes)
    with plan:
        supervisor_only_heal(sut, max_ticks=32)
    assert len(plan.fired) == crashes
    assert sut.cluster.membership.is_up(victim)
    assert sut.cluster.supervisor.node_state(victim).state == "UP"
    failures = [
        event
        for event in sut.cluster.failover_log.events("recovery_transition")
        if event.detail == "RECOVERING->DOWN"
    ]
    assert len(failures) == crashes
    assert sut.sql(SELECT) == expected
    assert sut.cluster.scrub().clean()


def kill_nodes_mid_query(sut, victims, seed):
    """Take ``victims`` down through the executor's failover path (the
    read path never raises on quorum loss, unlike ``fail_node``)."""
    plan = FaultPlan(seed=seed)
    for victim in victims:
        plan.arm("executor.scan", "crash", node=victim)
    with plan:
        rows = sut.sql(SELECT)
    assert len(plan.fired) == len(victims)
    return rows


@pytest.mark.parametrize("seed", chaos_seeds([5]))
def test_quorum_loss_rejects_writes_but_answers_reads(seed, tmp_path):
    rng = random.Random(seed)
    oracle, sut = loaded_pair(tmp_path, rng, sut_nodes=5, k_safety=2)
    expected = oracle.sql(SELECT)

    # 3 of 5 nodes die mid-query: below quorum (3 needed), but with
    # K=2 every ring segment still has a copy on nodes {1, 3}.
    got = kill_nodes_mid_query(sut, victims=(0, 2, 4), seed=seed)
    assert got == expected
    assert not sut.cluster.membership.has_quorum()
    assert sut.cluster.check_data_available()

    # degraded mode: writes rejected...
    with pytest.raises(QuorumLossError):
        sut.load("sales", [{"sale_id": 9000, "cid": 1, "price": 1.0}])
    with pytest.raises(QuorumLossError):
        sut.sql("DELETE FROM sales WHERE cid = 1")
    # ...while reads keep answering, and the mode change is logged.
    assert sut.sql(SELECT) == expected
    degraded = sut.sql(
        "SELECT detail FROM v_monitor.failover_events "
        "WHERE kind = 'degraded_mode'"
    )
    assert any("quorum lost" in row["detail"] for row in degraded)

    # the supervisor restores quorum, then writes flow again.
    supervisor_only_heal(sut)
    assert sut.cluster.membership.has_quorum()
    sut.load("sales", [{"sale_id": 9000, "cid": 1, "price": 1.0}])
    oracle.load("sales", [{"sale_id": 9000, "cid": 1, "price": 1.0}])
    assert sut.sql(SELECT) == oracle.sql(SELECT)
    healthy = sut.sql(
        "SELECT detail FROM v_monitor.failover_events "
        "WHERE kind = 'degraded_mode' ORDER BY event_id DESC LIMIT 1"
    )
    assert "healthy" in healthy[0]["detail"]


@pytest.mark.parametrize("seed", chaos_seeds([7, 19]))
def test_random_kill_schedule_converges_to_oracle(seed, tmp_path):
    """Interleave commits with seed-chosen node kills (process death,
    heartbeat loss, mid-query crash); after each incident the
    supervisor alone must drive the cluster back to every-node-UP with
    exactly the fault-free oracle's rows."""
    rng = random.Random(seed)
    oracle = build_db(tmp_path / "oracle", 1, 0)
    sut = build_db(tmp_path / "sut", 3, 1)
    next_id = 0
    for round_index in range(4):
        rows = [
            {
                "sale_id": next_id + i,
                "cid": rng.randrange(12),
                "price": float(rng.randrange(100)),
            }
            for i in range(rng.randrange(10, 40))
        ]
        next_id += len(rows)
        for db in (oracle, sut):
            db.load("sales", rows)
            db.run_tuple_movers()

        incident = rng.choice(["crash", "heartbeat", "mid_query", "none"])
        victim = rng.randrange(3)
        if incident == "crash":
            sut.fail_node(victim)
        elif incident == "heartbeat":
            timeout = sut.cluster.membership.heartbeat_timeout
            plan = FaultPlan(seed=seed + round_index).arm(
                "membership.heartbeat", "drop", node=victim, count=timeout
            )
            with plan:
                for _ in range(timeout):
                    sut.cluster.supervisor.tick()
            assert not sut.cluster.membership.is_up(victim)
        elif incident == "mid_query":
            plan = FaultPlan(seed=seed + round_index).arm(
                "executor.scan", "crash", node=victim
            )
            with plan:
                sut.sql(SELECT)

        supervisor_only_heal(sut)
        assert sut.cluster.membership.down_nodes() == []
        assert sut.sql(SELECT) == oracle.sql(SELECT), (
            f"seed={seed} round={round_index} incident={incident} "
            f"victim={victim}"
        )
    assert sut.cluster.scrub().clean()
    assert sut.cluster.supervisor.converged()
