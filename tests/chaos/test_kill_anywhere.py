"""Kill-anywhere crash-restart sweep over the durability fault points.

For every seed x (fault point, action) pair, a fixed workload runs
against a durable database with a fault armed at a seeded offset.  The
process "dies" (or silently corrupts a journal file) mid-workload, the
database is reopened from disk, and the recovered state is checked
against oracle snapshots taken after every op of a fault-free run:

* a plain **crash** (and a **torn** staging file, which never
  publishes) must recover to the state just before or just after the
  interrupted op — the journal record either published or it didn't;
* a **torn**/**bitflip** on a *published* segment can damage any
  record of the active segment, so recovery lands on *some* exact
  op-prefix of the history — never a corrupted hybrid.  If the damage
  reaches back past the genesis record (and no checkpoint exists yet),
  cold start must refuse loudly rather than serve a guess.

Seeds come from ``REPRO_CRASH_SEEDS`` (comma-separated), so the
check-script can add a per-commit seed on top of the fixed ones.
"""

import os
import zlib

import pytest

from repro import types
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import DurabilityError, InjectedFaultError
from repro.execution import ColumnRef
from repro.execution.executor import DistributedExecutor
from repro.execution.operators.join import JoinType
from repro.faults import REGISTRY, FaultPlan
from repro.optimizer import JoinNode, PhysJoin, ScanNode
from repro.optimizer import physical as P

pytestmark = pytest.mark.chaos


def crash_seeds(default=(11, 23)):
    raw = os.environ.get("REPRO_CRASH_SEEDS", "")
    picked = [int(part) for part in raw.split(",") if part.strip()]
    return tuple(picked) or tuple(default)


#: The durability fault points and every action allowed at each.  The
#: sweep below exercises the full cross product; the coverage
#: meta-test at the bottom keeps this list honest against REGISTRY.
DURABILITY_POINTS = {
    "journal.append.stage": ("crash", "torn"),
    "journal.append.publish": ("crash", "torn", "bitflip"),
    "journal.checkpoint.stage": ("crash", "torn"),
    "journal.checkpoint.publish": ("crash", "torn", "bitflip"),
    "journal.commit.apply": ("crash",),
    "mover.wos.drain": ("crash",),
}

#: Upper bound (exclusive) for the seeded skip at each point, chosen
#: below the number of times the workload fires it so the fault always
#: lands.
SKIP_RANGE = {
    "journal.append.stage": 6,
    "journal.append.publish": 6,
    "journal.checkpoint.stage": 2,
    "journal.checkpoint.publish": 2,
    "journal.commit.apply": 4,
    "mover.wos.drain": 4,
}

SCENARIOS = [
    (point, action)
    for point, actions in sorted(DURABILITY_POINTS.items())
    for action in actions
]


def table(name="t"):
    return TableDefinition(
        name,
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def rows(n, start=0):
    return [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + n)]


#: Fixed workload: WOS loads, a mover cycle (floor + checkpoint), a
#: delete, mid-stream DDL, a direct-to-ROS load, a second mover cycle.
OPS = [
    ("load-wos-1", lambda db: db.load("t", rows(15))),
    ("movers-1", lambda db: db.run_tuple_movers()),
    ("load-wos-2", lambda db: db.load("t", rows(15, start=15))),
    ("delete", lambda db: db.sql("DELETE FROM t WHERE k % 5 = 1")),
    ("create-t2", lambda db: db.create_table(table("t2"), sort_order=["k"])),
    ("load-t2", lambda db: db.load("t2", rows(10))),
    (
        "load-direct",
        lambda db: db.load("t", rows(10, start=30), direct_to_ros=True),
    ),
    ("movers-2", lambda db: db.run_tuple_movers()),
]

#: The state before even the workload's setup DDL ran — reachable when
#: corruption lands in the setup records of the active segment.
BLANK = {"tables": []}


def capture(db):
    epoch = db.latest_epoch
    state = {"tables": sorted(db.cluster.catalog.tables)}
    for name in state["tables"]:
        state[name] = sorted(
            tuple(sorted(row.items()))
            for row in db.cluster.read_table(name, epoch)
        )
    return state


def build(path):
    db = Database(
        str(path), node_count=3, k_safety=1, journal_checkpoint_interval=4
    )
    db.create_table(table(), sort_order=["k"])
    return db


@pytest.fixture(scope="module")
def oracle_snaps(tmp_path_factory):
    """``oracle_snaps[i]`` is the visible state after the first ``i``
    workload ops of a fault-free run (index 0: right after setup)."""
    root = tmp_path_factory.mktemp("oracle")
    db = Database(str(root / "db"), node_count=3, k_safety=1, durable=False)
    db.create_table(table(), sort_order=["k"])
    snaps = [capture(db)]
    for _, op in OPS:
        op(db)
        snaps.append(capture(db))
    return snaps


@pytest.mark.parametrize("seed", crash_seeds())
@pytest.mark.parametrize(
    "point,action", SCENARIOS, ids=[f"{p}-{a}" for p, a in SCENARIOS]
)
def test_kill_anywhere_recovers_a_consistent_state(
    point, action, seed, tmp_path, oracle_snaps
):
    # builtin hash() is process-randomized; derive the skip stably
    skip = zlib.crc32(f"{seed}:{point}:{action}".encode()) % SKIP_RANGE[point]
    sut = build(tmp_path / "sut")
    plan = FaultPlan(seed=seed).arm(point, action, skip=skip)

    fired_op = None
    with plan:
        for index, (_, op) in enumerate(OPS):
            try:
                op(sut)
            except InjectedFaultError:
                fired_op = index  # the op was cut short mid-flight
                break
            if plan.fired:
                # swallowed (mover ejects the node) or silent (bitflip):
                # the op ran to completion, then we notice and "die"
                fired_op = index
                break
    assert plan.fired, f"{point}/{action} skip={skip} never fired"
    assert fired_op is not None

    del sut
    damaged_published = action != "crash" and point.endswith(".publish")
    try:
        recovered = Database.open(str(tmp_path / "sut"))
    except DurabilityError:
        # the damage cut the segment before even the genesis record
        # and no checkpoint exists: the journal is unrecoverable and
        # cold start must refuse loudly rather than serve a guess
        assert damaged_published, f"{point}/{action} refused a clean journal"
        return
    state = capture(recovered)

    if not damaged_published:
        # nothing on published media was damaged: recovery lands
        # exactly at the op boundary the crash interrupted
        acceptable = oracle_snaps[fired_op : fired_op + 2]
    else:
        # published-segment damage can cut the journal at any earlier
        # record: any exact op-prefix of the history is sound
        acceptable = [BLANK] + oracle_snaps[: fired_op + 2]
    assert state in acceptable, (
        f"{point}/{action} seed={seed} skip={skip} fired_op={fired_op}: "
        f"recovered state is not an op-boundary snapshot: {state}"
    )
    assert recovered.replay_report.containers_quarantined == 0

    # the recovered database is live: it accepts and journals writes
    if "t" in state["tables"]:
        before = len(state["t"])
        recovered.load("t", [{"k": 999_999, "v": "post-recovery"}])
        assert len(capture(recovered)["t"]) == before + 1


def test_clean_shutdown_reopens_with_zero_quarantine(
    tmp_path, oracle_snaps
):
    sut = build(tmp_path / "sut")
    for _, op in OPS:
        op(sut)
    final = capture(sut)
    assert final == oracle_snaps[-1]

    del sut
    recovered = Database.open(str(tmp_path / "sut"))
    assert capture(recovered) == final
    assert recovered.replay_report.containers_quarantined == 0
    for node in recovered.cluster.nodes:
        assert node.manager.quarantined == []


class TestExchangeFailover:
    """``executor.exchange`` fires while a Send drains a resegmented
    join fragment; the query must fail over like a mid-scan death."""

    def _build(self, tmp_path):
        db = Database(
            str(tmp_path / "db"), node_count=3, k_safety=1, durable=False
        )
        db.create_table(
            TableDefinition(
                "fact",
                [
                    ColumnDef("f_id", types.INTEGER),
                    ColumnDef("dim_id", types.INTEGER),
                ],
                primary_key=("f_id",),
            )
        )
        db.create_table(
            TableDefinition(
                "fact2",
                [
                    ColumnDef("g_id", types.INTEGER),
                    ColumnDef("link", types.INTEGER),
                ],
                primary_key=("g_id",),
            )
        )
        db.load("fact", [{"f_id": i, "dim_id": i % 20} for i in range(300)])
        db.load("fact2", [{"g_id": i, "link": i % 150} for i in range(300)])
        db.analyze_statistics()
        return db

    def _run_resegmented(self, db):
        plan = JoinNode(
            ScanNode("fact", ["f_id", "dim_id"]),
            ScanNode("fact2", ["g_id", "link"]),
            JoinType.INNER,
            [ColumnRef("f_id")],
            [ColumnRef("link")],
        )
        physical = db.planner("v2").plan(plan)
        join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
        join.strategy = P.RESEGMENT
        join.sip = False
        executor = DistributedExecutor(db.cluster, db.latest_epoch)
        return sorted(
            tuple(sorted(row.items())) for row in executor.run(physical)
        )

    def test_exchange_crash_fails_over(self, tmp_path):
        db = self._build(tmp_path)
        expected = self._run_resegmented(db)
        victim = 1
        plan = FaultPlan(seed=7).arm("executor.exchange", "crash", node=victim)
        with plan:
            got = self._run_resegmented(db)
        assert [f.point for f in plan.fired] == ["executor.exchange"]
        assert got == expected
        assert not db.cluster.membership.is_up(victim)


def test_every_fault_point_is_exercised_by_some_test():
    """Meta-test: every registered FaultPoint must appear (as a
    literal) in at least one test, so new points can't land untested."""
    tests_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    blob = []
    for root, _, files in os.walk(tests_root):
        for name in files:
            if name.endswith(".py"):
                with open(os.path.join(root, name), encoding="utf-8") as fh:
                    blob.append(fh.read())
    corpus = "\n".join(blob)
    missing = [name for name in sorted(REGISTRY) if name not in corpus]
    assert not missing, f"fault points with no exercising test: {missing}"
