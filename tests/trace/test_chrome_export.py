"""Golden tests for the trace span tree and its Chrome export.

One scripted 3-node aggregate query drives every check: the exact
span tree (ids, parents, categories, node attribution — all
deterministic for a seeded tracer and a fixed data layout), the
Chrome trace-event rendering Perfetto opens directly (one pid per
simulated node, coordinator pid 0), and the v_monitor surfacing of
the same trace.
"""

import json

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import TraceError
from repro.trace import COORDINATOR_PID, TraceSink

SQL = "SELECT b, COUNT(*) AS n FROM t GROUP BY b ORDER BY b"

#: The full span tree of SQL on the 3-node fixture: (span_id,
#: parent_id, category, name, node_index).  Wall durations are the
#: only nondeterministic part of a trace, so they are absent here.
GOLDEN_SPANS = [
    (1, None, "trace", "statement", None),
    (2, 1, "sql", "sql.parse", None),
    (3, 1, "sql", "sql.analyze", None),
    (4, 1, "optimizer", "optimizer.plan", None),
    (5, 1, "executor", "executor.attempt", None),
    (6, 5, "operator", "op.Sort", None),
    (7, 6, "operator", "op.ExprEval", None),
    (8, 7, "operator", "op.GroupByHash", None),
    (9, 8, "operator", "op.UnionAll", None),
    (10, 9, "operator", "op.PrepassGroupBy", None),
    (11, 10, "operator", "op.Scan", 0),
    (12, 9, "operator", "op.PrepassGroupBy", None),
    (13, 12, "operator", "op.Scan", 1),
    (14, 9, "operator", "op.PrepassGroupBy", None),
    (15, 14, "operator", "op.Scan", 2),
]


@pytest.fixture
def traced_query(tmp_path, tracing):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "t",
            [ColumnDef("a", types.INTEGER), ColumnDef("b", types.INTEGER)],
            primary_key=("a",),
        )
    )
    db.load("t", [{"a": i, "b": i % 7} for i in range(200)])
    db.analyze_statistics()
    rows = db.sql(SQL)
    assert len(rows) == 7
    return db, TraceSink()


def test_span_tree_golden(traced_query):
    _, sink = traced_query
    trace = sink.latest()
    got = [
        (s.span_id, s.parent_id, s.category, s.name, s.node_index)
        for s in trace.spans
    ]
    assert got == GOLDEN_SPANS
    assert trace.root.attrs["sql"] == SQL
    assert trace.root.attrs["statement"] == "SelectStatement"
    # parse -> plan -> execute on every participating node.
    assert trace.nodes() == [0, 1, 2]


def test_trace_ids_deterministic(traced_query, tracing):
    """Same seed, same workload => byte-identical trace id."""
    db, sink = traced_query
    first = sink.latest().trace_id
    tracing.reset()
    db.sql(SQL)
    assert TraceSink().latest().trace_id == first
    assert first == "629f6fbed82c07cd"  # Random(0) id stream, draw 1


def test_chrome_export_shape(traced_query):
    _, sink = traced_query
    trace = sink.latest()
    doc = sink.to_chrome_trace([trace.trace_id])
    assert sorted(doc) == ["displayTimeUnit", "otherData", "traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"] == {"exporter": "repro.trace", "traces": 1}

    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(meta) + len(slices) == len(doc["traceEvents"])

    # one pid per simulated node plus the coordinator, each named.
    assert [(e["pid"], e["args"]["name"]) for e in meta] == [
        (COORDINATOR_PID, "coordinator"),
        (1, "node0"),
        (2, "node1"),
        (3, "node2"),
    ]

    assert len(slices) == len(GOLDEN_SPANS)
    for event, (span_id, parent_id, category, name, node) in zip(
        slices, GOLDEN_SPANS
    ):
        assert event["name"] == name
        assert event["cat"] == category
        assert event["pid"] == (COORDINATOR_PID if node is None else node + 1)
        assert event["tid"] == 0
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        args = event["args"]
        assert args["trace_id"] == trace.trace_id
        assert args["span_id"] == span_id
        assert args["parent_id"] == parent_id
        assert args["start_tick"] is not None


def test_chrome_export_is_valid_json_on_disk(traced_query, tmp_path):
    _, sink = traced_query
    out = tmp_path / "trace.json"
    sink.write_chrome_trace(str(out))
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded == json.loads(json.dumps(sink.to_chrome_trace()))
    assert loaded["traceEvents"]


def test_sink_selection_helpers(traced_query):
    db, sink = traced_query
    trace = sink.latest()
    assert sink.trace(trace.trace_id) is trace
    with pytest.raises(TraceError):
        sink.trace("no-such-trace")
    # restricting to an unknown id exports nothing but stays valid.
    empty = sink.to_chrome_trace(["no-such-trace"])
    assert empty["traceEvents"] == []
    assert empty["otherData"]["traces"] == 0


def test_v_monitor_tables_surface_the_trace(traced_query):
    db, sink = traced_query
    trace = sink.latest()
    traces = db.sql(
        "SELECT trace_id, statement, span_count, node_count, node_list "
        "FROM v_monitor.query_traces"
    )
    mine = [r for r in traces if r["trace_id"] == trace.trace_id]
    assert mine == [
        {
            "trace_id": trace.trace_id,
            "statement": "SelectStatement",
            "span_count": len(GOLDEN_SPANS),
            "node_count": 3,
            "node_list": "0,1,2",
        }
    ]
    spans = db.sql(
        "SELECT span_id, parent_id, name, category, node_name "
        "FROM v_monitor.trace_spans "
        f"WHERE trace_id = '{trace.trace_id}' ORDER BY span_id"
    )
    assert [
        (r["span_id"], r["parent_id"], r["category"], r["name"])
        for r in spans
    ] == [(i, p, c, n) for i, p, c, n, _ in GOLDEN_SPANS]
    by_id = {r["span_id"]: r for r in spans}
    assert by_id[1]["node_name"] == "coordinator"
    assert by_id[11]["node_name"] == "node00"
    assert by_id[15]["node_name"] == "node02"
