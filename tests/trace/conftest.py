"""Shared fixtures for the tracing test suite."""

import pytest

from repro.trace import TRACER


@pytest.fixture
def tracing():
    """A clean, force-enabled tracer for one test."""
    TRACER.reset()
    TRACER.configure(sample_rate=1.0)
    with TRACER.enabled_scope(True):
        yield TRACER
    TRACER.reset()
