"""Span parent/child integrity under a resegmented (DAG-shaped) plan.

A resegment join shares each Send operator across every Recv
destination, so the executed plan is a DAG.  The trace must stay a
tree: each shared Send contributes exactly one ``exchange.send`` span
(its first run — subsequent pulls hit the operator's idempotence
guard), Recv spans re-attach under the executor's span via the
cross-node TraceHandle, and every span closes and nests inside its
parent even though exchange work drains lazily on other "nodes"."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import InvariantViolation
from repro.execution import ColumnRef
from repro.execution.executor import DistributedExecutor
from repro.execution.operators.exchange import RecvOperator, SendOperator
from repro.execution.operators.join import JoinType
from repro.lint import sanitizer
from repro.optimizer import JoinNode, PhysJoin, ScanNode
from repro.optimizer import physical as P
from repro.trace import TraceSink

C = ColumnRef


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER)],
            primary_key=("f_id",),
        )
    )
    db.create_table(
        TableDefinition(
            "fact2",
            [ColumnDef("g_id", types.INTEGER), ColumnDef("link", types.INTEGER)],
            primary_key=("g_id",),
        )
    )
    db.load("fact", [{"f_id": i, "dim_id": i % 20} for i in range(600)])
    db.load("fact2", [{"g_id": i, "link": i % 300} for i in range(600)])
    db.analyze_statistics()
    return db


def _run_resegmented(db):
    """Force the resegment strategy (the cost model would otherwise
    pick broadcast and hide the shared Sends)."""
    plan = JoinNode(
        ScanNode("fact", ["f_id", "dim_id"]),
        ScanNode("fact2", ["g_id", "link"]),
        JoinType.INNER,
        [C("f_id")],
        [C("link")],
    )
    physical = db.planner("v2").plan(plan)
    join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
    join.strategy = P.RESEGMENT
    join.sip = False
    executor = DistributedExecutor(db.cluster, db.latest_epoch)
    rows = executor.run(physical)
    assert len(rows) == 600
    root = executor.root_operator
    assert root is not None
    return root


@pytest.fixture
def resegmented_trace(db, tracing):
    trace = tracing.start_trace("resegment-test")
    root = _run_resegmented(db)
    tracing.end_trace(trace)
    return root, TraceSink().latest()


def test_shared_sends_traced_once(resegmented_trace):
    root, trace = resegmented_trace
    walked = list(root.walk())
    senders = [op for op in walked if isinstance(op, SendOperator)]
    recvs = [op for op in walked if isinstance(op, RecvOperator)]
    # the DAG really shares: 2 join sides x 3 fragments feed 6 Recvs,
    # and each Send fans out to every destination.
    assert len(senders) == 6
    assert len(recvs) == 6

    send_spans = [s for s in trace.spans if s.name == "exchange.send"]
    recv_spans = [s for s in trace.spans if s.name == "exchange.recv"]
    assert len(send_spans) == len(senders)  # one span per Send, no dupes
    assert len(recv_spans) == len(recvs)
    assert {s.trace_span_id for s in senders} == {
        s.span_id for s in send_spans
    }
    # every Recv span names a distinct destination segment.
    assert sorted(s.attrs["destination"] for s in recv_spans) == [
        0, 0, 1, 1, 2, 2,
    ]
    for span in send_spans:
        assert span.attrs["rows_sent"] >= 0
        assert span.attrs["bytes_sent"] >= 0


def test_exchange_spans_reattach_under_executor(resegmented_trace):
    _, trace = resegmented_trace
    by_id = {s.span_id: s for s in trace.spans}
    for span in trace.spans:
        if span.category != "exchange":
            continue
        # the TraceHandle stamped at plan-build time re-attached the
        # exchange work under the span that requested it, not wherever
        # the open-span stack happened to point when it drained.
        parent = by_id[span.parent_id]
        assert parent.name == "executor.attempt"
        assert span.node_index is not None


def test_operator_spans_cover_dag_once(resegmented_trace):
    root, trace = resegmented_trace
    walked = list(root.walk())
    live_exchanges = [
        op
        for op in walked
        if isinstance(op, (SendOperator, RecvOperator))
        and op.trace_span_id is not None
    ]
    op_spans = [s for s in trace.spans if s.category == "operator"]
    # synthesized operator spans cover each walked operator exactly
    # once, minus the exchanges that already traced themselves live.
    assert len(op_spans) == len(walked) - len(live_exchanges)
    assert len({s.span_id for s in trace.spans}) == len(trace.spans)


def test_all_spans_closed_and_nested(resegmented_trace):
    _, trace = resegmented_trace
    assert all(s.closed for s in trace.spans)
    assert not trace.open_spans()
    # the sanitizer checks already ran in end_trace (conftest enables
    # them); re-run explicitly so a regression fails here by name.
    sanitizer.check_trace_spans_closed(trace)
    sanitizer.check_trace_nesting(trace)


def test_sanitizer_rejects_unclosed_span(resegmented_trace):
    _, trace = resegmented_trace
    span = trace.spans[-1]
    saved = span.duration_seconds
    span.duration_seconds = None
    try:
        with pytest.raises(InvariantViolation, match="never closed"):
            sanitizer.check_trace_spans_closed(trace)
    finally:
        span.duration_seconds = saved


def test_sanitizer_rejects_escaping_interval(resegmented_trace):
    _, trace = resegmented_trace
    span = next(s for s in trace.spans if s.parent_id is not None)
    saved = span.start_offset
    span.start_offset = -5.0
    try:
        with pytest.raises(InvariantViolation, match="escapes parent"):
            sanitizer.check_trace_nesting(trace)
    finally:
        span.start_offset = saved


def test_sanitizer_rejects_escaping_ticks(resegmented_trace):
    _, trace = resegmented_trace
    span = next(s for s in trace.spans if s.parent_id is not None)
    saved = span.start_tick
    span.start_tick = -1
    try:
        with pytest.raises(InvariantViolation, match="escape parent"):
            sanitizer.check_trace_nesting(trace)
    finally:
        span.start_tick = saved
