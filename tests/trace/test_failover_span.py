"""Chaos test: a mid-query failover retry shows up in the trace.

A node is crashed mid-scan via deterministic fault injection; the
distributed executor must fail over and retry, and the statement's
trace must record that as a ``failover.retry`` child span naming the
dead node and the re-resolved buddy sources — the observability story
the tracing subsystem exists for."""

import random

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.faults import FaultPlan
from repro.trace import TraceSink

pytestmark = pytest.mark.chaos

SELECT = (
    "SELECT cid, COUNT(*) AS n, SUM(price) AS total "
    "FROM sales GROUP BY cid ORDER BY cid"
)


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "sales",
            [
                ColumnDef("sale_id", types.INTEGER),
                ColumnDef("cid", types.INTEGER),
                ColumnDef("price", types.FLOAT),
            ],
            primary_key=("sale_id",),
        ),
        sort_order=["sale_id"],
    )
    db.load(
        "sales",
        [
            {"sale_id": i, "cid": i % 9, "price": float(i % 50)}
            for i in range(150)
        ],
    )
    db.analyze_statistics()
    return db


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_failover_retry_is_a_child_span_naming_dead_node(db, tracing, seed):
    rng = random.Random(seed)
    victim = rng.randrange(3)
    expected = db.sql(SELECT)

    plan = FaultPlan(seed=seed).arm(
        "executor.scan", "crash", node=victim, skip=rng.randrange(2)
    )
    with plan:
        got = db.sql(SELECT)
    assert got == expected

    # the crashed query's trace is the one recording the retry.
    trace = next(
        t
        for t in reversed(TraceSink().traces())
        if any(s.name == "failover.retry" for s in t.spans)
    )
    retries = [s for s in trace.spans if s.name == "failover.retry"]
    assert len(retries) == 1
    retry = retries[0]
    assert retry.category == "failover"
    assert retry.attrs["dead_node"] == victim
    assert retry.attrs["attempt"] == 1
    # the re-resolved sources (per scanned family) exclude the ejected
    # node: the surviving buddies took over its segments.
    sources = retry.attrs["resolved_sources"]
    assert list(sources) == ["sales_super"]
    assert all(host != victim for host, _ in sources["sales_super"])

    # child of the statement trace, not a sibling trace of its own.
    assert trace.root.name == "statement"
    assert retry.parent_id is not None

    # the failed first attempt is visible too, with its error recorded.
    attempts = [s for s in trace.spans if s.name == "executor.attempt"]
    assert [s.attrs["attempt"] for s in attempts] == [1, 2]
    assert attempts[0].attrs["error"] == "NodeDownError"
    assert "error" not in attempts[1].attrs

    # and the same story is queryable through v_monitor.trace_spans.
    rows = db.sql(
        "SELECT name, error FROM v_monitor.trace_spans "
        f"WHERE trace_id = '{trace.trace_id}' ORDER BY span_id"
    )
    names = [r["name"] for r in rows]
    assert "failover.retry" in names
    errors = {r["name"]: r["error"] for r in rows if r["error"]}
    assert errors.get("executor.attempt") == "NodeDownError"
