"""Goldens for kernel-vs-row visibility in EXPLAIN and the profiler.

The vectorized engine must be *observable*: EXPLAIN tags every Scan /
Filter / GroupBy with the engine that will run it (``[kernel]`` or
``[row]``), and EXPLAIN ANALYZE / ``v_monitor.query_profiles`` report
the engine that actually ran (``exec=kernel`` / ``exec=row``).  These
tests pin the exact plan text for a kernelizable query, a predicate
the kernels cannot compile, and the ``REPRO_FORCE_ROW_ENGINE=1``
fallback — plus the sanitizer's row-conservation checks, which guard
the kernel/row equivalence at runtime.
"""

import re

import pytest

from repro import types
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import InvariantViolation
from repro.execution.kernels import force_row_engine
from repro.lint import sanitizer

AGG_SQL = (
    "SELECT tag, COUNT(*) AS n, SUM(v) AS sv FROM t "
    "WHERE k < 100 GROUP BY tag"
)

#: A predicate no kernel compiles: arithmetic inside the comparison.
ROW_SQL = "SELECT k FROM t WHERE v + 1.0 > 100.0"


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("kexp") / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "t",
            [
                ColumnDef("k", types.INTEGER),
                ColumnDef("tag", types.VARCHAR),
                ColumnDef("v", types.FLOAT),
            ],
        ),
        sort_order=["k"],
    )
    db.load(
        "t",
        [{"k": i, "tag": ["a", "b"][i % 2], "v": float(i)} for i in range(500)],
    )
    db.run_tuple_movers()
    return db


def test_explain_marks_kernelized_operators(db):
    assert db.sql("EXPLAIN " + AGG_SQL) == (
        "Project tag=tag, n=agg_1, sv=agg_2  [coordinator, ~1 rows]\n"
        "  GroupBy[hash two-phase+prepass] [tag] [COUNT(*), SUM(v)] "
        "[kernel]  [coordinator, ~1 rows]\n"
        "    Scan t_super WHERE (k < 100) [kernel]  "
        "[segmented on (k), ~1 rows]"
    )


def test_explain_marks_row_fallback_predicate(db):
    assert db.sql("EXPLAIN " + ROW_SQL) == (
        "Project k=k  [segmented on (k), ~1 rows]\n"
        "  Scan t_super WHERE ((v + 1.0) > 100.0) [row]  "
        "[segmented on (k), ~1 rows]"
    )


def test_explain_under_forced_row_engine(db):
    """REPRO_FORCE_ROW_ENGINE flips every engine tag to [row]."""
    with force_row_engine():
        plan = db.sql("EXPLAIN " + AGG_SQL)
    assert "[kernel]" not in plan
    assert plan.count("[row]") == 2  # GroupBy and Scan


def _exec_modes(rendered):
    """operator name -> exec= tag from an EXPLAIN ANALYZE rendering."""
    modes = {}
    for line in rendered.splitlines()[1:]:
        name = line.strip().split("(")[0]
        tag = re.search(r" exec=(\w+)\]", line)
        modes[name] = tag.group(1) if tag else None
    return modes


def test_explain_analyze_reports_actual_engine(db):
    modes = _exec_modes(db.sql("EXPLAIN ANALYZE " + AGG_SQL))
    assert modes["Scan"] == "kernel"
    assert modes["PrepassGroupBy"] == "kernel"
    # the merge phase absorbs plain partial blocks per-row by design
    assert modes["GroupByHash"] == "row"
    assert modes["ExprEval"] is None  # no kernel/row distinction

    with force_row_engine():
        forced = _exec_modes(db.sql("EXPLAIN ANALYZE " + AGG_SQL))
    assert forced["Scan"] == "row"
    assert forced["PrepassGroupBy"] == "row"


def test_query_profiles_execution_column(db):
    db.sql(AGG_SQL)
    rows = db.sql(
        "SELECT operator_name, execution FROM v_monitor.query_profiles "
        "WHERE sql = '" + AGG_SQL.replace("'", "''") + "' "
        "ORDER BY query_id DESC, operator_id LIMIT 4"
    )
    by_name = {row["operator_name"]: row["execution"] for row in rows}
    assert by_name["Scan"] == "kernel"
    assert by_name["ExprEval"] == "-"


def test_both_engines_agree_with_sanitizer_on(db):
    """REPRO_SANITIZE=1 regression: the row-conservation checks stay
    silent on correct plans, in both engines."""
    with sanitizer.override(True):
        kernel = db.sql(AGG_SQL + " ORDER BY tag")
        with force_row_engine():
            row = db.sql(AGG_SQL + " ORDER BY tag")
    assert kernel == row
    assert kernel == [
        {"tag": "a", "n": 50, "sv": sum(float(i) for i in range(0, 100, 2))},
        {"tag": "b", "n": 50, "sv": sum(float(i) for i in range(1, 100, 2))},
    ]


def test_filter_conservation_check_fires(db):
    with sanitizer.override(True):
        sanitizer.check_filter_conservation(10, 10)  # boundary: keep all
        sanitizer.check_filter_conservation(10, 0)  # boundary: drop all
        with pytest.raises(InvariantViolation, match="fabricated"):
            sanitizer.check_filter_conservation(10, 11)
        with pytest.raises(InvariantViolation, match="fabricated"):
            sanitizer.check_filter_conservation(10, -1)
    with sanitizer.override(False):  # disabled: never raises
        sanitizer.check_filter_conservation(10, 11)


def test_groupby_conservation_check_fires(db):
    with sanitizer.override(True):
        sanitizer.check_groupby_conservation(400, 400)
        with pytest.raises(InvariantViolation, match="double-counted"):
            sanitizer.check_groupby_conservation(400, 399)
    with sanitizer.override(False):
        sanitizer.check_groupby_conservation(400, 399)
