"""Regression tests for DAG-shaped plans and per-operator accounting.

A resegment join shares each Send operator across every Recv
destination, so the physical plan is a DAG, not a tree.  The per-
operator counters the monitor relies on used to be double-counted:
``walk()`` yielded shared Sends once per parent and ``explain()``
rendered their subtrees repeatedly, so summing ``rows_produced`` over
a resegmented plan overstated pipeline volume by the sharing factor.
These tests force the resegment strategy and pin the fixed behaviour.
"""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution import ColumnRef
from repro.execution.executor import DistributedExecutor
from repro.execution.operators.join import JoinType
from repro.monitor import profile_plan
from repro.optimizer import JoinNode, PhysJoin, ScanNode
from repro.optimizer import physical as P

C = ColumnRef


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER)],
            primary_key=("f_id",),
        )
    )
    db.create_table(
        TableDefinition(
            "fact2",
            [ColumnDef("g_id", types.INTEGER), ColumnDef("link", types.INTEGER)],
            primary_key=("g_id",),
        )
    )
    db.load("fact", [{"f_id": i, "dim_id": i % 20} for i in range(600)])
    db.load("fact2", [{"g_id": i, "link": i % 300} for i in range(600)])
    db.analyze_statistics()
    return db


def _run_resegmented(db):
    """Plan fact JOIN fact2 and force the resegment strategy (the cost
    model would otherwise pick broadcast and hide the shared Sends)."""
    plan = JoinNode(
        ScanNode("fact", ["f_id", "dim_id"]),
        ScanNode("fact2", ["g_id", "link"]),
        JoinType.INNER,
        [C("f_id")],
        [C("link")],
    )
    physical = db.planner("v2").plan(plan)
    join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
    join.strategy = P.RESEGMENT
    join.sip = False
    executor = DistributedExecutor(db.cluster, db.latest_epoch)
    rows = executor.run(physical)
    assert len(rows) == 600
    root = executor.root_operator
    assert root is not None
    return root


def test_walk_yields_shared_operators_once(db):
    root = _run_resegmented(db)
    walked = list(root.walk())
    assert len(walked) == len({id(op) for op in walked})
    # the DAG really is shared: some operator has several parents.
    parents: dict = {}
    for op in walked:
        for child in op.children:
            parents.setdefault(id(child), set()).add(id(op))
    assert any(len(ps) > 1 for ps in parents.values())


def test_walk_row_totals_not_double_counted(db):
    root = _run_resegmented(db)
    total = sum(op.rows_produced for op in root.walk())
    by_id = {id(op): op for op in root.walk()}
    assert total == sum(op.rows_produced for op in by_id.values())


def test_explain_marks_shared_subtrees(db):
    root = _run_resegmented(db)
    rendered = root.explain()
    assert "[shared]" in rendered
    # a shared Send's subtree is expanded exactly once: the rendering
    # has one line per unique operator plus one [shared] stub per
    # extra parent edge.
    unique = len(list(root.walk()))
    stub_lines = sum(
        1 for line in rendered.splitlines() if line.endswith("[shared]")
    )
    assert len(rendered.splitlines()) == unique + stub_lines
    assert stub_lines > 0


def test_profile_plan_counts_each_operator_once(db):
    root = _run_resegmented(db)
    profiles = profile_plan(root)
    assert len(profiles) == len(list(root.walk()))
    assert len({p.operator_id for p in profiles}) == len(profiles)
    walked_rows = sum(op.rows_produced for op in root.walk())
    assert sum(p.rows_produced for p in profiles) == walked_rows
