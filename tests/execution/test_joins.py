"""Tests for hash join, merge join, all join flavors, SIP and the
runtime hash->merge switch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.execution import (
    ColumnRef,
    HashJoinOperator,
    JoinType,
    MergeJoinOperator,
    RowSource,
    ScanOperator,
    SortKey,
    SortOperator,
)

C = ColumnRef


def source(rows, columns, block_rows=16):
    return RowSource(rows, columns, block_rows=block_rows)


def facts():
    return [
        {"f_id": 1, "f_dim": 10},
        {"f_id": 2, "f_dim": 20},
        {"f_id": 3, "f_dim": 20},
        {"f_id": 4, "f_dim": 99},   # no matching dimension
        {"f_id": 5, "f_dim": None},  # NULL key never matches
    ]


def dims():
    return [
        {"d_id": 10, "d_name": "ten"},
        {"d_id": 20, "d_name": "twenty"},
        {"d_id": 30, "d_name": "thirty"},  # no matching fact
    ]


def hash_join(join_type, left=None, right=None, **kwargs):
    return HashJoinOperator(
        source(facts() if left is None else left, ["f_id", "f_dim"]),
        source(dims() if right is None else right, ["d_id", "d_name"]),
        [C("f_dim")],
        [C("d_id")],
        join_type,
        left_columns=["f_id", "f_dim"],
        right_columns=["d_id", "d_name"],
        **kwargs,
    )


def merge_join(join_type, left=None, right=None):
    left_rows = sorted(facts() if left is None else left, key=lambda r: (r["f_dim"] is not None, r["f_dim"] or 0))
    right_rows = sorted(dims() if right is None else right, key=lambda r: r["d_id"])
    return MergeJoinOperator(
        source(left_rows, ["f_id", "f_dim"]),
        source(right_rows, ["d_id", "d_name"]),
        [C("f_dim")],
        [C("d_id")],
        join_type,
        left_columns=["f_id", "f_dim"],
        right_columns=["d_id", "d_name"],
    )


EXPECTED_INNER_IDS = [1, 2, 3]


class TestHashJoinFlavors:
    def test_inner(self):
        out = hash_join(JoinType.INNER).rows()
        assert sorted(row["f_id"] for row in out) == EXPECTED_INNER_IDS
        assert all("d_name" in row for row in out)

    def test_left(self):
        out = hash_join(JoinType.LEFT).rows()
        assert sorted(row["f_id"] for row in out) == [1, 2, 3, 4, 5]
        unmatched = [row for row in out if row["f_id"] in (4, 5)]
        assert all(row["d_name"] is None for row in unmatched)

    def test_right(self):
        out = hash_join(JoinType.RIGHT).rows()
        assert sorted(row["d_id"] for row in out) == [10, 20, 20, 30]
        thirty = [row for row in out if row["d_id"] == 30]
        assert thirty[0]["f_id"] is None

    def test_full(self):
        out = hash_join(JoinType.FULL).rows()
        assert len(out) == 6  # 3 matches + facts 4,5 + dim 30

    def test_semi(self):
        out = hash_join(JoinType.SEMI).rows()
        assert sorted(row["f_id"] for row in out) == EXPECTED_INNER_IDS
        assert all(set(row) == {"f_id", "f_dim"} for row in out)

    def test_anti(self):
        out = hash_join(JoinType.ANTI).rows()
        assert sorted(row["f_id"] for row in out) == [4, 5]

    def test_duplicate_build_keys_multiply(self):
        right = [{"d_id": 10, "d_name": "a"}, {"d_id": 10, "d_name": "b"}]
        left = [{"f_id": 1, "f_dim": 10}]
        out = hash_join(JoinType.INNER, left=left, right=right).rows()
        assert len(out) == 2

    def test_column_collision_detected(self):
        from repro.errors import ExecutionError

        join = HashJoinOperator(
            source([{"a": 1}], ["a"]),
            source([{"a": 1}], ["a"]),
            [C("a")], [C("a")], JoinType.INNER,
            left_columns=["a"], right_columns=["a"],
        )
        with pytest.raises(ExecutionError):
            join.rows()


class TestMergeJoinFlavors:
    @pytest.mark.parametrize(
        "join_type",
        [JoinType.INNER, JoinType.LEFT, JoinType.RIGHT, JoinType.FULL,
         JoinType.SEMI, JoinType.ANTI],
    )
    def test_merge_matches_hash(self, join_type):
        hash_out = hash_join(join_type).rows()
        merge_out = merge_join(join_type).rows()
        key = lambda row: tuple(
            (value is None, value) for value in sorted(
                ((k, v) for k, v in row.items()), key=lambda kv: kv[0]
            )
        )
        normalize = lambda rows: sorted(
            (tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows)
        )
        assert normalize(hash_out) == normalize(merge_out)

    def test_merge_duplicates_cross_product(self):
        left = [{"f_id": i, "f_dim": 10} for i in range(3)]
        right = [{"d_id": 10, "d_name": f"n{i}"} for i in range(2)]
        out = merge_join(JoinType.INNER, left=left, right=right).rows()
        assert len(out) == 6


class TestRuntimeSwitch:
    def test_hash_join_switches_to_merge(self):
        left = [{"f_id": i, "f_dim": i % 50} for i in range(500)]
        right = [{"d_id": i, "d_name": str(i)} for i in range(200)]
        join = hash_join(JoinType.INNER, left=left, right=right, max_build_rows=50)
        out = join.rows()
        assert join.switched_to_merge
        # correctness identical to unconstrained hash join
        reference = hash_join(JoinType.INNER, left=left, right=right).rows()
        normalize = lambda rows: sorted(
            tuple(sorted((k, repr(v)) for k, v in row.items())) for row in rows
        )
        assert normalize(out) == normalize(reference)

    def test_switch_counts_as_spill(self):
        from repro.execution import ResourcePool, WorkloadPolicy

        pool = ResourcePool(WorkloadPolicy(query_memory_rows=10))
        left = [{"f_id": i, "f_dim": i} for i in range(100)]
        right = [{"d_id": i, "d_name": str(i)} for i in range(100)]
        join = hash_join(JoinType.INNER, left=left, right=right, pool=pool)
        join.rows()
        assert pool.spills >= 1


class TestSip:
    def _storage(self, tmp_path):
        from repro import types
        from repro.core.schema import ColumnDef, TableDefinition
        from repro.projections import super_projection
        from repro.storage import StorageManager

        table = TableDefinition(
            "f", [ColumnDef("f_id", types.INTEGER), ColumnDef("f_dim", types.INTEGER)]
        )
        projection = super_projection(table, sort_order=["f_id"])
        manager = StorageManager(str(tmp_path / "n"))
        manager.register_projection(projection, table)
        rows = [{"f_id": i, "f_dim": i % 100} for i in range(1000)]
        manager.insert("f_super", rows, epoch=1, direct_to_ros=True)
        return manager

    def test_sip_filters_scan_output(self, tmp_path):
        manager = self._storage(tmp_path)
        scan = ScanOperator(manager, "f_super", 1, ["f_id", "f_dim"])
        dims_rows = [{"d_id": i, "d_name": str(i)} for i in range(5)]
        join = HashJoinOperator(
            scan,
            source(dims_rows, ["d_id", "d_name"]),
            [C("f_dim")],
            [C("d_id")],
            JoinType.INNER,
            left_columns=["f_id", "f_dim"],
            right_columns=["d_id", "d_name"],
        )
        sip = join.make_sip_filter([C("f_dim")])
        scan.sip_filters.append(sip)
        out = join.rows()
        assert len(out) == 50  # 5 of 100 dims match, 10 facts each
        assert sip.rows_filtered == 950
        # the join saw only pre-filtered rows
        assert scan.rows_produced == 50

    def test_sip_without_publication_is_noop(self, tmp_path):
        manager = self._storage(tmp_path)
        scan = ScanOperator(manager, "f_super", 1, ["f_id", "f_dim"])
        from repro.execution import SipFilter

        scan.sip_filters.append(SipFilter(key_exprs=[C("f_dim")]))
        assert len(scan.rows()) == 1000


class TestJoinProperties:
    @given(
        left_keys=st.lists(st.integers(min_value=0, max_value=20), max_size=30),
        right_keys=st.lists(st.integers(min_value=0, max_value=20), max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_inner_join_count_matches_bruteforce(self, left_keys, right_keys):
        left = [{"f_id": i, "f_dim": k} for i, k in enumerate(left_keys)]
        right = [{"d_id": k, "d_name": str(i)} for i, k in enumerate(right_keys)]
        out = hash_join(JoinType.INNER, left=left, right=right).rows()
        expected = sum(
            1 for lk in left_keys for rk in right_keys if lk == rk
        )
        assert len(out) == expected

    @given(
        left_keys=st.lists(
            st.one_of(st.none(), st.integers(min_value=0, max_value=10)), max_size=25
        ),
        right_keys=st.lists(st.integers(min_value=0, max_value=10), max_size=25),
    )
    @settings(max_examples=30, deadline=None)
    def test_left_join_preserves_every_left_row(self, left_keys, right_keys):
        left = [{"f_id": i, "f_dim": k} for i, k in enumerate(left_keys)]
        right = [{"d_id": k, "d_name": str(i)} for i, k in enumerate(right_keys)]
        out = hash_join(JoinType.LEFT, left=left, right=right).rows()
        from collections import Counter

        per_left = Counter(row["f_id"] for row in out)
        for i, key in enumerate(left_keys):
            matches = sum(1 for rk in right_keys if key is not None and rk == key)
            assert per_left[i] == max(matches, 1)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=8), max_size=40),
    )
    @settings(max_examples=20, deadline=None)
    def test_semi_plus_anti_partition_left(self, keys):
        left = [{"f_id": i, "f_dim": k} for i, k in enumerate(keys)]
        right = [{"d_id": k, "d_name": ""} for k in range(0, 9, 2)]
        semi = hash_join(JoinType.SEMI, left=left, right=right).rows()
        anti = hash_join(JoinType.ANTI, left=left, right=right).rows()
        assert len(semi) + len(anti) == len(left)
        assert {row["f_id"] for row in semi}.isdisjoint(
            row["f_id"] for row in anti
        )
