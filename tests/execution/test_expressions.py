"""Tests for vectorized expressions and NULL semantics."""

import pytest

from repro.errors import ExecutionError
from repro.execution import (
    And,
    Arithmetic,
    Between,
    CaseWhen,
    ColumnRef,
    Comparison,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
    RowBlock,
    column_range_from_predicate,
)

C = ColumnRef
L = Literal


def block(**columns):
    lengths = {len(values) for values in columns.values()}
    assert len(lengths) == 1
    return RowBlock(columns={k: list(v) for k, v in columns.items()}, row_count=lengths.pop())


class TestBasics:
    def test_column_ref(self):
        assert C("a").evaluate(block(a=[1, 2])) == [1, 2]

    def test_literal(self):
        assert L(7).evaluate(block(a=[0, 0, 0])) == [7, 7, 7]

    def test_comparison(self):
        b = block(a=[1, 5, 3])
        assert (C("a") > L(2)).evaluate(b) == [False, True, True]
        assert (C("a") == L(5)).evaluate(b) == [False, True, False]

    def test_comparison_null_propagates(self):
        b = block(a=[1, None])
        assert (C("a") > L(0)).evaluate(b) == [True, None]

    def test_arithmetic(self):
        b = block(a=[2, 4], b=[3, 5])
        assert (C("a") + C("b")).evaluate(b) == [5, 9]
        assert (C("a") * L(10)).evaluate(b) == [20, 40]
        assert Arithmetic("%", C("b"), L(2)).evaluate(b) == [1, 1]

    def test_division(self):
        b = block(a=[6, 7])
        assert (C("a") / L(2)).evaluate(b) == [3, 3.5]
        with pytest.raises(ExecutionError):
            (C("a") / L(0)).evaluate(b)

    def test_arithmetic_null(self):
        assert (C("a") + L(1)).evaluate(block(a=[None])) == [None]


class TestBooleans:
    def test_kleene_and(self):
        b = block(x=[True, True, True, None, None, False], y=[True, False, None, None, False, False])
        assert And(C("x"), C("y")).evaluate(b) == [True, False, None, None, False, False]

    def test_kleene_or(self):
        b = block(x=[True, None, None, False], y=[False, True, None, False])
        assert Or(C("x"), C("y")).evaluate(b) == [True, True, None, False]

    def test_not(self):
        assert Not(C("x")).evaluate(block(x=[True, False, None])) == [False, True, None]

    def test_nary(self):
        b = block(x=[True], y=[True], z=[False])
        assert And(C("x"), C("y"), C("z")).evaluate(b) == [False]


class TestPredicateForms:
    def test_between(self):
        b = block(a=[1, 5, 10])
        assert Between(C("a"), L(2), L(9)).evaluate(b) == [False, True, False]

    def test_in_list(self):
        b = block(a=["x", "q", None])
        assert InList(C("a"), ["x", "y"]).evaluate(b) == [True, False, None]

    def test_is_null(self):
        b = block(a=[1, None])
        assert IsNull(C("a")).evaluate(b) == [False, True]
        assert IsNull(C("a"), negated=True).evaluate(b) == [True, False]

    def test_case_when(self):
        expr = CaseWhen(
            [(C("a") > L(10), L("big")), (C("a") > L(5), L("mid"))], L("small")
        )
        assert expr.evaluate(block(a=[20, 7, 1])) == ["big", "mid", "small"]


class TestFunctions:
    def test_scalar_functions(self):
        assert FunctionCall("ABS", C("a")).evaluate(block(a=[-3, 4])) == [3, 4]
        assert FunctionCall("UPPER", C("s")).evaluate(block(s=["ab"])) == ["AB"]
        assert FunctionCall("LENGTH", C("s")).evaluate(block(s=["abc", None])) == [3, None]

    def test_unknown_function_rejected(self):
        with pytest.raises(ExecutionError):
            FunctionCall("MD5", C("a"))


class TestCompilation:
    def test_compiled_closure_cached(self):
        expr = C("a") + L(1)
        assert expr.compiled() is expr.compiled()

    def test_referenced_columns(self):
        expr = And(C("a") > L(1), Or(C("b") == C("c"), IsNull(C("d"))))
        assert expr.referenced_columns() == {"a", "b", "c", "d"}

    def test_evaluate_row(self):
        assert (C("a") * L(2)).evaluate_row({"a": 21}) == 42


class TestRangeExtraction:
    def test_single_bounds(self):
        assert column_range_from_predicate(C("a") > L(5)) == {"a": (5, None)}
        assert column_range_from_predicate(C("a") <= L(9)) == {"a": (None, 9)}
        assert column_range_from_predicate(C("a") == L(3)) == {"a": (3, 3)}

    def test_mirrored_comparison(self):
        assert column_range_from_predicate(L(5) < C("a")) == {"a": (5, None)}

    def test_between(self):
        assert column_range_from_predicate(Between(C("a"), L(1), L(2))) == {
            "a": (1, 2)
        }

    def test_conjunction_tightens(self):
        predicate = And(C("a") > L(1), C("a") < L(10), C("b") == L(4))
        assert column_range_from_predicate(predicate) == {
            "a": (1, 10),
            "b": (4, 4),
        }

    def test_disjunction_ignored(self):
        assert column_range_from_predicate(Or(C("a") > L(1), C("b") > L(2))) == {}

    def test_none_predicate(self):
        assert column_range_from_predicate(None) == {}
