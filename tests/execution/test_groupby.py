"""Tests for the three group-by algorithms and aggregate semantics."""

import pytest

from repro.errors import ExecutionError
from repro.execution import (
    AggregateSpec,
    ColumnRef,
    GroupByHashOperator,
    GroupByPipelinedOperator,
    PrepassGroupByOperator,
    RowSource,
)

C = ColumnRef


def source(rows, columns, block_rows=64):
    return RowSource(rows, columns, block_rows=block_rows)


def by_key(rows, key):
    return {row[key]: row for row in rows}


class TestHashGroupBy:
    def test_count_sum_min_max_avg(self):
        rows = [{"g": i % 2, "v": i} for i in range(10)]
        out = GroupByHashOperator(
            source(rows, ["g", "v"]),
            [C("g")],
            ["g"],
            [
                AggregateSpec("COUNT", None, "n"),
                AggregateSpec("SUM", C("v"), "total"),
                AggregateSpec("MIN", C("v"), "lo"),
                AggregateSpec("MAX", C("v"), "hi"),
                AggregateSpec("AVG", C("v"), "mean"),
            ],
        ).rows()
        groups = by_key(out, "g")
        assert groups[0] == {"g": 0, "n": 5, "total": 20, "lo": 0, "hi": 8, "mean": 4.0}
        assert groups[1]["total"] == 25

    def test_nulls_ignored_by_aggregates(self):
        rows = [{"g": 1, "v": None}, {"g": 1, "v": 4}]
        out = GroupByHashOperator(
            source(rows, ["g", "v"]),
            [C("g")],
            ["g"],
            [
                AggregateSpec("COUNT", C("v"), "n"),
                AggregateSpec("SUM", C("v"), "s"),
                AggregateSpec("AVG", C("v"), "a"),
            ],
        ).rows()
        assert out == [{"g": 1, "n": 1, "s": 4, "a": 4.0}]

    def test_count_star_counts_null_rows(self):
        rows = [{"g": 1, "v": None}, {"g": 1, "v": 2}]
        out = GroupByHashOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"],
            [AggregateSpec("COUNT", None, "n")],
        ).rows()
        assert out == [{"g": 1, "n": 2}]

    def test_null_group_key_is_a_group(self):
        rows = [{"g": None, "v": 1}, {"g": None, "v": 2}, {"g": 3, "v": 3}]
        out = GroupByHashOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"],
            [AggregateSpec("SUM", C("v"), "s")],
        ).rows()
        assert sorted(out, key=lambda r: repr(r["g"])) == [
            {"g": 3, "s": 3},
            {"g": None, "s": 3},
        ]

    def test_global_aggregate(self):
        rows = [{"v": i} for i in range(5)]
        out = GroupByHashOperator(
            source(rows, ["v"]), [], [], [AggregateSpec("SUM", C("v"), "s")]
        ).rows()
        assert out == [{"s": 10}]

    def test_global_aggregate_empty_input(self):
        out = GroupByHashOperator(
            source([], ["v"]), [], [],
            [AggregateSpec("COUNT", None, "n"), AggregateSpec("SUM", C("v"), "s")],
        ).rows()
        assert out == [{"n": 0, "s": None}]

    def test_distinct_aggregate(self):
        rows = [{"g": 1, "v": 5}, {"g": 1, "v": 5}, {"g": 1, "v": 7}]
        out = GroupByHashOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"],
            [AggregateSpec("COUNT", C("v"), "n", distinct=True)],
        ).rows()
        assert out == [{"g": 1, "n": 2}]

    def test_expression_group_key(self):
        rows = [{"v": i} for i in range(10)]
        from repro.execution import Arithmetic, Literal

        out = GroupByHashOperator(
            source(rows, ["v"]),
            [Arithmetic("%", C("v"), Literal(3))],
            ["bucket"],
            [AggregateSpec("COUNT", None, "n")],
        ).rows()
        assert sorted((row["bucket"], row["n"]) for row in out) == [
            (0, 4), (1, 3), (2, 3),
        ]

    def test_spill_externalization(self):
        rows = [{"g": i, "v": i} for i in range(2000)]
        operator = GroupByHashOperator(
            source(rows, ["g", "v"], block_rows=200),
            [C("g")],
            ["g"],
            [AggregateSpec("SUM", C("v"), "s"), AggregateSpec("COUNT", None, "n")],
            max_groups=100,
        )
        out = operator.rows()
        assert operator.spilled
        assert len(out) == 2000
        assert all(row["s"] == row["g"] and row["n"] == 1 for row in out)

    def test_spill_with_distinct_raises(self):
        rows = [{"g": i, "v": i} for i in range(300)]
        operator = GroupByHashOperator(
            source(rows, ["g", "v"]),
            [C("g")],
            ["g"],
            [AggregateSpec("COUNT", C("v"), "n", distinct=True)],
            max_groups=10,
        )
        with pytest.raises(ExecutionError):
            operator.rows()

    def test_merge_partials_mode(self):
        partials = [
            {"g": 1, "n": 3, "s": 10},
            {"g": 1, "n": 2, "s": 5},
            {"g": 2, "n": 1, "s": 7},
        ]
        out = GroupByHashOperator(
            source(partials, ["g", "n", "s"]),
            [C("g")],
            ["g"],
            [
                AggregateSpec("COUNT", None, "n"),
                AggregateSpec("SUM", C("s"), "s"),
            ],
            merge_partials=True,
        ).rows()
        groups = by_key(out, "g")
        assert groups[1] == {"g": 1, "n": 5, "s": 15}
        assert groups[2] == {"g": 2, "n": 1, "s": 7}


class TestPipelinedGroupBy:
    def test_matches_hash_on_sorted_input(self):
        rows = sorted(
            [{"g": i % 5, "v": i} for i in range(50)], key=lambda r: r["g"]
        )
        aggregates = [
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("SUM", C("v"), "s"),
            AggregateSpec("AVG", C("v"), "a"),
        ]
        pipelined = GroupByPipelinedOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"], aggregates
        ).rows()
        hashed = GroupByHashOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"], aggregates
        ).rows()
        assert sorted(pipelined, key=lambda r: r["g"]) == sorted(
            hashed, key=lambda r: r["g"]
        )

    def test_streams_groups_in_order(self):
        rows = [{"g": g, "v": 1} for g in (1, 1, 2, 3, 3, 3)]
        out = GroupByPipelinedOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"],
            [AggregateSpec("COUNT", None, "n")],
        ).rows()
        assert out == [
            {"g": 1, "n": 2},
            {"g": 2, "n": 1},
            {"g": 3, "n": 3},
        ]

    def test_global_empty(self):
        out = GroupByPipelinedOperator(
            source([], ["v"]), [], [], [AggregateSpec("COUNT", None, "n")]
        ).rows()
        assert out == [{"n": 0}]


class TestPrepass:
    def test_prepass_plus_merge_equals_direct(self):
        rows = [{"g": i % 4, "v": i} for i in range(1000)]
        aggregates = [
            AggregateSpec("COUNT", None, "n"),
            AggregateSpec("SUM", C("v"), "s"),
        ]
        prepass = PrepassGroupByOperator(
            source(rows, ["g", "v"], block_rows=50),
            [C("g")], ["g"], aggregates, table_size=8,
        )
        final = GroupByHashOperator(
            prepass, [C("g")], ["g"], aggregates, merge_partials=True
        )
        direct = GroupByHashOperator(
            source(rows, ["g", "v"]), [C("g")], ["g"], aggregates
        )
        key = lambda row: row["g"]
        assert sorted(final.rows(), key=key) == sorted(direct.rows(), key=key)

    def test_prepass_reduces_rows_on_low_cardinality(self):
        rows = [{"g": i % 3, "v": 1} for i in range(5000)]
        prepass = PrepassGroupByOperator(
            source(rows, ["g", "v"], block_rows=500),
            [C("g")], ["g"], [AggregateSpec("COUNT", None, "n")],
        )
        list(prepass.blocks())
        assert prepass.rows_out_partial < prepass.rows_in / 10
        assert not prepass.shut_off

    def test_prepass_shuts_off_on_high_cardinality(self):
        rows = [{"g": i, "v": 1} for i in range(20000)]
        prepass = PrepassGroupByOperator(
            source(rows, ["g", "v"], block_rows=1000),
            [C("g")], ["g"], [AggregateSpec("COUNT", None, "n")],
            table_size=512,
        )
        out = list(prepass.blocks())
        assert prepass.shut_off
        # correctness preserved even after shutoff
        from repro.execution import SourceBlocks

        final = GroupByHashOperator(
            SourceBlocks(out),
            [C("g")], ["g"], [AggregateSpec("COUNT", None, "n")],
            merge_partials=True,
        ).rows()
        assert len(final) == 20000
        assert all(row["n"] == 1 for row in final)

    def test_prepass_rejects_unmergeable(self):
        with pytest.raises(ExecutionError):
            PrepassGroupByOperator(
                source([], ["g", "v"]), [C("g")], ["g"],
                [AggregateSpec("AVG", C("v"), "a")],
            )


class TestAggregateSpec:
    def test_unknown_function_rejected(self):
        with pytest.raises(ExecutionError):
            AggregateSpec("MEDIAN", C("v"), "m")

    def test_sum_requires_argument(self):
        with pytest.raises(ExecutionError):
            AggregateSpec("SUM", None, "s")

    def test_mergeability(self):
        assert AggregateSpec("COUNT", None, "n").mergeable
        assert AggregateSpec("SUM", C("v"), "s").mergeable
        assert not AggregateSpec("AVG", C("v"), "a").mergeable
        assert not AggregateSpec("COUNT", C("v"), "n", distinct=True).mergeable

    def test_merge_func(self):
        assert AggregateSpec("COUNT", None, "n").merge_func == "SUM"
        assert AggregateSpec("MIN", C("v"), "m").merge_func == "MIN"
