"""Tests for the distributed executor's data-movement paths:
co-located fragments, broadcast inner, resegment exchanges, and
two-phase aggregation."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution import AggregateSpec, ColumnRef, Literal
from repro.execution.executor import DistributedExecutor
from repro.execution.operators.join import JoinType
from repro.optimizer import GroupByNode, JoinNode, PhysJoin, ScanNode
from repro.optimizer import physical as P
from repro.projections import HashSegmentation, Replicated

C = ColumnRef
L = Literal


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER)],
            primary_key=("f_id",),
        )
    )
    db.create_table(
        TableDefinition(
            "dim", [ColumnDef("d_id", types.INTEGER), ColumnDef("name", types.VARCHAR)],
            primary_key=("d_id",),
        ),
        segmentation=Replicated(),
    )
    db.create_table(
        TableDefinition(
            "fact2",
            [ColumnDef("g_id", types.INTEGER), ColumnDef("link", types.INTEGER)],
            primary_key=("g_id",),
        )
    )
    db.load("fact", [{"f_id": i, "dim_id": i % 20} for i in range(600)])
    db.load("dim", [{"d_id": i, "name": f"d{i}"} for i in range(20)])
    db.load("fact2", [{"g_id": i, "link": i % 300} for i in range(600)])
    db.analyze_statistics()
    return db


def run_with_stats(db, plan_logical, optimizer="v2"):
    physical = db.planner(optimizer).plan(plan_logical)
    executor = DistributedExecutor(db.cluster, db.latest_epoch)
    rows = executor.run(physical)
    return rows, executor.stats, physical


class TestColocated:
    def test_fact_dim_no_data_movement(self, db):
        plan = JoinNode(
            ScanNode("fact", ["f_id", "dim_id"]),
            ScanNode("dim", ["d_id", "name"]),
            JoinType.INNER,
            [C("dim_id")], [C("d_id")],
        )
        rows, stats, physical = run_with_stats(db, plan)
        assert len(rows) == 600
        join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
        assert join.strategy == P.COLOCATED
        assert stats.rows_broadcast == 0
        assert stats.rows_resegmented == 0

    def test_colocated_on_segmentation_keys(self, db):
        # self-join of fact on its own segmentation key: co-located
        plan = JoinNode(
            ScanNode("fact", ["f_id", "dim_id"]),
            ScanNode("fact", ["f_id", "dim_id"],
                     rename={"f_id": "f2", "dim_id": "d2"}, alias="b"),
            JoinType.INNER,
            [C("f_id")], [C("f2")],
        )
        rows, stats, physical = run_with_stats(db, plan)
        assert len(rows) == 600
        join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
        assert join.strategy == P.COLOCATED
        assert stats.network_bytes == 0


class TestDataMovement:
    def fact_fact(self):
        return JoinNode(
            ScanNode("fact", ["f_id", "dim_id"]),
            ScanNode("fact2", ["g_id", "link"]),
            JoinType.INNER,
            [C("f_id")], [C("link")],
        )

    def test_v2_moves_data(self, db):
        rows, stats, physical = run_with_stats(db, self.fact_fact(), "v2")
        assert len(rows) == 600  # f_id 0..299 each match two fact2 rows
        join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
        assert join.strategy in (P.RESEGMENT, P.BROADCAST_INNER)
        moved = stats.rows_broadcast + stats.rows_resegmented
        assert moved > 0

    def test_starified_broadcasts(self, db):
        rows, stats, physical = run_with_stats(db, self.fact_fact(), "starified")
        assert len(rows) == 600
        join = next(n for n in physical.walk() if isinstance(n, PhysJoin))
        assert join.strategy == P.BROADCAST_INNER
        assert stats.rows_broadcast > 0

    def test_resegment_preserves_multiset(self, db):
        # force resegment by comparing against broadcast answer
        broadcast_rows, _, _ = run_with_stats(db, self.fact_fact(), "starified")
        v2_rows, _, _ = run_with_stats(db, self.fact_fact(), "v2")
        normalize = lambda rows: sorted(
            tuple(sorted(row.items())) for row in rows
        )
        assert normalize(broadcast_rows) == normalize(v2_rows)


class TestTwoPhaseAggregation:
    def test_local_complete_on_segmentation_keys(self, db):
        plan = GroupByNode(
            ScanNode("fact", ["f_id"]),
            [("f_id", C("f_id"))],
            [AggregateSpec("COUNT", None, "n")],
        )
        physical = db.planner("v2").plan(plan)
        group = next(
            n for n in physical.walk() if isinstance(n, P.PhysGroupBy)
        )
        assert group.local_complete  # grouped by the segmentation key
        rows = db.query(plan)
        assert len(rows) == 600

    def test_two_phase_with_prepass_otherwise(self, db):
        plan = GroupByNode(
            ScanNode("fact", ["dim_id"]),
            [("dim_id", C("dim_id"))],
            [AggregateSpec("COUNT", None, "n")],
        )
        physical = db.planner("v2").plan(plan)
        group = next(
            n for n in physical.walk() if isinstance(n, P.PhysGroupBy)
        )
        assert not group.local_complete
        assert group.prepass
        rows = db.query(plan)
        assert len(rows) == 20
        assert all(row["n"] == 30 for row in rows)

    def test_avg_disables_prepass_but_works(self, db):
        plan = GroupByNode(
            ScanNode("fact", ["dim_id", "f_id"]),
            [("dim_id", C("dim_id"))],
            [AggregateSpec("AVG", C("f_id"), "mean")],
        )
        physical = db.planner("v2").plan(plan)
        group = next(
            n for n in physical.walk() if isinstance(n, P.PhysGroupBy)
        )
        assert not group.prepass  # AVG is not mergeable
        rows = db.query(plan)
        assert len(rows) == 20

    def test_global_aggregate_never_prepassed(self, db):
        plan = GroupByNode(
            ScanNode("fact", ["f_id"]),
            [],
            [AggregateSpec("COUNT", None, "n")],
        )
        physical = db.planner("v2").plan(plan)
        group = next(
            n for n in physical.walk() if isinstance(n, P.PhysGroupBy)
        )
        assert not group.prepass
        assert db.query(plan) == [{"n": 600}]


class TestPendingInsertsRouting:
    def test_pending_rows_visible_once_per_fragment(self, db):
        session = db.session()
        session.insert("fact", [{"f_id": 9999, "dim_id": 1}])
        plan = GroupByNode(
            ScanNode("fact", ["f_id"]),
            [],
            [AggregateSpec("COUNT", None, "n")],
        )
        assert session.query(plan) == [{"n": 601}]  # exactly once
        session.rollback()

    def test_pending_rows_in_join(self, db):
        session = db.session()
        session.insert("fact", [{"f_id": 9999, "dim_id": 1}])
        plan = JoinNode(
            ScanNode("fact", ["f_id", "dim_id"]),
            ScanNode("dim", ["d_id", "name"]),
            JoinType.INNER,
            [C("dim_id")], [C("d_id")],
        )
        rows = session.query(plan)
        assert len(rows) == 601
        session.rollback()
