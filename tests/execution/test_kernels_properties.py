"""Seeded property tests for the vectorized kernel primitives.

Each property pits a kernel shortcut against the obvious decoded
oracle over hundreds of randomly drawn inputs:

* RLE run arithmetic — folding ``(value, length)`` runs into an
  accumulator via :meth:`Accumulator.add_run` must equal folding the
  decoded values one at a time, for every built-in aggregate;
* dictionary comparisons — evaluating a predicate once per dictionary
  entry and broadcasting through the codes must select exactly the
  rows a per-row evaluation selects, for every comparison operator,
  IN lists and LIKE;
* selection algebra — intersect/union/invert on the dual mask/ranges
  representation must obey the boolean-algebra laws, and ``apply``
  must equal compress-by-mask on every vector kind.

Everything is driven by fixed-seed ``random.Random`` instances, so a
failure replays exactly.
"""

import math
import random

import pytest

from repro.execution.aggregates import Accumulator
from repro.execution.expressions import (
    ColumnRef,
    Comparison,
    InList,
    Like,
    Literal,
    Not,
)
from repro.execution.kernels import (
    DictVector,
    PlainVector,
    RleVector,
    Selection,
)
from repro.execution.kernels.predicates import compile_kernel_predicate

COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


def _random_runs(rng, max_runs=12):
    """Random NULL-free RLE runs (values ints or floats)."""
    runs = []
    for _ in range(1 + rng.randrange(max_runs)):
        value = (
            rng.randrange(-5, 20)
            if rng.random() < 0.5
            else round(rng.uniform(-10.0, 10.0), 3)
        )
        runs.append((value, 1 + rng.randrange(9)))
    return runs


def _final_close(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


# -- RLE run arithmetic --------------------------------------------------

@pytest.mark.parametrize("func", AGG_FUNCS)
def test_add_run_matches_decoded_oracle(func):
    rng = random.Random(4001)
    for _ in range(200):
        runs = _random_runs(rng)
        vector = RleVector(runs)
        kernel = Accumulator(func, distinct=False)
        for value, length in runs:
            kernel.add_run(value, length)
        oracle = Accumulator(func, distinct=False)
        for value in vector.values():
            oracle.add(value)
        assert _final_close(kernel.final(), oracle.final()), (
            f"{func} over runs {runs}: "
            f"kernel={kernel.final()} oracle={oracle.final()}"
        )


@pytest.mark.parametrize("func", AGG_FUNCS)
def test_add_bulk_matches_add_loop(func):
    rng = random.Random(4002)
    for _ in range(200):
        values = [
            None if rng.random() < 0.25 else round(rng.uniform(-50, 50), 2)
            for _ in range(rng.randrange(30))
        ]
        null_count = sum(1 for v in values if v is None)
        bulk = Accumulator(func, distinct=False)
        bulk.add_bulk(values, null_count=null_count)
        unknown = Accumulator(func, distinct=False)
        unknown.add_bulk(values)  # null_count=None: must self-filter
        loop = Accumulator(func, distinct=False)
        for value in values:
            loop.add(value)
        assert _final_close(bulk.final(), loop.final())
        assert _final_close(unknown.final(), loop.final())


def test_rle_vector_run_decode_round_trip():
    rng = random.Random(4003)
    for _ in range(100):
        runs = _random_runs(rng)
        vector = RleVector(runs)
        decoded = [v for value, length in runs for v in [value] * length]
        assert vector.values() == decoded
        assert vector.row_count == len(decoded)
        assert list(vector) == decoded


# -- dictionary-coded predicates -----------------------------------------

WORDS = ("alpha", "beta", "delta", "echo", "golf", "hotel", "kilo", "zulu")


def _random_dict_vector(rng):
    entries = list(rng.sample(WORDS, 2 + rng.randrange(5)))
    codes = [rng.randrange(len(entries)) for _ in range(rng.randrange(1, 60))]
    return DictVector(codes, entries)


def _kernel_positions(expr, column, row_count):
    predicate = compile_kernel_predicate(expr)
    assert predicate is not None, f"{expr!r} should compile to a kernel"
    selection = predicate({"c": column}, row_count)
    return selection.positions()


@pytest.mark.parametrize("op", COMPARISON_OPS)
def test_dict_comparison_matches_row_oracle(op):
    rng = random.Random(4100 + COMPARISON_OPS.index(op))
    for _ in range(120):
        vector = _random_dict_vector(rng)
        constant = rng.choice(WORDS)
        expr = Comparison(op, ColumnRef("c"), Literal(constant))
        got = _kernel_positions(expr, vector, vector.row_count)
        oracle = [
            i
            for i, v in enumerate(vector.values())
            if expr.evaluate_row({"c": v})
        ]
        assert got == oracle, (
            f"c {op} {constant!r} over {vector.values()}: "
            f"kernel={got} oracle={oracle}"
        )
        negated = Not(expr)
        got_not = _kernel_positions(negated, vector, vector.row_count)
        oracle_not = [
            i
            for i, v in enumerate(vector.values())
            if negated.evaluate_row({"c": v})
        ]
        assert got_not == oracle_not


def test_dict_in_list_and_like_match_row_oracle():
    rng = random.Random(4200)
    for _ in range(120):
        vector = _random_dict_vector(rng)
        options = list(rng.sample(WORDS, 1 + rng.randrange(3)))
        pattern = rng.choice(["%a", "a%", "%l%", "____", "z_lu"])
        for expr in (
            InList(ColumnRef("c"), options),
            Not(InList(ColumnRef("c"), options)),
            Like(ColumnRef("c"), pattern),
            Like(ColumnRef("c"), pattern, negated=True),
        ):
            got = _kernel_positions(expr, vector, vector.row_count)
            oracle = [
                i
                for i, v in enumerate(vector.values())
                if expr.evaluate_row({"c": v})
            ]
            assert got == oracle, f"{expr!r} over {vector.values()}"


def test_rle_predicate_matches_row_oracle():
    rng = random.Random(4300)
    for _ in range(120):
        runs = _random_runs(rng)
        vector = RleVector(runs)
        constant = rng.randrange(-5, 20)
        op = rng.choice(COMPARISON_OPS)
        expr = Comparison(op, ColumnRef("c"), Literal(constant))
        got = _kernel_positions(expr, vector, vector.row_count)
        oracle = [
            i
            for i, v in enumerate(vector.values())
            if expr.evaluate_row({"c": v})
        ]
        assert got == oracle


# -- selection algebra ---------------------------------------------------

def _random_selection(rng, n):
    mask = [rng.random() < rng.choice([0.1, 0.5, 0.9]) for _ in range(n)]
    return Selection.from_mask(mask), mask


def test_selection_boolean_algebra():
    rng = random.Random(4400)
    for _ in range(200):
        n = rng.randrange(1, 80)
        a, mask_a = _random_selection(rng, n)
        b, mask_b = _random_selection(rng, n)
        both = a.intersect(b)
        either = a.union(b)
        assert both.mask() == [x and y for x, y in zip(mask_a, mask_b)]
        assert either.mask() == [x or y for x, y in zip(mask_a, mask_b)]
        assert both.count == sum(both.mask())
        assert either.count == sum(either.mask())
        # invert round trip and complement laws
        assert a.invert().invert().mask() == mask_a
        assert a.intersect(a.invert()).is_empty
        assert a.union(a.invert()).is_all
        # De Morgan on the concrete lattice
        assert both.invert().mask() == a.invert().union(b.invert()).mask()


def test_selection_ranges_and_mask_agree():
    rng = random.Random(4500)
    for _ in range(200):
        n = rng.randrange(1, 60)
        selection, mask = _random_selection(rng, n)
        positions = [i for i, keep in enumerate(mask) if keep]
        assert selection.positions() == positions
        rebuilt = Selection.from_ranges(
            [(i, i + 1) for i in positions], n
        )
        assert rebuilt.mask() == mask
        assert rebuilt.positions() == positions


def test_selection_apply_is_compress_on_every_vector_kind():
    rng = random.Random(4600)
    for _ in range(150):
        runs = _random_runs(rng)
        rle = RleVector(runs)
        n = rle.row_count
        selection, mask = _random_selection(rng, n)
        expected = [v for v, keep in zip(rle.values(), mask) if keep]
        from repro.execution.kernels import as_list

        assert as_list(selection.apply(rle)) == expected
        plain = PlainVector(list(rle.values()), 0)
        assert as_list(selection.apply(plain)) == expected
        entries = sorted({str(v) for v in rle.values()})
        index = {e: i for i, e in enumerate(entries)}
        dv = DictVector([index[str(v)] for v in rle.values()], entries)
        assert as_list(selection.apply(dv)) == [str(v) for v in expected]
        # applying to a plain Python list must also work
        assert selection.apply(list(rle.values())) == expected


def _random_ranges(rng, n):
    """Sorted disjoint [start, stop) intervals over n rows."""
    ranges = []
    cursor = 0
    while cursor < n:
        start = cursor + rng.randrange(3)
        stop = start + 1 + rng.randrange(5)
        if start >= n:
            break
        ranges.append((start, min(stop, n)))
        cursor = stop + 1
    return ranges


def test_selection_apply_preserves_encoding():
    """Range selections keep RLE runs; every selection keeps the
    dictionary — and the survivors always decode identically."""
    rng = random.Random(4700)
    for _ in range(100):
        runs = _random_runs(rng)
        rle = RleVector(runs)
        n = rle.row_count
        selection = Selection.from_ranges(_random_ranges(rng, n), n)
        mask = selection.mask()
        expected = [v for v, keep in zip(rle.values(), mask) if keep]
        out = selection.apply(rle)
        if not selection.is_all and not selection.is_empty:
            assert isinstance(out, RleVector)
            # runs stay canonical: no zero-length or mergeable neighbors
            assert all(length > 0 for _, length in out.runs)
            assert all(
                a[0] != b[0] for a, b in zip(out.runs, out.runs[1:])
            )
        from repro.execution.kernels import as_list

        assert as_list(out) == expected
        dv = _random_dict_vector(rng)
        sel2, mask2 = _random_selection(rng, dv.row_count)
        out2 = sel2.apply(dv)
        expected2 = [v for v, keep in zip(dv.values(), mask2) if keep]
        if not sel2.is_empty and not sel2.is_all:
            assert isinstance(out2, DictVector)
            assert out2.entries == dv.entries
        assert as_list(out2) == expected2
