"""Tests for the streaming operators: filter, expr-eval, sort, limit,
distinct, analytic, exchange, unions and row blocks."""

import pytest

from repro.errors import ExecutionError
from repro.execution import (
    AnalyticOperator,
    ColumnRef,
    DistinctOperator,
    Exchange,
    ExprEvalOperator,
    FilterOperator,
    LimitOperator,
    Literal,
    ParallelUnionOperator,
    RecvOperator,
    RowBlock,
    RowSource,
    SendOperator,
    SortKey,
    SortOperator,
    StorageUnionOperator,
    UnionAllOperator,
    WindowSpec,
    blocks_to_rows,
)

C = ColumnRef
L = Literal


def source(rows, columns=None, block_rows=3):
    columns = columns or sorted(rows[0]) if rows else ["a"]
    return RowSource(rows, columns, block_rows=block_rows)


class TestRowBlock:
    def test_filter_with_nulls(self):
        block = RowBlock(columns={"a": [1, 2, 3]}, row_count=3)
        assert block.filter([True, None, False]).column("a") == [1]

    def test_concat_and_slices(self):
        a = RowBlock(columns={"x": [1, 2]}, row_count=2)
        b = RowBlock(columns={"x": [3]}, row_count=1)
        merged = RowBlock.concat([a, b])
        assert merged.column("x") == [1, 2, 3]
        assert [s.row_count for s in merged.slices(2)] == [2, 1]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ExecutionError):
            RowBlock(columns={"a": [1], "b": [1, 2]}, row_count=1)

    def test_rename_and_with_column(self):
        block = RowBlock(columns={"a": [1]}, row_count=1)
        assert block.rename({"a": "b"}).column_names == ["b"]
        assert block.with_column("c", [9]).column("c") == [9]


class TestFilterProject:
    def test_filter(self):
        rows = [{"a": i} for i in range(10)]
        out = FilterOperator(source(rows), C("a") >= L(7)).rows()
        assert [row["a"] for row in out] == [7, 8, 9]

    def test_expr_eval(self):
        rows = [{"a": 2, "b": 3}]
        out = ExprEvalOperator(
            source(rows, ["a", "b"]), {"total": C("a") + C("b"), "a": C("a")}
        ).rows()
        assert out == [{"total": 5, "a": 2}]

    def test_filter_drops_empty_blocks(self):
        rows = [{"a": 0}] * 9
        operator = FilterOperator(source(rows), C("a") > L(0))
        assert list(operator.blocks()) == []


class TestSort:
    def test_in_memory_sort(self):
        rows = [{"a": value} for value in (5, 1, 4, 2, 3)]
        out = SortOperator(source(rows), [SortKey(C("a"))]).rows()
        assert [row["a"] for row in out] == [1, 2, 3, 4, 5]

    def test_descending(self):
        rows = [{"a": value} for value in (1, 3, 2)]
        out = SortOperator(source(rows), [SortKey(C("a"), ascending=False)]).rows()
        assert [row["a"] for row in out] == [3, 2, 1]

    def test_multi_key(self):
        rows = [
            {"a": 1, "b": 2},
            {"a": 1, "b": 1},
            {"a": 0, "b": 9},
        ]
        out = SortOperator(
            source(rows, ["a", "b"]), [SortKey(C("a")), SortKey(C("b"))]
        ).rows()
        assert out == [{"a": 0, "b": 9}, {"a": 1, "b": 1}, {"a": 1, "b": 2}]

    def test_nulls_first(self):
        rows = [{"a": 2}, {"a": None}, {"a": 1}]
        out = SortOperator(source(rows), [SortKey(C("a"))]).rows()
        assert [row["a"] for row in out] == [None, 1, 2]

    def test_external_sort_spills(self):
        rows = [{"a": value} for value in range(1000, 0, -1)]
        operator = SortOperator(
            source(rows, block_rows=100),
            [SortKey(C("a"))],
            max_buffered_rows=50,
        )
        out = operator.rows()
        assert [row["a"] for row in out] == list(range(1, 1001))
        assert operator.spilled_runs > 1

    def test_limit_hint(self):
        rows = [{"a": value} for value in range(100, 0, -1)]
        out = SortOperator(
            source(rows), [SortKey(C("a"))], limit_hint=3
        ).rows()
        assert [row["a"] for row in out] == [1, 2, 3]

    def test_external_sort_with_limit(self):
        rows = [{"a": value} for value in range(500, 0, -1)]
        out = SortOperator(
            source(rows, block_rows=50),
            [SortKey(C("a"))],
            max_buffered_rows=40,
            limit_hint=5,
        ).rows()
        assert [row["a"] for row in out] == [1, 2, 3, 4, 5]


class TestLimitDistinct:
    def test_limit(self):
        rows = [{"a": i} for i in range(10)]
        assert len(LimitOperator(source(rows), 4).rows()) == 4

    def test_limit_offset(self):
        rows = [{"a": i} for i in range(10)]
        out = LimitOperator(source(rows), 3, offset=5).rows()
        assert [row["a"] for row in out] == [5, 6, 7]

    def test_limit_stops_early(self):
        rows = [{"a": i} for i in range(1000)]
        upstream = source(rows, block_rows=10)
        LimitOperator(upstream, 5).rows()
        assert upstream.rows_produced <= 10

    def test_distinct(self):
        rows = [{"a": i % 3} for i in range(9)]
        out = DistinctOperator(source(rows)).rows()
        assert sorted(row["a"] for row in out) == [0, 1, 2]

    def test_union_all(self):
        a = source([{"x": 1}], ["x"])
        b = source([{"x": 2}], ["x"])
        assert len(UnionAllOperator([a, b]).rows()) == 2


class TestAnalytic:
    def rows(self):
        return [
            {"dept": "a", "salary": 100},
            {"dept": "a", "salary": 300},
            {"dept": "a", "salary": 200},
            {"dept": "b", "salary": 50},
            {"dept": "b", "salary": 50},
        ]

    def test_row_number(self):
        spec = WindowSpec(
            "ROW_NUMBER", None, "rn",
            partition_by=[C("dept")], order_by=[(C("salary"), True)],
        )
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        by_dept = {}
        for row in out:
            by_dept.setdefault(row["dept"], []).append(row["rn"])
        assert by_dept == {"a": [1, 2, 3], "b": [1, 2]}

    def test_rank_with_ties(self):
        spec = WindowSpec(
            "RANK", None, "r", partition_by=[C("dept")],
            order_by=[(C("salary"), True)],
        )
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        b_ranks = [row["r"] for row in out if row["dept"] == "b"]
        assert b_ranks == [1, 1]

    def test_dense_rank(self):
        spec = WindowSpec(
            "DENSE_RANK", None, "r", order_by=[(C("salary"), True)]
        )
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        assert [row["r"] for row in out] == [1, 1, 2, 3, 4]

    def test_partition_sum(self):
        spec = WindowSpec("SUM", C("salary"), "total", partition_by=[C("dept")])
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        totals = {row["dept"]: row["total"] for row in out}
        assert totals == {"a": 600, "b": 100}

    def test_running_sum(self):
        spec = WindowSpec(
            "SUM", C("salary"), "running",
            partition_by=[C("dept")], order_by=[(C("salary"), True)],
        )
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        a_running = [row["running"] for row in out if row["dept"] == "a"]
        assert a_running == [100, 300, 600]

    def test_running_peers_share_value(self):
        spec = WindowSpec(
            "COUNT", None, "c", partition_by=[C("dept")],
            order_by=[(C("salary"), True)],
        )
        out = AnalyticOperator(source(self.rows(), ["dept", "salary"]), spec).rows()
        b_counts = [row["c"] for row in out if row["dept"] == "b"]
        assert b_counts == [2, 2]  # tied salaries are peers

    def test_ranking_requires_order(self):
        with pytest.raises(ExecutionError):
            WindowSpec("ROW_NUMBER", None, "rn")


class TestExchange:
    def test_broadcast(self):
        exchange = Exchange(destinations=3)
        sender = SendOperator(
            source([{"a": 1}, {"a": 2}], ["a"]), exchange, broadcast=True
        )
        outs = [
            blocks_to_rows(RecvOperator(exchange, dest, [sender]).blocks())
            for dest in range(3)
        ]
        assert all(len(rows) == 2 for rows in outs)

    def test_segmented_send_partitions_rows(self):
        exchange = Exchange(destinations=4)
        rows = [{"a": i} for i in range(100)]
        sender = SendOperator(source(rows, ["a"]), exchange, segment_exprs=[C("a")])
        received = [
            blocks_to_rows(RecvOperator(exchange, dest, [sender]).blocks())
            for dest in range(4)
        ]
        assert sum(len(r) for r in received) == 100
        # same key always lands on the same destination
        exchange2 = Exchange(destinations=4)
        sender2 = SendOperator(source(rows, ["a"]), exchange2, segment_exprs=[C("a")])
        received2 = [
            blocks_to_rows(RecvOperator(exchange2, dest, [sender2]).blocks())
            for dest in range(4)
        ]
        assert received == received2

    def test_sender_runs_once(self):
        exchange = Exchange(destinations=2)
        sender = SendOperator(
            source([{"a": 1}], ["a"]), exchange, broadcast=True
        )
        a = blocks_to_rows(RecvOperator(exchange, 0, [sender]).blocks())
        b = blocks_to_rows(RecvOperator(exchange, 1, [sender]).blocks())
        assert len(a) == 1 and len(b) == 1  # not duplicated by second run

    def test_bytes_accounted(self):
        exchange = Exchange(destinations=1)
        sender = SendOperator(
            source([{"a": "hello"}], ["a"]), exchange, segment_exprs=[C("a")]
        )
        sender.run()
        assert exchange.bytes_sent > 0

    def test_send_needs_exactly_one_mode(self):
        exchange = Exchange(destinations=1)
        with pytest.raises(ExecutionError):
            SendOperator(source([{"a": 1}], ["a"]), exchange)


class TestUnions:
    def test_storage_union_resegments_completely(self):
        rows = [{"k": i % 7, "v": i} for i in range(100)]
        union = StorageUnionOperator(
            [source(rows[:50], ["k", "v"]), source(rows[50:], ["k", "v"])],
            resegment_exprs=[C("k")],
            fanout=3,
        )
        pipes = [union.pipeline_source(i) for i in range(3)]
        seen_keys = []
        total = 0
        for pipe in pipes:
            keys = {row["k"] for row in pipe.rows()}
            seen_keys.append(keys)
            total += sum(1 for _ in ())
        # each key appears in exactly one pipeline
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (seen_keys[i] & seen_keys[j])

    def test_storage_union_plain(self):
        union = StorageUnionOperator(
            [source([{"a": 1}], ["a"]), source([{"a": 2}], ["a"])]
        )
        assert len(union.rows()) == 2

    def test_parallel_union_combines(self):
        pipes = [source([{"a": i}], ["a"]) for i in range(4)]
        out = ParallelUnionOperator(pipes, threads=1).rows()
        assert [row["a"] for row in out] == [0, 1, 2, 3]

    def test_parallel_union_threads(self):
        pipes = [source([{"a": i}], ["a"]) for i in range(4)]
        out = ParallelUnionOperator(pipes, threads=4).rows()
        assert [row["a"] for row in out] == [0, 1, 2, 3]


class TestExplain:
    def test_tree_rendering(self):
        plan = LimitOperator(
            FilterOperator(source([{"a": 1}], ["a"]), C("a") > L(0)), 1
        )
        text = plan.explain()
        assert "Limit" in text and "Filter" in text and "RowSource" in text
        assert text.index("Limit") < text.index("Filter")
