"""Tests for the tuple mover: moveout, mergeout, strata and purging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.projections import super_projection
from repro.storage import StorageManager
from repro.tuple_mover import MergePolicy, TupleMover, plan_merges


@pytest.fixture
def table():
    return TableDefinition(
        "t",
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


@pytest.fixture
def setup(tmp_path, table):
    projection = super_projection(table, sort_order=["k"])
    manager = StorageManager(str(tmp_path / "n0"), wos_capacity=100_000)
    manager.register_projection(projection, table)
    mover = TupleMover(manager, MergePolicy(base_size=512, multiplier=4, min_inputs=2))
    return manager, mover


NAME = "t_super"


def rows_of(values):
    return [{"k": value, "v": f"v{value % 3}"} for value in values]


class TestStrata:
    def test_stratum_boundaries(self):
        policy = MergePolicy(base_size=1024, multiplier=4)
        assert policy.stratum_of(0) == 0
        assert policy.stratum_of(1023) == 0
        assert policy.stratum_of(1024) == 1
        assert policy.stratum_of(4096) == 2
        assert policy.stratum_of(4095) == 1

    def test_stratum_count_is_logarithmic(self):
        policy = MergePolicy(base_size=1024, multiplier=4, max_container_bytes=1 << 40)
        assert policy.stratum_count() < 20

    def test_plan_merges_same_stratum_only(self):
        policy = MergePolicy(base_size=1024, multiplier=4, min_inputs=2)
        # two tiny + one huge: only the tiny pair merges
        merges = plan_merges([(1, 10), (2, 20), (3, 10**6)], policy)
        assert merges == [[1, 2]]

    def test_plan_merges_respects_max_inputs(self):
        policy = MergePolicy(base_size=1024, min_inputs=2, max_inputs=3)
        merges = plan_merges([(i, 10) for i in range(7)], policy)
        assert [len(group) for group in merges] == [3, 3]

    def test_no_merge_for_single_container(self):
        policy = MergePolicy()
        assert plan_merges([(1, 10)], policy) == []


class TestMoveout:
    def test_moveout_drains_wos(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(50)), epoch=1)
        assert manager.wos_row_count(NAME) == 50
        created = mover.moveout(NAME)
        assert len(created) == 1
        assert manager.wos_row_count(NAME) == 0
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 50

    def test_moveout_preserves_epochs(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(10)), epoch=1)
        manager.insert(NAME, rows_of(range(100, 110)), epoch=2)
        mover.moveout(NAME)
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 10
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 20

    def test_moveout_translates_delete_vectors(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(10)), epoch=1)
        manager.delete_where(NAME, lambda r: r["k"] < 3, commit_epoch=2, snapshot_epoch=1)
        mover.moveout(NAME)
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 7
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 10

    def test_moveout_empty_wos_noop(self, setup):
        manager, mover = setup
        assert mover.moveout(NAME) == []

    def test_moveout_output_is_sorted(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of([5, 1, 9, 3]), epoch=1)
        mover.moveout(NAME)
        rows = manager.read_visible_rows(NAME, epoch=1)
        assert [row["k"] for row in rows] == [1, 3, 5, 9]


class TestMergeout:
    def test_merge_reduces_containers(self, setup):
        manager, mover = setup
        for batch in range(4):
            manager.insert(
                NAME, rows_of(range(batch * 10, batch * 10 + 10)),
                epoch=1, direct_to_ros=True,
            )
        assert manager.container_count(NAME) == 4
        result = mover.mergeout(NAME)
        assert result.merged_groups >= 1
        assert manager.container_count(NAME) < 4
        rows = manager.read_visible_rows(NAME, epoch=1)
        assert sorted(row["k"] for row in rows) == list(range(40))

    def test_merge_output_sorted(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of([1, 5, 9]), epoch=1, direct_to_ros=True)
        manager.insert(NAME, rows_of([2, 6, 10]), epoch=1, direct_to_ros=True)
        mover.mergeout(NAME)
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        assert container.read_column("k") == [1, 2, 5, 6, 9, 10]

    def test_merge_carries_unpurged_deletes(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(10)), epoch=1, direct_to_ros=True)
        manager.insert(NAME, rows_of(range(10, 20)), epoch=1, direct_to_ros=True)
        manager.delete_where(NAME, lambda r: r["k"] == 5, 2, 1)
        mover.mergeout(NAME, ahm=0)  # AHM before the delete: keep it
        assert len(manager.read_visible_rows(NAME, epoch=2)) == 19
        assert len(manager.read_visible_rows(NAME, epoch=1)) == 20

    def test_merge_purges_pre_ahm_deletes(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(10)), epoch=1, direct_to_ros=True)
        manager.insert(NAME, rows_of(range(10, 20)), epoch=1, direct_to_ros=True)
        manager.delete_where(NAME, lambda r: r["k"] < 5, 2, 1)
        result = mover.mergeout(NAME, ahm=2)
        assert result.purged_rows == 5
        state = manager.storage(NAME)
        container = next(iter(state.containers.values()))
        assert container.row_count == 15

    def test_merge_respects_partition_boundaries(self, tmp_path):
        table = TableDefinition(
            "p",
            [ColumnDef("month", types.INTEGER), ColumnDef("k", types.INTEGER)],
            partition_by=lambda row: row["month"],
        )
        projection = super_projection(table, sort_order=["k"])
        manager = StorageManager(str(tmp_path / "n"))
        manager.register_projection(projection, table)
        mover = TupleMover(manager, MergePolicy(base_size=512, min_inputs=2))
        for _ in range(2):
            manager.insert(
                "p_super",
                [{"month": 1, "k": 1}, {"month": 2, "k": 2}],
                epoch=1,
                direct_to_ros=True,
            )
        assert manager.container_count("p_super") == 4
        mover.mergeout("p_super")
        # merged within partitions only -> exactly 2 containers remain
        assert manager.container_count("p_super") == 2
        keys = {
            c.meta.partition_key
            for c in manager.storage("p_super").containers.values()
        }
        assert keys == {1, 2}

    def test_read_once_write_once(self, setup):
        manager, mover = setup
        manager.insert(NAME, rows_of(range(10)), epoch=1, direct_to_ros=True)
        manager.insert(NAME, rows_of(range(10, 20)), epoch=1, direct_to_ros=True)
        mover.mergeout(NAME)
        assert mover.stats.rows_read == 20
        assert mover.stats.rows_written == 20

    def test_run_once_converges(self, setup):
        manager, mover = setup
        for batch in range(8):
            manager.insert(
                NAME, rows_of(range(batch * 5, batch * 5 + 5)),
                epoch=1, direct_to_ros=True,
            )
        mover.run_once()
        assert manager.container_count(NAME) <= 2
        rows = manager.read_visible_rows(NAME, epoch=1)
        assert sorted(row["k"] for row in rows) == list(range(40))


class TestTupleMoverProperties:
    @given(
        batches=st.lists(
            st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=20),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_no_tuples_lost_or_duplicated(self, tmp_path_factory, batches):
        table = TableDefinition(
            "h", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)]
        )
        projection = super_projection(table, sort_order=["k"])
        root = str(tmp_path_factory.mktemp("tm"))
        manager = StorageManager(root, wos_capacity=10)
        manager.register_projection(projection, table)
        mover = TupleMover(manager, MergePolicy(base_size=256, min_inputs=2))
        expected = []
        for epoch, batch in enumerate(batches, start=1):
            rows = rows_of(batch)
            expected.extend(batch)
            manager.insert("h_super", rows, epoch=epoch)
            mover.moveout("h_super")
            mover.mergeout("h_super")
        final = manager.read_visible_rows("h_super", epoch=len(batches))
        assert sorted(row["k"] for row in final) == sorted(expected)
