"""Tests for the C-Store baseline engine and benchmark workload:
both engines must return identical answers on all seven queries."""

import pytest

from repro import Database
from repro.cstore import CStoreDatabase, CStoreEngine
from repro.workloads import cstore_benchmark as bench


@pytest.fixture(scope="module")
def data():
    return bench.generate(scale=0.02, seed=3)


@pytest.fixture(scope="module")
def cstore(tmp_path_factory, data):
    db = CStoreDatabase(str(tmp_path_factory.mktemp("cstore")))
    db.create_table(bench.lineitem_table())
    db.create_table(bench.orders_table())
    db.load("lineitem", data.lineitem)
    db.load("orders", data.orders)
    return CStoreEngine(db)


@pytest.fixture(scope="module")
def vertica(tmp_path_factory, data):
    db = Database(str(tmp_path_factory.mktemp("vertica")), node_count=1)
    db.create_table(bench.lineitem_table())
    db.create_table(bench.orders_table())
    db.load("lineitem", data.lineitem, direct_to_ros=True)
    db.load("orders", data.orders, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db


def normalize(rows):
    return sorted(
        tuple(sorted((k, round(v, 6) if isinstance(v, float) else v)
                     for k, v in row.items()))
        for row in rows
    )


class TestStorage:
    def test_rows_sorted_by_first_column(self, cstore):
        table = cstore.db.table("lineitem")
        dates = table.reader("l_shipdate").read_all()
        assert dates == sorted(dates)

    def test_positional_fetch(self, cstore):
        table = cstore.db.table("orders")
        row0 = next(table.iter_rows(["o_orderkey", "o_orderdate"]))
        assert table.fetch_value("o_orderkey", 0) == row0["o_orderkey"]

    def test_size_accounting(self, cstore):
        assert cstore.db.total_data_bytes() > 0


@pytest.mark.parametrize("spec", bench.queries(), ids=lambda s: s.name)
class TestQueryEquivalence:
    def test_cstore_matches_reference(self, spec, cstore, data):
        assert normalize(cstore.run(spec)) == normalize(
            bench.reference_answer(spec, data)
        )

    def test_vertica_matches_reference(self, spec, vertica, data):
        assert normalize(vertica.sql(spec.sql)) == normalize(
            bench.reference_answer(spec, data)
        )


class TestWorkloadGenerators:
    def test_deterministic(self):
        a = bench.generate(scale=0.01, seed=5)
        b = bench.generate(scale=0.01, seed=5)
        assert a.lineitem == b.lineitem and a.orders == b.orders

    def test_scale_controls_size(self):
        small = bench.generate(scale=0.01)
        large = bench.generate(scale=0.02)
        assert large.orders_rows == 2 * small.orders_rows

    def test_meter_generator_shape(self):
        from repro.workloads import meters

        spec = meters.spec_for_rows(5000)
        rows = list(meters.generate(spec))
        assert abs(len(rows) - 5000) < 5000  # same order of magnitude
        metrics = {row["metric"] for row in rows}
        assert len(metrics) == spec.metrics
        # periodic timestamps per metric
        by_metric: dict = {}
        for row in rows:
            by_metric.setdefault(row["metric"], set()).add(row["ts"])
        for stamps in by_metric.values():
            ordered = sorted(stamps)
            deltas = {b - a for a, b in zip(ordered, ordered[1:])}
            assert len(deltas) <= 1  # one interval per metric

    def test_random_integers(self):
        from repro.workloads import random_integers

        values = random_integers.generate(1000, seed=2)
        assert len(values) == 1000
        assert all(1 <= value <= 10_000_000 for value in values)
        sizes = random_integers.table4a_rows(values)
        assert sizes["gzip+sort"] < sizes["gzip"] < sizes["raw"]
