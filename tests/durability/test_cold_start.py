"""Cold-start tests: ``Database.open`` replays checkpoint + journal
tail against the scavenged on-disk ROS state."""

import pytest

from repro import types
from repro.cluster import create_backup, restore_backup
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import DurabilityError, InjectedFaultError
from repro.faults import FaultPlan


def table(name="t"):
    return TableDefinition(
        name,
        [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)],
        primary_key=("k",),
    )


def rows(n, start=0):
    return [{"k": i, "v": f"v{i % 7}"} for i in range(start, start + n)]


def build(path, **kwargs):
    kwargs.setdefault("node_count", 3)
    kwargs.setdefault("k_safety", 1)
    db = Database(str(path), **kwargs)
    db.create_table(table(), sort_order=["k"])
    return db


def capture_rows(raw_rows):
    """Rows in the shape :func:`capture` reports them."""
    return sorted(tuple(sorted(row.items())) for row in raw_rows)


def capture(db):
    """Full visible state: every table's rows plus the catalog."""
    epoch = db.latest_epoch
    state = {"tables": sorted(db.cluster.catalog.tables)}
    for name in state["tables"]:
        state[name] = sorted(
            tuple(sorted(row.items()))
            for row in db.cluster.read_table(name, epoch)
        )
    return state


class TestColdStart:
    def test_ddl_wos_and_deletes_recovered(self, tmp_path):
        db = build(tmp_path / "db", journal_checkpoint_interval=4)
        db.load("t", rows(20))
        db.run_tuple_movers()
        db.load("t", rows(10, start=20))  # WOS-only at crash time
        db.sql("DELETE FROM t WHERE k < 7")
        db.create_table(table("t2"), sort_order=["k"])
        db.load("t2", rows(5))
        before = capture(db)

        del db
        reopened = Database.open(str(tmp_path / "db"))
        report = reopened.replay_report
        assert capture(reopened) == before
        assert report.commits_replayed > 0
        assert report.containers_quarantined == 0
        assert report.rows_redeleted == 7
        # the reopened database accepts new writes and journals them
        reopened.load("t", [{"k": 1000, "v": "post"}])
        after = capture(reopened)
        del reopened
        assert capture(Database.open(str(tmp_path / "db"))) == after

    def test_reopen_is_idempotent(self, tmp_path):
        db = build(tmp_path / "db")
        db.load("t", rows(30))
        before = capture(db)
        del db
        for _ in range(3):  # restart, restart, restart
            db = Database.open(str(tmp_path / "db"))
            assert capture(db) == before
            del db

    def test_checkpoint_bounds_cold_start(self, tmp_path):
        db = build(tmp_path / "db", journal_checkpoint_interval=2)
        for start in range(0, 40, 10):
            db.load("t", rows(10, start=start))
            db.run_tuple_movers()  # floor + checkpoint every cycle
        before = capture(db)
        del db
        reopened = Database.open(
            str(tmp_path / "db"), journal_checkpoint_interval=2
        )
        report = reopened.replay_report
        assert capture(reopened) == before
        assert report.checkpoint_used
        assert report.floor > 0
        # everything at or below the floor came from disk, not replay
        assert report.rows_reinserted < 40

    def test_drop_table_replayed(self, tmp_path):
        db = build(tmp_path / "db")
        db.create_table(table("doomed"), sort_order=["k"])
        db.load("doomed", rows(10))
        db.load("t", rows(10))
        db.drop_table("doomed")
        before = capture(db)
        del db
        reopened = Database.open(str(tmp_path / "db"))
        assert "doomed" not in reopened.cluster.catalog.tables
        assert capture(reopened) == before

    def test_second_database_at_same_path_refused(self, tmp_path):
        build(tmp_path / "db")
        with pytest.raises(DurabilityError):
            Database(str(tmp_path / "db"))

    def test_nondurable_database_cannot_reopen(self, tmp_path):
        db = Database(str(tmp_path / "db"), durable=False)
        assert db.cluster.journal is None
        with pytest.raises(DurabilityError):
            Database.open(str(tmp_path / "db"))


class TestCrashPoints:
    """Targeted crash-at-fault-point scenarios (the generic sweep lives
    in ``tests/chaos/test_kill_anywhere.py``)."""

    def test_crash_after_commit_durable_before_apply(self, tmp_path):
        db = build(tmp_path / "db")
        db.load("t", rows(10))
        expected = capture(db)
        plan = FaultPlan(seed=1).arm("journal.commit.apply", "crash")
        with plan:
            with pytest.raises(InjectedFaultError):
                db.load("t", rows(10, start=10))
        assert plan.fired
        del db
        # the commit record hit disk before the crash: replay applies it
        reopened = Database.open(str(tmp_path / "db"))
        state = capture(reopened)
        assert state["t"] != expected["t"]
        assert len(state["t"]) == 20

    def test_crash_before_publish_loses_only_that_record(self, tmp_path):
        db = build(tmp_path / "db")
        db.load("t", rows(10))
        expected = capture(db)
        plan = FaultPlan(seed=2).arm("journal.append.stage", "crash")
        with plan:
            with pytest.raises(InjectedFaultError):
                db.load("t", rows(10, start=10))
        assert plan.fired
        del db
        # the record never published: cold start sees the pre-crash state
        assert capture(Database.open(str(tmp_path / "db"))) == expected

    def test_torn_tail_recovers_valid_prefix(self, tmp_path):
        db = build(tmp_path / "db")
        db.load("t", rows(10))
        expected = capture(db)
        # tear the published segment mid-final-record, then crash
        plan = FaultPlan(seed=3).arm("journal.append.publish", "torn")
        with plan:
            with pytest.raises(InjectedFaultError):
                db.load("t", rows(10, start=10))
        assert plan.fired
        del db
        reopened = Database.open(str(tmp_path / "db"))
        assert reopened.replay_report.truncated_records >= 1
        assert capture(reopened) == expected

    @pytest.mark.parametrize("seed", [4, 14, 24])
    def test_bitflip_on_last_append_truncated_by_crc(self, seed, tmp_path):
        db = build(tmp_path / "db")
        db.load("t", rows(10))
        # flip a bit in the published segment on the LAST append before
        # the restart — any earlier and the next append's full-segment
        # rewrite would heal it.  The flipped byte can land in ANY
        # record of the segment, so the recovered state is some exact
        # prefix of the fault-free history — never a corrupted hybrid.
        plan = FaultPlan(seed=seed).arm("journal.append.publish", "bitflip")
        with plan:
            db.load("t", rows(10, start=10))
        assert plan.fired and plan.fired[0].action == "bitflip"
        del db
        reopened = Database.open(str(tmp_path / "db"))
        state = capture(reopened)
        prefixes = [
            {"tables": []},  # flip hit the DDL records
            {"tables": ["t"], "t": []},
            {"tables": ["t"], "t": capture_rows(rows(10))},
            {"tables": ["t"], "t": capture_rows(rows(20))},
        ]
        assert state in prefixes, state

    def test_stale_checkpoint_is_idempotent(self, tmp_path):
        for point in ("journal.checkpoint.stage", "journal.checkpoint.publish"):
            root = tmp_path / point.replace(".", "_")
            db = build(root, journal_checkpoint_interval=2)
            db.load("t", rows(20))
            plan = FaultPlan(seed=5).arm(point, "crash")
            with plan:
                with pytest.raises(InjectedFaultError):
                    db.run_tuple_movers()  # floor + checkpoint attempt
            assert plan.fired
            before = capture(db)
            del db
            reopened = Database.open(str(root), journal_checkpoint_interval=2)
            assert capture(reopened) == before, point
            # a crash after publish leaves the checkpoint; before, not
            used = reopened.replay_report.checkpoint_used
            assert used == (point == "journal.checkpoint.publish"), point


class TestBackupRestartRestore:
    def test_backup_survives_full_process_restart(self, tmp_path):
        db = build(tmp_path / "db", journal_checkpoint_interval=4)
        db.load("t", rows(40))
        db.run_tuple_movers()
        golden = capture(db)
        image = create_backup(db.cluster, str(tmp_path / "bk"))

        # damage: later commits we will throw away via restore, then a
        # full process restart before and after the restore
        db.sql("DELETE FROM t WHERE k < 5")
        del db
        db = Database.open(str(tmp_path / "db"))
        assert len(capture(db)["t"]) == 35

        # wipe the table's containers, restore the image over them
        family = db.cluster.catalog.super_projection_for("t")
        for node in db.cluster.nodes:
            for copy in family.all_copies:
                state = node.manager.storage(copy.name)
                node.manager.remove_containers(
                    copy.name, list(state.containers)
                )
        restored = restore_backup(db.cluster, image)
        assert restored == len(image.entries)
        assert capture(db)["t"] == golden["t"]

        # the restore record is journaled: another full restart keeps
        # the restored rows (scavenge readopts, floor covers the image)
        del db
        reopened = Database.open(str(tmp_path / "db"))
        assert capture(reopened)["t"] == golden["t"]
        assert reopened.replay_report.containers_quarantined == 0
