"""Unit tests for the write-ahead journal and its catalog codec."""

import os

import pytest

from repro import types
from repro.core.catalog import Catalog
from repro.core.schema import ColumnDef, TableDefinition
from repro.durability import (
    Journal,
    decode_catalog,
    decode_family,
    decode_table,
    encode_catalog,
    encode_family,
    encode_table,
)
from repro.durability.journal import _frame, _parse_line
from repro.errors import DurabilityError
from repro.projections.projection import (
    ProjectionFamily,
    make_buddy,
    super_projection,
)


def make_family(table):
    primary = super_projection(table, sort_order=["sale_id"])
    return ProjectionFamily(primary, [make_buddy(primary, 1)])


GENESIS = {
    "node_count": 3,
    "k_safety": 1,
    "segments_per_node": 3,
    "wos_capacity": 65536,
}


def make_journal(tmp_path, **kwargs):
    return Journal.create(str(tmp_path / "journal"), GENESIS, **kwargs)


def segment_files(directory):
    return sorted(n for n in os.listdir(directory) if n.startswith("seg_"))


def checkpoint_files(directory):
    return sorted(n for n in os.listdir(directory) if n.startswith("ckpt_"))


class TestFraming:
    def test_frame_roundtrip(self):
        body = {"kind": "commit", "lsn": 7, "payload": {"epoch": 3}}
        assert _parse_line(_frame(body).encode("utf-8")) == body

    def test_rejects_bad_crc(self):
        line = _frame({"kind": "floor", "lsn": 1, "payload": {}})
        tampered = ("0" * 8) + line[8:]
        assert _parse_line(tampered.encode("utf-8")) is None

    def test_rejects_torn_line(self):
        line = _frame({"kind": "floor", "lsn": 1, "payload": {}})
        assert _parse_line(line[: len(line) // 2].encode("utf-8")) is None

    def test_rejects_flipped_payload_byte(self):
        line = _frame({"kind": "floor", "lsn": 1, "payload": {"epoch": 5}})
        flipped = line.replace('"epoch":5', '"epoch":6')
        assert _parse_line(flipped.encode("utf-8")) is None


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.log_ddl("create_table", {"table": {"name": "t"}})
        journal.log_commit(
            epoch=1,
            snapshot_epoch=0,
            inserts={"t": [{"k": 1}]},
            deletes=[("t", [{"k": 0}])],
            direct_to_ros=False,
        )
        journal.log_floor(1)

        reopened = Journal.open(str(tmp_path / "journal"))
        replay = reopened.last_replay
        kinds = [record.kind for record in replay.records]
        assert kinds == ["genesis", "create_table", "commit", "floor"]
        assert [record.lsn for record in replay.records] == [0, 1, 2, 3]
        assert replay.floor == 1
        assert replay.truncated_records == 0
        assert reopened.genesis == GENESIS
        commit = replay.records[2]
        assert commit.payload["inserts"] == {"t": [{"k": 1}]}
        assert commit.payload["deletes"] == [{"table": "t", "rows": [{"k": 0}]}]

    def test_appends_continue_after_reopen(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.log_floor(2)
        reopened = Journal.open(str(tmp_path / "journal"))
        lsn = reopened.log_ddl("drop_table", {"name": "t"})
        assert lsn == 2  # dense LSNs across restarts
        again = Journal.open(str(tmp_path / "journal"))
        assert [r.lsn for r in again.last_replay.records] == [0, 1, 2]

    def test_create_refuses_existing_journal(self, tmp_path):
        make_journal(tmp_path)
        with pytest.raises(DurabilityError):
            make_journal(tmp_path)

    def test_open_requires_journal(self, tmp_path):
        with pytest.raises(DurabilityError):
            Journal.open(str(tmp_path / "nothing"))

    def test_floor_never_regresses(self, tmp_path):
        journal = make_journal(tmp_path)
        assert journal.log_floor(5) is not None
        assert journal.log_floor(3) is None  # no record written
        assert journal.floor == 5
        reopened = Journal.open(str(tmp_path / "journal"))
        assert reopened.floor == 5


class TestRotationAndCheckpoints:
    def test_rotation_creates_segments(self, tmp_path):
        journal = make_journal(tmp_path, segment_records=4)
        for epoch in range(1, 10):
            journal.log_floor(epoch)
        files = segment_files(str(tmp_path / "journal"))
        assert len(files) >= 2
        replay = Journal.open(
            str(tmp_path / "journal"), segment_records=4
        ).last_replay
        assert [r.lsn for r in replay.records] == list(range(10))

    def test_checkpoint_bounds_replay(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path, segment_records=4)
        catalog = {"tables": [], "families": []}
        for epoch in range(1, 9):
            journal.log_commit(
                epoch=epoch,
                snapshot_epoch=epoch - 1,
                inserts={"t": [{"k": epoch}]},
                deletes=[],
                direct_to_ros=False,
            )
        journal.log_floor(8)
        before = len(segment_files(directory))
        journal.write_checkpoint(
            floor=8, current_epoch=9, ahm=0, catalog=catalog
        )
        assert len(segment_files(directory)) < before  # covered ones pruned
        assert checkpoint_files(directory)

        reopened = Journal.open(directory, segment_records=4)
        replay = reopened.last_replay
        assert replay.checkpoint is not None
        assert replay.checkpoint["floor"] == 8
        assert replay.checkpoint["genesis"] == GENESIS
        assert replay.floor == 8
        # every surviving commit record is covered by the checkpoint
        # floor: replay of the tail is bounded, not from genesis.
        assert all(
            r.payload.get("epoch", 0) <= 8
            for r in replay.records
            if r.kind == "commit"
        )

    def test_should_checkpoint_counts_appends(self, tmp_path):
        journal = make_journal(tmp_path, checkpoint_interval=3)
        assert not journal.should_checkpoint()
        journal.log_floor(1)
        journal.log_floor(2)
        assert journal.should_checkpoint()  # genesis + two floors

    def test_old_checkpoints_pruned(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path)
        for round_index in range(4):
            journal.log_floor(round_index + 1)
            journal.write_checkpoint(
                floor=round_index + 1,
                current_epoch=round_index + 2,
                ahm=0,
                catalog={"tables": [], "families": []},
            )
        assert len(checkpoint_files(directory)) == 2  # CHECKPOINTS_RETAINED


class TestDamageRecovery:
    def test_torn_tail_truncated_to_valid_prefix(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path)
        for epoch in range(1, 4):
            journal.log_floor(epoch)
        path = os.path.join(directory, segment_files(directory)[-1])
        os.truncate(path, os.path.getsize(path) - 5)

        reopened = Journal.open(directory)
        replay = reopened.last_replay
        assert replay.truncated_records == 1
        assert [r.lsn for r in replay.records] == [0, 1, 2]
        assert replay.floor == 2  # the torn floor record is gone
        # the damaged suffix was cut on disk: reopening again is clean
        again = Journal.open(directory)
        assert again.last_replay.truncated_records == 0

    def test_bitflip_truncates_from_damaged_record(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path)
        for epoch in range(1, 5):
            journal.log_floor(epoch)
        path = os.path.join(directory, segment_files(directory)[-1])
        with open(path, "r+b") as handle:
            raw = handle.read()
            lines = raw.splitlines(keepends=True)
            # flip one bit inside the second record's body
            offset = len(lines[0]) + 20
            handle.seek(offset)
            original = raw[offset]
            handle.seek(offset)
            handle.write(bytes([original ^ 0x01]))

        replay = Journal.open(directory).last_replay
        assert [r.lsn for r in replay.records] == [0]
        assert replay.truncated_records == 4

    def test_damage_discards_later_segments(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path, segment_records=3)
        for epoch in range(1, 9):
            journal.log_floor(epoch)
        files = segment_files(directory)
        assert len(files) >= 2
        first = os.path.join(directory, files[0])
        os.truncate(first, os.path.getsize(first) - 3)

        replay = Journal.open(directory, segment_records=3).last_replay
        assert [r.lsn for r in replay.records] == [0, 1]
        assert segment_files(directory) == files[:1]

    def test_torn_checkpoint_falls_back(self, tmp_path):
        directory = str(tmp_path / "journal")
        journal = make_journal(tmp_path)
        journal.log_floor(3)
        journal.write_checkpoint(
            floor=3, current_epoch=4, ahm=0, catalog={"tables": [], "families": []}
        )
        ckpt = os.path.join(directory, checkpoint_files(directory)[-1])
        os.truncate(ckpt, os.path.getsize(ckpt) // 2)

        replay = Journal.open(directory).last_replay
        assert replay.checkpoint is None
        assert replay.checkpoints_skipped == 1
        assert replay.floor == 3  # floor record still on disk


class TestCodec:
    def table(self):
        return TableDefinition(
            "sales",
            [
                ColumnDef("sale_id", types.INTEGER),
                ColumnDef("region", types.VARCHAR),
                ColumnDef("amount", types.FLOAT),
            ],
            partition_by=lambda row: row["sale_id"] % 2,
            partition_by_text="sale_id % 2",
            primary_key=("sale_id",),
        )

    def test_table_roundtrip(self):
        table = self.table()
        decoded = decode_table(encode_table(table))
        assert decoded.name == table.name
        assert [c.name for c in decoded.columns] == [
            c.name for c in table.columns
        ]
        assert [c.dtype for c in decoded.columns] == [
            c.dtype for c in table.columns
        ]
        assert decoded.primary_key == table.primary_key
        assert decoded.partition_by_text == "sale_id % 2"
        assert decoded.partition_by is None  # documented limitation

    def test_family_roundtrip(self):
        family = make_family(self.table())
        decoded = decode_family(encode_family(family))
        assert decoded.primary.name == family.primary.name
        assert len(decoded.buddies) == len(family.buddies)
        for mine, theirs in zip(decoded.all_copies, family.all_copies):
            assert mine.name == theirs.name
            assert mine.sort_order == theirs.sort_order
            assert mine.buddy_offset == theirs.buddy_offset
            assert [c.encoding for c in mine.columns] == [
                c.encoding for c in theirs.columns
            ]
            assert type(mine.segmentation) is type(theirs.segmentation)

    def test_catalog_roundtrip(self):
        catalog = Catalog()
        table = self.table()
        catalog.add_table(table)
        catalog.add_family(make_family(table))
        decoded = decode_catalog(encode_catalog(catalog))
        assert sorted(decoded.tables) == sorted(catalog.tables)
        assert sorted(decoded.families) == sorted(catalog.families)
