"""Retention regression: the in-memory logs hold steady-state size.

The issue's satellite: a 10k-statement loop must not grow
``ProfileLog`` / ``EventLog`` (or the Data Collector rings) beyond
their configured bounds — operational history is a ring, not a leak.
"""

import pytest

from repro.cluster.clock import SimulatedClock
from repro.dc import DataCollector
from repro.monitor.events import EventLog
from repro.monitor.profile import ProfileLog, QueryProfile
from repro.monitor.retention import DEFAULT_RETENTION, RetentionPolicy

pytestmark = pytest.mark.dc

N = 10_000


def test_profile_log_steady_state_over_10k_statements():
    log = ProfileLog(retention=RetentionPolicy(max_records=64))
    for i in range(N):
        log.record(
            QueryProfile(
                query_id=i, sql=f"SELECT {i}", epoch=1,
                rows_returned=1, wall_seconds=0.001,
            )
        )
        assert len(log.profiles()) <= 64
    kept = log.profiles()
    assert len(kept) == 64
    assert kept[-1].query_id == N - 1  # newest survives
    assert kept[0].query_id == N - 64  # oldest evicted in order


def test_event_log_steady_state_over_10k_events():
    log = EventLog(retention=RetentionPolicy(max_records=128))
    for i in range(N):
        log.record("moveout", 0, "p_super", 1, 1, 10, 10, 0, 0, 0.0)
    events = log.events()
    assert len(events) == 128
    assert events[-1].event_id == N


def test_collector_rings_steady_state_over_10k_records(tmp_path):
    dc = DataCollector(
        str(tmp_path / "dc"),
        clock=SimulatedClock(),
        retention=RetentionPolicy(max_records=256),
    )
    for i in range(N):
        dc.record("requests", "select", sql=f"q{i}")
    rows = dc.rows("requests")
    assert len(rows) == 256
    assert rows[-1]["record_id"] == N


def test_default_retention_is_the_shared_knob():
    """Both legacy capacity constants and the collector share the same
    retention shape, so one config bounds them all."""
    assert DEFAULT_RETENTION.max_records == 1024
    log = ProfileLog(retention=DEFAULT_RETENTION)
    assert log._capacity == DEFAULT_RETENTION.max_records
    events = EventLog(retention=DEFAULT_RETENTION)
    assert events._capacity == DEFAULT_RETENTION.max_records
