"""Tests for v_monitor.metrics and MetricsRegistry.capture().

The metrics table is the catch-all SQL surface over the process-wide
registry: every counter, gauge and histogram appears as one row, with
the kind-specific columns left NULL for the others.  ``capture()`` is
the scoped-delta primitive the benchmark harness leans on."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.monitor import METRICS, reset_all


@pytest.fixture
def db(tmp_path):
    reset_all()
    db = Database(str(tmp_path / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("a", types.INTEGER)], primary_key=("a",)
        )
    )
    db.load("t", [{"a": i} for i in range(50)])
    return db


def _rows_by_name(db):
    rows = db.sql("SELECT * FROM v_monitor.metrics")
    return {row["name"]: row for row in rows}


def test_metrics_table_reports_all_three_kinds(db):
    METRICS.set_gauge("test.gauge", 2.5)
    for value in (1.0, 3.0, 5.0, 7.0):
        METRICS.observe("test.histogram", value)
    by_name = _rows_by_name(db)

    # real engine counters bumped by the load above are present.
    counters = [r for r in by_name.values() if r["kind"] == "counter"]
    assert counters and all(r["value"] >= 0 for r in counters)

    gauge = by_name["test.gauge"]
    assert gauge["kind"] == "gauge"
    assert gauge["value"] == 2.5
    assert gauge["observations"] is None

    histogram = by_name["test.histogram"]
    assert histogram == {
        "name": "test.histogram",
        "kind": "histogram",
        "value": None,
        "observations": 4,
        "total": 16.0,
        "min_value": 1.0,
        "max_value": 7.0,
        "mean": 4.0,
        "p50": 5.0,
        "p95": 7.0,
    }


def test_metrics_table_sorted_and_fully_columned(db):
    rows = db.sql("SELECT * FROM v_monitor.metrics")
    assert rows == sorted(rows, key=lambda r: (r["kind"], r["name"]))
    for row in rows:
        assert set(row) == {
            "name", "kind", "value", "observations", "total",
            "min_value", "max_value", "mean", "p50", "p95",
        }


def test_capture_reports_deltas_without_reset(db):
    before = METRICS.counter("queries.executed")
    with METRICS.capture(("queries.executed",)) as captured:
        db.sql("SELECT a FROM t WHERE a < 10")
    assert captured.deltas == {"queries.executed": 1}
    # capture never resets the registry.
    assert METRICS.counter("queries.executed") == before + 1


def test_capture_defaults_to_every_moved_counter(db):
    with METRICS.capture() as captured:
        METRICS.inc("capture.example", 3)
    assert captured.deltas["capture.example"] == 3
    # untouched counters report a delta of zero, not absence.
    assert all(delta == 0 or name == "capture.example"
               for name, delta in captured.deltas.items()
               if name.startswith("capture."))


def test_capture_nests_safely(db):
    with METRICS.capture(("nest.outer", "nest.inner")) as outer:
        METRICS.inc("nest.outer")
        with METRICS.capture(("nest.inner",)) as inner:
            METRICS.inc("nest.inner", 2)
        METRICS.inc("nest.outer")
    assert inner.deltas == {"nest.inner": 2}
    assert outer.deltas == {"nest.outer": 2, "nest.inner": 2}
