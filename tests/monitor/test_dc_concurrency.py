"""8-thread stress over the Data Collector and its SQL tables.

The issue's satellite: concurrent writers plus a SQL poller must never
observe a torn row (a record whose fields mix two writers), and
retention eviction under simulated-clock ticks stays deterministic.
"""

import threading

import pytest

from repro import Database
from repro.cluster.clock import SimulatedClock
from repro.dc import DataCollector
from repro.monitor import reset_all
from repro.monitor.retention import RetentionPolicy

pytestmark = pytest.mark.dc

WRITERS = 8
PER_WRITER = 300


def test_eight_writers_and_a_sql_poller_no_torn_rows(tmp_path):
    reset_all()
    db = Database(str(tmp_path / "db"), node_count=3, durable=False)
    dc = db.cluster.dc
    start = threading.Barrier(WRITERS + 1)
    stop = threading.Event()
    torn: list[dict] = []

    def writer(tid):
        start.wait()
        for seq in range(PER_WRITER):
            dc.record(
                "requests",
                "select",
                session_id=tid,
                pool_name=f"pool{tid}",
                sql=f"t{tid}-s{seq}",
                rows_returned=tid * 100_000 + seq,
            )

    def poller():
        start.wait()
        while not stop.is_set():
            rows = db.sql(
                "SELECT session_id, pool_name, sql, rows_returned "
                "FROM v_monitor.dc_requests_completed"
            )
            for row in rows:
                tid = row["session_id"]
                expected_sql = f"t{tid}-s{row['rows_returned'] % 100_000}"
                if (
                    row["pool_name"] != f"pool{tid}"
                    or row["sql"] != expected_sql
                    or row["rows_returned"] // 100_000 != tid
                ):
                    torn.append(row)

    threads = [
        threading.Thread(target=writer, args=(tid,)) for tid in range(WRITERS)
    ]
    reader = threading.Thread(target=poller)
    reader.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    stop.set()
    reader.join(timeout=30.0)
    assert not reader.is_alive()
    assert torn == []

    rows = dc.rows("requests")
    # default retention bounds the ring; ids stay strictly monotonic
    assert len(rows) <= 1024
    ids = [r["record_id"] for r in rows]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
    counts = dc.counts()
    assert counts["requests"] == len(rows)


def test_concurrent_ticks_evict_deterministically(tmp_path):
    clock = SimulatedClock()
    dc = DataCollector(
        str(tmp_path / "dc"),
        clock=clock,
        retention=RetentionPolicy(max_records=10_000, max_age_ticks=3),
    )
    start = threading.Barrier(WRITERS)

    def writer(tid):
        start.wait()
        for seq in range(PER_WRITER):
            dc.record("node_events", "k", node_index=tid, detail=str(seq))

    threads = [
        threading.Thread(target=writer, args=(tid,)) for tid in range(WRITERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)

    total = WRITERS * PER_WRITER
    assert len(dc.rows("node_events")) == total  # all at tick 0, all kept
    clock.advance(4)  # every record is now older than max_age_ticks
    dc.on_tick()
    assert dc.rows("node_events") == []
    # and the eviction is idempotent
    dc.on_tick()
    assert dc.rows("node_events") == []
