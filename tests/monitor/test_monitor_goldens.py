"""Golden tests for EXPLAIN ANALYZE output and the v_monitor tables.

One scripted scenario — load, query, moveout, mergeout — drives every
check, so the goldens pin the real end-to-end shape of the monitoring
subsystem: the annotated plan rendering (with wall times normalized
away), the exact column list of each virtual table, and the contents
those tables must report after the scenario.
"""

import re

import pytest

from repro import types
from repro.core.database import Database
from repro.core.schema import ColumnDef, TableDefinition
from repro.monitor import PROFILES, reset_all
from repro.monitor.tables import columns_of, table_names

JOIN_GROUP_SQL = (
    "SELECT region, COUNT(*) AS n, SUM(amount) AS total "
    "FROM sales JOIN customers ON sales.cust_id = customers.cust_id "
    "GROUP BY region ORDER BY region"
)

#: EXPLAIN ANALYZE over JOIN_GROUP_SQL after the scripted scenario,
#: with every wall-clock figure replaced by ``_`` (times are the only
#: nondeterministic part; rows, blocks, and pulls are pinned exactly).
EXPLAIN_ANALYZE_GOLDEN = """\
Query 1 (2 rows, _ ms)
Sort(region ASC)  [rows=2 blocks=1 pulls=2 time=_ self=_]
  ExprEval(region=region, n=agg_1, total=agg_2)  [rows=2 blocks=1 pulls=2 time=_ self=_]
    GroupByHash(keys=[region] aggs=[COUNT(*), SUM(amount)] merge)  [rows=2 blocks=1 pulls=2 time=_ self=_ exec=row]
      PrepassGroupBy(keys=[region] table=1024)  [rows=2 blocks=1 pulls=2 time=_ self=_ exec=row]
        HashJoin[INNER](sales.cust_id=customers.cust_id)  [rows=400 blocks=1 pulls=2 time=_ self=_]
          ExprEval(sale_id=sale_id, sales.cust_id=cust_id, amount=amount)  [rows=400 blocks=3 pulls=4 time=_ self=_]
            Scan(sales_super @e5) SIP[cust_id] from HashJoin  [rows=400 blocks=3 pulls=4 time=_ self=_ exec=kernel]
          Source  [rows=10 blocks=3 pulls=4 time=_ self=_]"""

GOLDEN_SCHEMAS = {
    "v_monitor.query_profiles": [
        "query_id", "sql", "epoch", "rows_returned", "query_ms",
        "operator_id", "parent_id", "depth", "operator_name", "label",
        "rows_produced", "blocks_produced", "pulls", "wall_ms", "self_ms",
        "execution",
    ],
    "v_monitor.projection_storage": [
        "node_name", "projection_name", "anchor_table", "wos_rows",
        "ros_rows", "ros_containers", "ros_bytes", "delete_markers",
    ],
    "v_monitor.tuple_mover_events": [
        "event_id", "kind", "node_name", "projection_name",
        "containers_in", "containers_out", "rows_in", "rows_out",
        "rows_purged", "stratum", "duration_ms",
    ],
    "v_monitor.locks": ["object_name", "txn_id", "mode"],
    "v_monitor.node_states": [
        "node_name", "node_index", "is_up", "supervisor_state",
        "recovery_attempts", "next_attempt_tick", "last_transition_tick",
        "heartbeat_age", "missed_heartbeats", "last_error",
    ],
    "v_monitor.failover_events": [
        "event_id", "tick", "kind", "node_index", "node_name",
        "attempt", "detail",
    ],
    "v_monitor.metrics": [
        "name", "kind", "value", "observations", "total",
        "min_value", "max_value", "mean", "p50", "p95",
    ],
    "v_monitor.query_traces": [
        "trace_id", "name", "statement", "sql", "start_tick",
        "end_tick", "duration_ms", "span_count", "node_count",
        "node_list",
    ],
    "v_monitor.trace_spans": [
        "trace_id", "span_id", "parent_id", "name", "category",
        "node_index", "node_name", "start_tick", "end_tick",
        "start_ms", "duration_ms", "error", "attrs",
    ],
    "v_monitor.sessions": [
        "session_id", "state", "pool_name", "isolation", "txn_id",
        "current_statement", "statements_run", "statements_failed",
        "last_error",
    ],
    "v_monitor.resource_pools": [
        "pool_name", "memory_budget_rows", "memory_in_use_rows",
        "max_concurrency", "running", "queue_depth", "queued",
        "queue_timeout_ticks", "admitted_total", "queued_total",
        "rejected_total", "timed_out_total", "cancelled_total",
        "peak_running",
    ],
    "v_monitor.journal": [
        "segment", "records", "bytes", "first_lsn", "last_lsn",
        "is_active", "checkpoint_lsn", "floor_epoch",
    ],
    "v_monitor.dc_requests_completed": [
        "record_id", "tick", "statement", "session_id", "pool_name",
        "sql", "success", "error", "engine", "rows_returned",
        "duration_ms", "epoch",
    ],
    "v_monitor.dc_resource_acquisitions": [
        "record_id", "tick", "outcome", "pool_name", "session_id",
        "ticket_id", "memory_rows", "queued_ticks", "detail",
    ],
    "v_monitor.dc_lock_waits": [
        "record_id", "tick", "outcome", "txn_id", "object_name",
        "mode", "blocker_txn", "detail",
    ],
    "v_monitor.dc_node_events": [
        "record_id", "tick", "kind", "node_index", "node_name",
        "attempt", "detail",
    ],
    "v_monitor.dc_tuple_mover": [
        "record_id", "tick", "kind", "node_index", "projection_name",
        "containers_in", "containers_out", "rows_in", "rows_out",
        "rows_purged", "stratum", "duration_ms",
    ],
    "v_monitor.dc_errors": [
        "record_id", "tick", "kind", "source", "node_index", "detail",
    ],
    "v_monitor.slow_queries": [
        "record_id", "tick", "statement", "session_id", "pool_name",
        "sql", "engine", "rows_returned", "duration_ms",
        "threshold_ms",
    ],
    "v_monitor.alerts": [
        "alert", "severity", "state", "value", "raise_above",
        "clear_below", "raised_tick", "cleared_tick", "times_raised",
        "detail",
    ],
}


def _normalize(rendered: str) -> str:
    """Blank out wall-clock figures, the only nondeterministic part."""
    out = re.sub(r"\d+\.\d+ ms", "_ ms", rendered)
    out = re.sub(r"time=\d+\.\d+ms", "time=_", out)
    return re.sub(r"self=\d+\.\d+ms", "self=_", out)


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    """Scripted load -> query -> moveout -> mergeout on one node.

    Four load+moveout cycles put four sales containers in stratum 0 of
    each local segment, which is exactly the merge policy's
    ``min_inputs`` — the fourth cycle's mergeout pass merges them.
    """
    reset_all()
    db = Database(str(tmp_path_factory.mktemp("golden") / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "sales",
            [
                ColumnDef("sale_id", types.INTEGER),
                ColumnDef("cust_id", types.INTEGER),
                ColumnDef("amount", types.FLOAT),
            ],
        ),
        sort_order=["sale_id"],
    )
    db.create_table(
        TableDefinition(
            "customers",
            [
                ColumnDef("cust_id", types.INTEGER),
                ColumnDef("region", types.VARCHAR),
            ],
        ),
        sort_order=["cust_id"],
    )
    db.load(
        "customers",
        [{"cust_id": c, "region": ["east", "west"][c % 2]} for c in range(10)],
    )
    for cycle in range(4):
        db.load(
            "sales",
            [
                {"sale_id": cycle * 100 + i, "cust_id": i % 10, "amount": float(i)}
                for i in range(100)
            ],
        )
        db.run_tuple_movers()
    rendered = db.sql("EXPLAIN ANALYZE " + JOIN_GROUP_SQL)
    return db, rendered


def test_explain_analyze_golden(scenario):
    _, rendered = scenario
    assert _normalize(rendered) == EXPLAIN_ANALYZE_GOLDEN


def test_profile_shows_rows_blocks_and_time(scenario):
    """Acceptance shape: every operator line carries rows, blocks and
    wall time, and the join + group-by plan is fully annotated."""
    _, rendered = scenario
    lines = rendered.splitlines()[1:]
    assert len(lines) == 8
    for line in lines:
        assert re.search(r"\[rows=\d+ blocks=\d+ pulls=\d+ time=\d", line)
    assert any("HashJoin" in line for line in lines)
    assert any("GroupByHash" in line for line in lines)


def test_monitor_schemas_golden(scenario):
    db, _ = scenario
    assert sorted(table_names()) == sorted(GOLDEN_SCHEMAS)
    for name, expected in GOLDEN_SCHEMAS.items():
        assert columns_of(name) == expected
        rows = db.sql(f"SELECT * FROM {name}")
        for row in rows:
            assert list(row) == expected


def test_query_profiles_matches_rendered_plan(scenario):
    """v_monitor.query_profiles must agree row-for-row with the
    EXPLAIN ANALYZE rendering of the same query."""
    db, rendered = scenario
    rows = db.sql(
        "SELECT depth, operator_name, rows_produced, blocks_produced, pulls "
        "FROM v_monitor.query_profiles WHERE query_id = 1 ORDER BY operator_id"
    )
    op_lines = rendered.splitlines()[1:]
    assert len(rows) == len(op_lines)
    for row, line in zip(rows, op_lines):
        assert line.startswith("  " * row["depth"] + row["operator_name"][:4])
        stats = re.search(r"\[rows=(\d+) blocks=(\d+) pulls=(\d+)", line)
        assert stats is not None
        assert row["rows_produced"] == int(stats.group(1))
        assert row["blocks_produced"] == int(stats.group(2))
        assert row["pulls"] == int(stats.group(3))


def test_projection_storage_contents(scenario):
    db, _ = scenario
    rows = db.sql(
        "SELECT * FROM v_monitor.projection_storage ORDER BY projection_name"
    )
    by_name = {row["projection_name"]: row for row in rows}
    sales = by_name["sales_super"]
    assert sales["anchor_table"] == "sales"
    assert sales["node_name"] == "node00"
    assert sales["wos_rows"] == 0  # everything moved out
    assert sales["ros_rows"] == 400
    assert sales["ros_bytes"] > 0
    assert sales["delete_markers"] == 0
    customers = by_name["customers_super"]
    assert customers["ros_rows"] == 10


def test_tuple_mover_events_contents(scenario):
    db, _ = scenario
    events = db.sql(
        "SELECT * FROM v_monitor.tuple_mover_events ORDER BY event_id"
    )
    kinds = [event["kind"] for event in events]
    # one customers moveout + four sales moveouts, then the mergeouts
    # the fourth cycle triggers once stratum 0 reaches min_inputs.
    assert kinds.count("moveout") == 5
    assert kinds.count("mergeout") >= 1
    assert [event["event_id"] for event in events] == list(
        range(1, len(events) + 1)
    )
    for event in events:
        assert event["duration_ms"] >= 0.0
        assert event["node_name"] == "node00"
    moveout_rows = sum(
        event["rows_in"] for event in events if event["kind"] == "moveout"
    )
    assert moveout_rows == 410  # 10 customers + 4 x 100 sales
    for event in events:
        if event["kind"] == "mergeout":
            assert event["stratum"] >= 0
            assert event["containers_in"] >= 2
            assert event["containers_out"] == 1
            assert event["rows_out"] == event["rows_in"] - event["rows_purged"]
    merged_rows = sum(
        event["rows_in"] for event in events if event["kind"] == "mergeout"
    )
    assert merged_rows == 400  # every sales row remerged exactly once


def test_locks_table_reflects_open_transaction(scenario):
    db, _ = scenario
    assert db.sql("SELECT * FROM v_monitor.locks") == []
    session = db.session()
    session.begin()
    session.insert("sales", [{"sale_id": 9999, "cust_id": 1, "amount": 1.0}])
    held = db.sql("SELECT object_name, mode FROM v_monitor.locks")
    assert {"object_name": "sales", "mode": "I"} in held
    session.rollback()
    assert db.sql("SELECT * FROM v_monitor.locks") == []


def test_repeated_query_profiles_identical(scenario):
    """Counter hygiene: running the same query twice must yield
    identical per-operator profiles — no state leaks across queries."""
    db, _ = scenario

    def profile_of():
        db.sql(JOIN_GROUP_SQL)
        last = PROFILES.last()
        assert last is not None
        return [
            (op.depth, op.op_name, op.rows_produced, op.blocks_produced, op.pulls)
            for op in last.operators
        ]

    assert profile_of() == profile_of()
