"""Tests for the user-extension SDK (section 6)."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro import sdk
from repro.errors import SqlAnalysisError
from repro.execution import (
    AggregateSpec,
    ColumnRef,
    FunctionCall,
    GroupByHashOperator,
    RowBlock,
    RowSource,
)

C = ColumnRef


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=1)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("g", types.INTEGER), ColumnDef("x", types.FLOAT)]
        )
    )
    db.load("t", [{"g": i % 3, "x": float(i)} for i in range(30)])
    return db


@pytest.fixture(autouse=True)
def _cleanup():
    yield
    sdk.unregister_scalar_function("square")
    sdk.unregister_aggregate("second_largest")


class TestScalarFunctions:
    def test_register_and_call_from_expression(self):
        sdk.register_scalar_function("square", lambda v: v * v)
        block = RowBlock(columns={"x": [2, None, 3]}, row_count=3)
        assert FunctionCall("square", C("x")).evaluate(block) == [4, None, 9]

    def test_usable_from_sql(self, db):
        sdk.register_scalar_function("square", lambda v: v * v)
        rows = db.sql("SELECT square(x) AS sq FROM t WHERE g = 0 ORDER BY sq LIMIT 2")
        assert rows == [{"sq": 0.0}, {"sq": 9.0}]

    def test_unknown_function_still_rejected(self, db):
        with pytest.raises(Exception):
            db.sql("SELECT not_registered(x) FROM t")

    def test_invalid_name_rejected(self):
        with pytest.raises(SqlAnalysisError):
            sdk.register_scalar_function("bad name", lambda v: v)

    def test_builtin_cannot_be_unregistered(self):
        with pytest.raises(SqlAnalysisError):
            sdk.unregister_scalar_function("ABS")


class _SecondLargest(sdk.UserAggregate):
    def __init__(self):
        self.top: list = []

    def add(self, value) -> None:
        self.top.append(value)
        self.top = sorted(self.top, reverse=True)[:2]

    def final(self):
        return self.top[1] if len(self.top) > 1 else None


class TestUserAggregates:
    def test_register_and_group_by(self):
        sdk.register_aggregate("second_largest", _SecondLargest)
        rows = [{"g": i % 2, "v": i} for i in range(10)]
        out = GroupByHashOperator(
            RowSource(rows, ["g", "v"]),
            [C("g")], ["g"],
            [AggregateSpec("SECOND_LARGEST", C("v"), "sl")],
        ).rows()
        got = {row["g"]: row["sl"] for row in out}
        assert got == {0: 6, 1: 7}

    def test_usable_from_sql(self, db):
        sdk.register_aggregate("second_largest", _SecondLargest)
        rows = db.sql(
            "SELECT g, second_largest(x) AS sl FROM t GROUP BY g ORDER BY g"
        )
        # group g: values g, g+3, ..., g+27 -> second largest g+24
        assert [row["sl"] for row in rows] == [24.0, 25.0, 26.0]

    def test_not_mergeable(self):
        sdk.register_aggregate("second_largest", _SecondLargest)
        spec = AggregateSpec("SECOND_LARGEST", C("v"), "sl")
        assert spec.is_user_defined
        assert not spec.mergeable

    def test_builtin_name_collision_rejected(self):
        with pytest.raises(SqlAnalysisError):
            sdk.register_aggregate("SUM", _SecondLargest)

    def test_unsupported_after_unregister(self):
        sdk.register_aggregate("second_largest", _SecondLargest)
        sdk.unregister_aggregate("second_largest")
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            AggregateSpec("SECOND_LARGEST", C("v"), "sl")
