"""Documentation hygiene: every public module, class and function in
the library carries a docstring."""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in _public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules missing docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"
