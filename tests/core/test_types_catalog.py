"""Tests for the type system, schema objects and the catalog."""

import datetime

import pytest

from repro import types
from repro.core.catalog import Catalog
from repro.core.schema import ColumnDef, TableDefinition
from repro.errors import (
    DuplicateObjectError,
    LoadError,
    SqlAnalysisError,
    UnknownObjectError,
)
from repro.projections import ProjectionFamily, super_projection


class TestTypes:
    def test_lookup_aliases(self):
        assert types.type_from_name("int") is types.INTEGER
        assert types.type_from_name("BIGINT") is types.INTEGER
        assert types.type_from_name("double") is types.FLOAT
        assert types.type_from_name("text") is types.VARCHAR
        with pytest.raises(SqlAnalysisError):
            types.type_from_name("BLOB")

    def test_validate(self):
        assert types.INTEGER.validate(5) == 5
        assert types.INTEGER.validate(None) is None
        assert types.FLOAT.validate(3) == 3.0  # int promotes
        with pytest.raises(SqlAnalysisError):
            types.INTEGER.validate("5")
        with pytest.raises(SqlAnalysisError):
            types.INTEGER.validate(True)  # bool is not an int here
        with pytest.raises(SqlAnalysisError):
            types.INTEGER.validate(2**63)  # out of 64-bit range

    def test_parse_text(self):
        assert types.INTEGER.parse_text("42") == 42
        assert types.FLOAT.parse_text("1.5") == 1.5
        assert types.VARCHAR.parse_text("abc") == "abc"
        assert types.BOOLEAN.parse_text("true") is True
        assert types.BOOLEAN.parse_text("0") is False
        assert types.INTEGER.parse_text("") is None
        assert types.INTEGER.parse_text("NULL") is None
        with pytest.raises(LoadError):
            types.INTEGER.parse_text("4x")
        with pytest.raises(LoadError):
            types.BOOLEAN.parse_text("maybe")

    def test_date_helpers_roundtrip(self):
        day = datetime.date(2012, 8, 27)
        assert types.days_to_date(types.date_to_days(day)) == day
        moment = datetime.datetime(2012, 8, 27, 10, 30)
        assert types.seconds_to_timestamp(
            types.timestamp_to_seconds(moment)
        ) == moment

    def test_date_parse(self):
        days = types.DATE.parse_text("2000-01-11")
        assert days == 10

    def test_null_sorts_first(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=types.sort_key)
        assert ordered[:2] == [None, None]
        assert ordered[2:] == [1, 2, 3]

    def test_null_sentinel_comparisons(self):
        assert types.NULL_FIRST == types.NULL_FIRST
        assert types.NULL_FIRST < 0
        assert not (types.NULL_FIRST > "z")


class TestTableDefinition:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SqlAnalysisError):
            TableDefinition(
                "t",
                [ColumnDef("a", types.INTEGER), ColumnDef("a", types.FLOAT)],
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SqlAnalysisError):
            TableDefinition(
                "t", [ColumnDef("a", types.INTEGER)], primary_key=("b",)
            )

    def test_validate_row(self):
        table = TableDefinition(
            "t", [ColumnDef("a", types.INTEGER), ColumnDef("b", types.FLOAT)]
        )
        row = table.validate_row({"a": 1, "b": 2})
        assert row == {"a": 1, "b": 2.0}
        with pytest.raises(SqlAnalysisError):
            table.validate_row({"a": 1})  # missing column

    def test_partition_key(self):
        table = TableDefinition(
            "t",
            [ColumnDef("m", types.INTEGER)],
            partition_by=lambda row: row["m"] % 12,
        )
        assert table.partition_key({"m": 25}) == 1
        unpartitioned = TableDefinition("u", [ColumnDef("m", types.INTEGER)])
        assert unpartitioned.partition_key({"m": 25}) is None


class TestCatalog:
    def _table(self, name="t"):
        return TableDefinition(name, [ColumnDef("a", types.INTEGER)])

    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add_table(self._table())
        assert catalog.table("t").name == "t"
        with pytest.raises(UnknownObjectError):
            catalog.table("missing")

    def test_duplicates_rejected(self):
        catalog = Catalog()
        catalog.add_table(self._table())
        with pytest.raises(DuplicateObjectError):
            catalog.add_table(self._table())

    def test_family_registration(self):
        catalog = Catalog()
        table = self._table()
        catalog.add_table(table)
        family = ProjectionFamily(super_projection(table), [])
        catalog.add_family(family)
        assert catalog.family("t_super") is family
        assert catalog.families_for_table("t") == [family]
        assert catalog.super_projection_for("t") is family
        assert catalog.check_super_projection_invariant("t")

    def test_family_requires_table(self):
        catalog = Catalog()
        family = ProjectionFamily(super_projection(self._table()), [])
        with pytest.raises(UnknownObjectError):
            catalog.add_family(family)

    def test_drop_table_returns_projections(self):
        catalog = Catalog()
        table = self._table()
        catalog.add_table(table)
        catalog.add_family(ProjectionFamily(super_projection(table), []))
        removed = catalog.drop_table("t")
        assert [p.name for p in removed] == ["t_super"]
        assert catalog.table_names() == []
        assert catalog.families == {}

    def test_no_super_projection_detected(self):
        catalog = Catalog()
        table = TableDefinition(
            "t", [ColumnDef("a", types.INTEGER), ColumnDef("b", types.INTEGER)]
        )
        catalog.add_table(table)
        with pytest.raises(UnknownObjectError):
            catalog.super_projection_for("t")
        assert not catalog.check_super_projection_invariant("t")
