"""Tests for the monitoring views and date-part functions."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import UnknownObjectError
from repro.txn import LockMode


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)]
        ),
        sort_order=["k"],
    )
    db.load("t", [{"k": i, "v": "x"} for i in range(300)])
    return db


class TestSystemViews:
    def test_projections_view(self, db):
        rows = db.system("projections")
        # 3 nodes x 2 copies (primary + buddy)
        assert len(rows) == 6
        assert {row["projection"] for row in rows} == {"t_super", "t_super_b1"}
        assert sum(row["wos_rows"] + row["ros_rows"] for row in rows) == 600

    def test_wos_drains_into_view(self, db):
        before = db.system("projections")
        assert sum(row["wos_rows"] for row in before) == 600
        db.run_tuple_movers()
        after = db.system("projections")
        assert sum(row["wos_rows"] for row in after) == 0
        assert sum(row["ros_rows"] for row in after) == 600

    def test_storage_containers_view(self, db):
        db.run_tuple_movers()
        rows = db.system("storage_containers")
        assert rows
        assert all(row["rows"] > 0 for row in rows)
        assert all(row["min_epoch"] <= row["max_epoch"] for row in rows)

    def test_nodes_view_tracks_failure(self, db):
        db.run_tuple_movers()
        assert all(row["up"] for row in db.system("nodes"))
        db.fail_node(2)
        rows = db.system("nodes")
        assert [row["up"] for row in rows] == [True, True, False]
        assert rows[0]["min_lge"] > 0

    def test_locks_view(self, db):
        session = db.session()
        session.insert("t", [{"k": 999, "v": "y"}])
        rows = db.system("locks")
        assert rows == [{"object": "t", "txn": session.txn.txn_id,
                         "mode": LockMode.I.value}]
        session.rollback()
        assert db.system("locks") == []

    def test_epochs_view(self, db):
        row = db.system("epochs")[0]
        assert row["current_epoch"] == row["latest_queryable_epoch"] + 1
        assert row["nodes_down"] is False

    def test_unknown_view(self, db):
        with pytest.raises(UnknownObjectError):
            db.system("threads")


class TestDateParts:
    def test_date_functions_in_sql(self, tmp_path):
        db = Database(str(tmp_path / "d"), node_count=1)
        db.sql("CREATE TABLE ev (d DATE, v INTEGER)")
        db.sql(
            "INSERT INTO ev VALUES (DATE '2012-03-15', 1), "
            "(DATE '2012-04-02', 2), (DATE '2013-03-09', 3)"
        )
        rows = db.sql(
            "SELECT YEAR(d) AS y, MONTH(d) AS m, count(*) AS n "
            "FROM ev GROUP BY YEAR(d), MONTH(d) ORDER BY y, m"
        )
        assert rows == [
            {"y": 2012, "m": 3, "n": 1},
            {"y": 2012, "m": 4, "n": 1},
            {"y": 2013, "m": 3, "n": 1},
        ]

    def test_partition_by_month_year(self, tmp_path):
        # the paper's §3.5 example: PARTITION BY extract month+year
        db = Database(str(tmp_path / "p"), node_count=1)
        db.sql(
            "CREATE TABLE ev (d DATE, v INTEGER) "
            "PARTITION BY YEAR(d) * 100 + MONTH(d)"
        )
        rows = []
        for month, day in ((3, 1), (3, 20), (4, 5), (5, 9)):
            rows.append({"d": f"2012-{month:02d}-{day:02d}", "v": 1})
        db.sql("COPY ev (d, v) FROM STDIN",
               copy_rows=[f"{r['d']}|{r['v']}" for r in rows])
        db.run_tuple_movers()
        keys = set()
        family = db.cluster.catalog.super_projection_for("ev")
        for node in db.cluster.nodes:
            keys.update(node.manager.partition_keys(family.primary.name))
        assert keys == {201203, 201204, 201205}
        # fast bulk drop of one month
        reclaimed = db.cluster.nodes[0].manager.drop_partition(
            family.primary.name, 201203
        )
        assert reclaimed == 2
