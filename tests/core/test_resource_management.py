"""Tests for resource management: budgets, spills, correctness under
memory pressure (section 6.1 externalization + section 7)."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import ResourceExceededError
from repro.execution import ResourcePool, SpillFile, WorkloadPolicy


class TestResourcePool:
    def test_grant_and_release(self):
        pool = ResourcePool(WorkloadPolicy(query_memory_rows=100))
        grant = pool.grant(60)
        assert pool.available == 40
        pool.release(grant)
        assert pool.available == 100

    def test_over_grant_raises(self):
        pool = ResourcePool(WorkloadPolicy(query_memory_rows=10))
        with pytest.raises(ResourceExceededError):
            pool.grant(11)

    def test_operator_budget_fraction(self):
        pool = ResourcePool(
            WorkloadPolicy(query_memory_rows=1000, per_operator_fraction=0.25)
        )
        assert pool.operator_budget() == 250


class TestSpillFile:
    def test_roundtrip_order(self):
        spill = SpillFile()
        spill.write_batch([1, 2])
        spill.write_batch([3])
        assert list(spill.read_batches()) == [[1, 2], [3]]
        spill.close()

    def test_close_removes_file(self):
        import os

        spill = SpillFile()
        spill.write_batch(["x"])
        name = spill._handle.name
        spill.close()
        assert not os.path.exists(name)


@pytest.fixture
def db(tmp_path):
    # a deliberately tiny query memory budget
    db = Database(
        str(tmp_path / "db"),
        node_count=1,
        workload_policy=WorkloadPolicy(query_memory_rows=500),
    )
    db.create_table(
        TableDefinition(
            "t",
            [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
        )
    )
    db.load("t", [{"k": i, "v": i % 7} for i in range(5000)], direct_to_ros=True)
    db.analyze_statistics()
    return db


class TestQueriesUnderMemoryPressure:
    def test_sort_spills_but_is_correct(self, db):
        session = db.session()
        rows = session.sql("SELECT k FROM t ORDER BY k DESC LIMIT 5")
        assert [row["k"] for row in rows] == [4999, 4998, 4997, 4996, 4995]
        assert session.last_pool is not None
        assert session.last_pool.spills >= 1

    def test_wide_group_by_spills_but_is_correct(self, db):
        session = db.session()
        rows = session.sql("SELECT k, count(*) AS n FROM t GROUP BY k")
        assert len(rows) == 5000
        assert all(row["n"] == 1 for row in rows)
        assert session.last_pool.spills >= 1

    def test_narrow_group_by_stays_in_memory(self, db):
        session = db.session()
        rows = session.sql("SELECT v, count(*) AS n FROM t GROUP BY v")
        assert len(rows) == 7
        assert session.last_pool.spills == 0

    def test_big_join_switches_to_merge(self, db, tmp_path):
        db.create_table(
            TableDefinition(
                "u",
                [ColumnDef("k2", types.INTEGER), ColumnDef("w", types.INTEGER)],
            )
        )
        db.load("u", [{"k2": i, "w": i} for i in range(5000)], direct_to_ros=True)
        db.analyze_statistics()
        session = db.session()
        rows = session.sql(
            "SELECT count(*) AS n FROM t JOIN u ON t.k = u.k2"
        )
        assert rows == [{"n": 5000}]
        assert session.last_pool.spills >= 1  # build side over budget

    def test_default_policy_avoids_spills(self, tmp_path):
        roomy = Database(str(tmp_path / "db2"), node_count=1)
        roomy.create_table(
            TableDefinition("t", [ColumnDef("k", types.INTEGER)])
        )
        roomy.load("t", [{"k": i} for i in range(5000)], direct_to_ros=True)
        roomy.analyze_statistics()
        session = roomy.session()
        session.sql("SELECT k FROM t ORDER BY k LIMIT 5")
        assert session.last_pool.spills == 0
