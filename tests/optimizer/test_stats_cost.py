"""Tests for statistics (histograms, NDV) and the cost model."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution import And, Between, ColumnRef, InList, IsNull, Literal, Not, Or
from repro.optimizer import estimate_ndv
from repro.optimizer.cost import estimate_selectivity, scan_cost
from repro.optimizer.stats import (
    ColumnStats,
    Histogram,
    TableStats,
    collect_table_stats,
)

C = ColumnRef
L = Literal


class TestHistogram:
    def test_equi_height_buckets(self):
        histogram = Histogram.build(list(range(100)), buckets=10)
        assert len(histogram.bounds) == 10
        assert histogram.bounds[-1] == 99

    def test_range_selectivity_uniform(self):
        histogram = Histogram.build(list(range(1000)), buckets=20)
        half = histogram.selectivity_range(None, 499)
        assert 0.4 < half < 0.65

    def test_out_of_range_selectivity(self):
        histogram = Histogram.build(list(range(100)), buckets=10)
        assert histogram.selectivity_range(200, 300) == 0.0

    def test_null_fraction(self):
        histogram = Histogram.build([1, None, 2, None], buckets=2)
        assert histogram.null_fraction == 0.5

    def test_all_null(self):
        histogram = Histogram.build([None, None])
        assert histogram.null_fraction == 1.0
        assert histogram.selectivity_range(0, 1) == 1.0  # no info

    def test_skewed_data_buckets_follow_density(self):
        values = [1] * 900 + list(range(2, 102))
        histogram = Histogram.build(values, buckets=10)
        # most buckets end at the heavy value
        assert histogram.bounds[0] == 1


class TestNdv:
    def test_exact_when_sample_is_everything(self):
        assert estimate_ndv([1, 2, 3, 3], 4) == 3.0

    def test_scales_up_with_singletons(self):
        sample = list(range(100))  # all singletons
        estimate = estimate_ndv(sample, 10_000)
        assert estimate > 150  # extrapolates well beyond sample distinct

    def test_repeated_values_do_not_extrapolate(self):
        sample = [1, 2] * 50
        estimate = estimate_ndv(sample, 10_000)
        assert estimate < 10

    def test_empty(self):
        assert estimate_ndv([], 100) == 0.0


class TestSelectivity:
    def _stats(self):
        stats = TableStats("t", row_count=1000)
        stats.columns["a"] = ColumnStats(
            "a", 0, 999, ndv=1000.0, histogram=Histogram.build(list(range(1000))),
        )
        stats.columns["flag"] = ColumnStats(
            "flag", "N", "Y", ndv=2.0,
            histogram=Histogram.build(["N", "Y"] * 500),
        )
        return stats

    def test_equality(self):
        selectivity = estimate_selectivity(C("a") == L(5), self._stats())
        assert selectivity == pytest.approx(1 / 1000)

    def test_range(self):
        selectivity = estimate_selectivity(C("a") < L(100), self._stats())
        assert 0.03 < selectivity < 0.25

    def test_between(self):
        selectivity = estimate_selectivity(
            Between(C("a"), L(0), L(499)), self._stats()
        )
        assert 0.4 < selectivity < 0.65

    def test_conjunction_multiplies(self):
        single = estimate_selectivity(C("flag") == L("Y"), self._stats())
        double = estimate_selectivity(
            And(C("flag") == L("Y"), C("a") == L(5)), self._stats()
        )
        assert double < single

    def test_disjunction_unions(self):
        either = estimate_selectivity(
            Or(C("a") == L(1), C("a") == L(2)), self._stats()
        )
        assert either == pytest.approx(2 / 1000, rel=0.01)

    def test_negation(self):
        sel = estimate_selectivity(Not(C("a") == L(5)), self._stats())
        assert sel == pytest.approx(1 - 1 / 1000)

    def test_in_list(self):
        sel = estimate_selectivity(InList(C("flag"), ["Y"]), self._stats())
        assert sel == pytest.approx(0.5)

    def test_is_null(self):
        sel = estimate_selectivity(IsNull(C("a")), self._stats())
        assert sel == 0.0


class TestCompressionAwareCost:
    def test_rle_column_cheaper_to_scan(self, tmp_path):
        db = Database(str(tmp_path / "db"), node_count=1)
        db.create_table(
            TableDefinition(
                "t",
                [ColumnDef("sorted_lowcard", types.INTEGER),
                 ColumnDef("random_wide", types.INTEGER)],
            ),
            sort_order=["sorted_lowcard"],
        )
        import random

        rng = random.Random(5)
        rows = [
            {"sorted_lowcard": i % 3, "random_wide": rng.randrange(10**12)}
            for i in range(5000)
        ]
        db.load("t", rows, direct_to_ros=True)
        db.analyze_statistics()
        stats = db.stats.get("t")
        cheap = stats.column("sorted_lowcard").avg_encoded_bytes
        wide = stats.column("random_wide").avg_encoded_bytes
        assert cheap < wide / 5  # RLE vs random varints
        cheap_cost = scan_cost(stats, ["sorted_lowcard"], 1.0)
        wide_cost = scan_cost(stats, ["random_wide"], 1.0)
        assert cheap_cost.io < wide_cost.io


class TestCollect:
    def test_collect_table_stats(self, tmp_path):
        db = Database(str(tmp_path / "db"), node_count=1)
        db.create_table(
            TableDefinition("t", [ColumnDef("x", types.INTEGER)])
        )
        db.load("t", [{"x": i % 10} for i in range(500)], direct_to_ros=True)
        stats = collect_table_stats(db.cluster, "t", db.latest_epoch)
        assert stats.row_count == 500
        assert stats.column("x").min_value == 0
        assert stats.column("x").max_value == 9
        assert 8 <= stats.column("x").ndv <= 12

    def test_empty_table_stats(self, tmp_path):
        db = Database(str(tmp_path / "db"), node_count=1)
        db.create_table(TableDefinition("t", [ColumnDef("x", types.INTEGER)]))
        stats = collect_table_stats(db.cluster, "t", db.latest_epoch)
        assert stats.row_count == 0
