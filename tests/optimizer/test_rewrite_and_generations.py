"""Tests for logical rewrites and the three optimizer generations."""

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution import And, ColumnRef, Comparison, IsNull, Literal
from repro.execution.operators.join import JoinType
from repro.optimizer import (
    FilterNode,
    JoinNode,
    PhysJoin,
    PhysScan,
    ScanNode,
    rewrite,
)
from repro.optimizer import physical as P
from repro.optimizer.rewrite import (
    add_transitive_predicates,
    convert_outer_to_inner,
    push_down_filters,
    split_conjuncts,
)
from repro.projections import Replicated

C = ColumnRef
L = Literal


def scans():
    fact = ScanNode("fact", ["f_id", "dim_id", "v"])
    dim = ScanNode("dim", ["d_id", "name"])
    return fact, dim


class TestPushDown:
    def test_filter_merges_into_scan(self):
        fact, _ = scans()
        plan = FilterNode(fact, C("v") > L(5))
        result = push_down_filters(plan)
        assert result is fact
        assert repr(fact.predicate) == repr(C("v") > L(5))

    def test_join_side_routing(self):
        fact, dim = scans()
        join = JoinNode(fact, dim, JoinType.INNER, [C("dim_id")], [C("d_id")])
        plan = FilterNode(join, And(C("v") > L(5), C("name") == L("x")))
        result = push_down_filters(plan)
        assert result is join
        assert fact.predicate is not None
        assert dim.predicate is not None

    def test_left_join_blocks_null_side_pushdown(self):
        fact, dim = scans()
        join = JoinNode(fact, dim, JoinType.LEFT, [C("dim_id")], [C("d_id")])
        plan = FilterNode(join, IsNull(C("name")))
        result = push_down_filters(plan)
        # predicate on the NULL-extended side must stay above the join
        assert isinstance(result, FilterNode)
        assert dim.predicate is None

    def test_pushdown_through_rename(self):
        scan = ScanNode("fact", ["f_id"], rename={"f_id": "f.f_id"})
        plan = FilterNode(scan, C("f.f_id") > L(3))
        result = push_down_filters(plan)
        assert result is scan
        assert scan.predicate.referenced_columns() == {"f_id"}


class TestTransitivePredicates:
    def test_constant_copied_across_join_keys(self):
        fact, dim = scans()
        dim.predicate = C("d_id") == L(7)
        join = JoinNode(fact, dim, JoinType.INNER, [C("dim_id")], [C("d_id")])
        add_transitive_predicates(join)
        conjuncts = [repr(c) for c in split_conjuncts(fact.predicate)]
        assert "(dim_id = 7)" in conjuncts

    def test_not_applied_to_outer_joins(self):
        fact, dim = scans()
        dim.predicate = C("d_id") == L(7)
        join = JoinNode(fact, dim, JoinType.LEFT, [C("dim_id")], [C("d_id")])
        add_transitive_predicates(join)
        assert fact.predicate is None

    def test_idempotent(self):
        fact, dim = scans()
        dim.predicate = C("d_id") == L(7)
        join = JoinNode(fact, dim, JoinType.INNER, [C("dim_id")], [C("d_id")])
        add_transitive_predicates(join)
        add_transitive_predicates(join)
        assert len(split_conjuncts(fact.predicate)) == 1


class TestOuterToInner:
    def test_null_rejecting_filter_converts(self):
        fact, dim = scans()
        join = JoinNode(fact, dim, JoinType.LEFT, [C("dim_id")], [C("d_id")])
        plan = FilterNode(join, C("name") == L("x"))
        convert_outer_to_inner(plan)
        assert join.join_type is JoinType.INNER

    def test_is_null_filter_does_not_convert(self):
        fact, dim = scans()
        join = JoinNode(fact, dim, JoinType.LEFT, [C("dim_id")], [C("d_id")])
        plan = FilterNode(join, IsNull(C("name")))
        convert_outer_to_inner(plan)
        assert join.join_type is JoinType.LEFT


@pytest.fixture
def star_db(tmp_path):
    db = Database(str(tmp_path / "db"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER),
             ColumnDef("v", types.FLOAT)],
            primary_key=("f_id",),
        )
    )
    db.create_table(
        TableDefinition(
            "dim",
            [ColumnDef("d_id", types.INTEGER), ColumnDef("name", types.VARCHAR)],
            primary_key=("d_id",),
        ),
        segmentation=Replicated(),
    )
    db.load("dim", [{"d_id": i, "name": f"d{i}"} for i in range(20)])
    db.load(
        "fact",
        [{"f_id": i, "dim_id": i % 20, "v": float(i)} for i in range(2000)],
    )
    db.analyze_statistics()
    return db


def star_query():
    return JoinNode(
        ScanNode("fact", ["f_id", "dim_id", "v"]),
        ScanNode("dim", ["d_id", "name"]),
        JoinType.INNER,
        [C("dim_id")],
        [C("d_id")],
    )


class TestGenerations:
    def test_staropt_plans_star_colocated(self, star_db):
        plan = star_db.planner("star").plan(star_query())
        joins = [n for n in plan.walk() if isinstance(n, PhysJoin)]
        assert len(joins) == 1
        assert joins[0].strategy == P.COLOCATED

    def test_staropt_puts_fact_on_probe_side(self, star_db):
        plan = star_db.planner("star").plan(star_query())
        join = next(n for n in plan.walk() if isinstance(n, PhysJoin))
        left_scan = next(
            n for n in join.left.walk() if isinstance(n, PhysScan)
        )
        assert left_scan.table == "fact"

    def test_v2_uses_sip_on_hash_joins(self, star_db):
        plan = star_db.planner("v2").plan(star_query())
        join = next(n for n in plan.walk() if isinstance(n, PhysJoin))
        if join.algorithm == "hash" and join.strategy != P.RESEGMENT:
            assert join.sip

    def test_all_generations_same_results(self, star_db):
        for optimizer in ("star", "starified", "v2"):
            rows = star_db.query(star_query(), optimizer=optimizer)
            assert len(rows) == 2000

    def test_projection_choice_prefers_predicate_sorted(self, star_db):
        from repro.projections import HashSegmentation, ProjectionColumn, ProjectionDefinition

        narrow = ProjectionDefinition(
            name="fact_by_v",
            anchor_table="fact",
            columns=[
                ProjectionColumn("v", types.FLOAT),
                ProjectionColumn("f_id", types.INTEGER),
                ProjectionColumn("dim_id", types.INTEGER),
            ],
            sort_order=["v"],
            segmentation=HashSegmentation(("f_id",)),
        )
        star_db.add_projection(narrow)
        star_db.analyze_statistics()
        query = ScanNode("fact", ["f_id"], predicate=C("v") > L(1990.0))
        plan = star_db.planner("v2").plan(query)
        scan = next(n for n in plan.walk() if isinstance(n, PhysScan))
        assert scan.family_name == "fact_by_v"

    def test_merge_join_chosen_for_matching_sort_orders(self, tmp_path):
        db = Database(str(tmp_path / "mj"), node_count=1)
        db.create_table(
            TableDefinition(
                "a", [ColumnDef("k", types.INTEGER), ColumnDef("x", types.INTEGER)]
            ),
            sort_order=["k"],
            segmentation=Replicated(),
        )
        db.create_table(
            TableDefinition(
                "b", [ColumnDef("k2", types.INTEGER), ColumnDef("y", types.INTEGER)]
            ),
            sort_order=["k2"],
            segmentation=Replicated(),
        )
        db.load("a", [{"k": i, "x": i} for i in range(100)])
        db.load("b", [{"k2": i, "y": i} for i in range(100)])
        db.analyze_statistics()
        query = JoinNode(
            ScanNode("a", ["k", "x"]),
            ScanNode("b", ["k2", "y"]),
            JoinType.INNER,
            [C("k")],
            [C("k2")],
        )
        plan = db.planner("v2").plan(query)
        join = next(n for n in plan.walk() if isinstance(n, PhysJoin))
        assert join.algorithm == "merge"
        rows = db.query(query)
        assert len(rows) == 100

    def test_v2_costs_resegment_vs_broadcast(self, star_db, tmp_path):
        # two large co-segmented-on-wrong-keys tables: v2 resegments,
        # starified broadcasts; both must agree on results.
        db = Database(str(tmp_path / "rs"), node_count=3, k_safety=1)
        for name, key in (("big1", "a"), ("big2", "b")):
            db.create_table(
                TableDefinition(
                    name,
                    [ColumnDef(key, types.INTEGER), ColumnDef("j" + name, types.INTEGER)],
                    primary_key=(key,),
                )
            )
        db.load("big1", [{"a": i, "jbig1": i % 50} for i in range(1000)])
        db.load("big2", [{"b": i, "jbig2": i % 50} for i in range(1000)])
        db.analyze_statistics()
        query = JoinNode(
            ScanNode("big1", ["a", "jbig1"]),
            ScanNode("big2", ["b", "jbig2"]),
            JoinType.INNER,
            [C("jbig1")],
            [C("jbig2")],
        )
        v2_plan = db.planner("v2").plan(query)
        v2_join = next(n for n in v2_plan.walk() if isinstance(n, PhysJoin))
        assert v2_join.strategy in (P.RESEGMENT, P.BROADCAST_INNER)
        star_plan = db.planner("starified").plan(query)
        star_join = next(n for n in star_plan.walk() if isinstance(n, PhysJoin))
        assert star_join.strategy == P.BROADCAST_INNER
        assert len(db.query(query, optimizer="v2")) == 20000
        assert len(db.query(query, optimizer="starified")) == 20000

    def test_rewrite_wrapper(self):
        fact, dim = scans()
        dim.predicate = C("d_id") == L(3)
        join = JoinNode(fact, dim, JoinType.LEFT, [C("dim_id")], [C("d_id")])
        plan = FilterNode(join, C("name") == L("x"))
        result = rewrite(plan)
        assert join.join_type is JoinType.INNER  # converted
        conjuncts = [repr(c) for c in split_conjuncts(fact.predicate)]
        assert "(dim_id = 3)" in conjuncts  # transitive after conversion
