#!/bin/sh
# One-shot correctness gate: static analysis, then the full test suite
# with the runtime invariant sanitizer enabled.  Run from the repo root:
#
#     sh tools/check.sh
#
# Exits non-zero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Seed derived from the current commit: the chaos and fuzz stages mix
# it in so every commit explores a fresh deterministic point of the
# fault/query space.
GIT_SEED=$(python - <<'EOF'
import subprocess
proc = subprocess.run(
    ["git", "rev-parse", "HEAD"], capture_output=True, text=True
)
sha = proc.stdout.strip() or "0"
print(int(sha[:8], 16) % 100000)
EOF
)

echo "== replint static analysis (src/repro, tests) =="
python -m repro.lint src/repro tests

echo "== concurrency lint: lock-order graph + guarded-by audit (R9/R10) =="
python -m repro.lint --concurrency src/repro

echo "== thread-stress smoke: 8 threads x SELECTs under the race detector =="
REPRO_SANITIZE=1 python -m pytest -q tests/lint/test_thread_stress.py

echo "== session-stress: seeded multi-session mixed workload (sanitizer on) =="
# Eight governed sessions on an undersized pool: admission queueing,
# lockset race detection and the no-leak postcondition, on a fixed
# seed so any failure replays exactly.
REPRO_SANITIZE=1 python -m pytest -q tests/service/test_session_stress.py

echo "== lint + sanitizer suite (pytest -m lint) =="
REPRO_SANITIZE=1 python -m pytest -q -m lint

echo "== full test suite (sanitizer on) =="
REPRO_SANITIZE=1 python -m pytest -q

echo "== chaos suite: fault injection + crash recovery (pytest -m chaos) =="
REPRO_SANITIZE=1 python -m pytest -q -m chaos

echo "== kernel differential: fuzz corpus through both engines =="
# Every fuzz query runs on the vectorized kernels AND the forced row
# engine (plus the oracle); one pinned extra seed and one derived from
# the commit SHA extend the base corpus.  Zero divergences required.
echo "   extra seeds: 7, ${GIT_SEED} (git-derived)"
REPRO_FUZZ_SEEDS="7,${GIT_SEED}" REPRO_SANITIZE=1 \
    python -m pytest -q tests/integration/test_sql_differential_fuzz.py

echo "== chaos seeds: two fixed + one fresh from the git SHA =="
# The self-healing scenarios re-run on pinned seeds (regression
# anchors) plus one seed derived from the current commit, so every
# commit explores a fresh point of the fault space deterministically.
echo "   seeds: 101, 202, ${GIT_SEED} (git-derived)"
REPRO_CHAOS_SEEDS="101,202,${GIT_SEED}" REPRO_SANITIZE=1 \
    python -m pytest -q -m chaos tests/chaos/test_self_healing.py

echo "== crash-restart: kill-anywhere durability sweep =="
# Every durability fault point x allowed action: a fixed workload is
# crashed (or silently corrupted) mid-flight, the database reopens
# from disk, and the recovered state must be an exact op-boundary
# snapshot of a fault-free oracle run.  Two pinned seeds anchor
# regressions; one derived from the commit SHA explores fresh offsets.
echo "   seeds: 11, 23, ${GIT_SEED} (git-derived)"
REPRO_CRASH_SEEDS="11,23,${GIT_SEED}" REPRO_SANITIZE=1 \
    python -m pytest -q tests/chaos/test_kill_anywhere.py

echo "== Cluster.scrub() smoke =="
python - <<'EOF'
import shutil, tempfile
from repro import types
from repro.cluster import Cluster
from repro.core.schema import ColumnDef, TableDefinition

root = tempfile.mkdtemp(prefix="scrub_smoke_")
try:
    cluster = Cluster(root, node_count=3, k_safety=1)
    table = TableDefinition(
        "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)]
    )
    cluster.create_table(table, sort_order=["k"])
    epoch = cluster.commit_dml(
        {"t": [{"k": i, "v": f"row{i}"} for i in range(64)]}, [], 0,
        direct_to_ros=True,
    )
    report = cluster.scrub()
    assert report.clean(), f"fresh cluster scrub found damage: {report}"
    rows = cluster.read_table("t", epoch)
    assert len(rows) == 64, f"expected 64 rows after scrub, got {len(rows)}"
    print("scrub smoke OK: clean pass over", cluster.node_count, "nodes")
finally:
    shutil.rmtree(root, ignore_errors=True)
EOF

echo "== trace smoke: distributed query -> spans on every node -> Perfetto JSON =="
# A traced 3-node aggregate (tracing + sanitizer both on) must produce
# one statement trace whose spans cover parse -> plan -> execute on
# every participating node, export as valid Chrome trace-event JSON
# (one pid per node plus the coordinator), and be queryable back
# through v_monitor.trace_spans.
REPRO_TRACE=1 REPRO_SANITIZE=1 python - <<'EOF'
import json, shutil, tempfile
from repro import ColumnDef, Database, TableDefinition, types
from repro.trace import TraceSink

root = tempfile.mkdtemp(prefix="trace_smoke_")
try:
    db = Database(root + "/db", node_count=3, k_safety=1)
    db.create_table(TableDefinition(
        "t", [ColumnDef("a", types.INTEGER), ColumnDef("b", types.INTEGER)],
        primary_key=("a",),
    ))
    db.load("t", [{"a": i, "b": i % 5} for i in range(300)])
    db.analyze_statistics()
    db.sql("SELECT b, COUNT(*) AS n FROM t GROUP BY b ORDER BY b")
    sink = TraceSink()
    trace = sink.latest()
    assert trace.root.name == "statement", trace.root.name
    names = {span.name for span in trace.spans}
    for required in ("sql.parse", "optimizer.plan", "executor.attempt"):
        assert required in names, f"missing span {required}: {sorted(names)}"
    assert trace.nodes() == [0, 1, 2], trace.nodes()
    doc = json.loads(json.dumps(sink.to_chrome_trace([trace.trace_id])))
    pids = {event["pid"] for event in doc["traceEvents"]}
    assert pids == {0, 1, 2, 3}, pids
    spans = db.sql(
        "SELECT span_id FROM v_monitor.trace_spans "
        f"WHERE trace_id = '{trace.trace_id}'"
    )
    assert len(spans) == len(trace.spans), (len(spans), len(trace.spans))
    print("trace smoke OK:", len(trace.spans), "spans across nodes",
          trace.nodes())
finally:
    shutil.rmtree(root, ignore_errors=True)
EOF

echo "== data collector: kill-mid-flush crash-restart + console snapshot =="
# The DC segments reuse the stage/publish fault points: a flush is
# crashed or torn mid-write, the database reopens, and the dc_* tables
# must serve an exact record-prefix of the history.  Then the console
# front end renders a one-shot snapshot of a database that has been
# through load -> query -> failover -> restart.
REPRO_SANITIZE=1 python -m pytest -q tests/dc/test_dc_crash_restart.py \
    tests/dc/test_dc_acceptance.py
python - <<'EOF'
import shutil, subprocess, sys, tempfile
from repro import ColumnDef, Database, TableDefinition, types

root = tempfile.mkdtemp(prefix="console_smoke_")
try:
    db = Database(root + "/db", node_count=3, k_safety=1)
    db.create_table(TableDefinition(
        "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
    ), sort_order=["k"])
    db.sql("INSERT INTO t VALUES (1, 10), (2, 20)")
    db.sql("SELECT v FROM t WHERE k = 1")
    db.cluster.run_tuple_movers()
    del db
    proc = subprocess.run(
        [sys.executable, "-m", "repro.console",
         "--db", root + "/db", "--snapshot"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stderr
    for section in ("NODES", "ALERTS", "RECENT REQUESTS", "NODE EVENTS"):
        assert section in proc.stdout, f"missing section {section}"
    assert "select" in proc.stdout, "pre-restart history not served"
    print("console smoke OK: snapshot rendered pre-restart history")
finally:
    shutil.rmtree(root, ignore_errors=True)
EOF

echo "== perf smoke: bench harness writes BENCH_PR9.json =="
# Scaled-down benches through benchmarks/conftest.py, which records
# wall time plus the metrics-registry movement (blocks pruned, bytes
# decoded, mergeouts, failover retries, admission activity, ...) per
# bench into BENCH_PR9.json at the repo root.  The full report comes
# from the same command without the scale-down env vars:
#     python -m pytest benchmarks/ -q
REPRO_T4B_ROWS=20000 REPRO_FAILOVER_ROWS=8000 \
REPRO_SESSION_STATEMENTS=2 REPRO_RESTART_COMMITS=12 \
REPRO_DC_STATEMENTS=100 python -m pytest \
    benchmarks/bench_figure3_plan.py benchmarks/bench_degraded_failover.py \
    benchmarks/bench_concurrent_sessions.py \
    benchmarks/bench_restart_recovery.py \
    benchmarks/bench_dc_overhead.py -q
test -s BENCH_PR9.json
python - <<'EOF'
import json
report = json.load(open("BENCH_PR9.json"))
assert report["benches"], "BENCH_PR9.json has no bench entries"
for name, bench in report["benches"].items():
    assert bench["seconds"] >= 0 and "metrics" in bench, name
print("perf smoke OK:", len(report["benches"]), "bench entries recorded")
EOF

# mypy is optional tooling; the [tool.mypy] config in pyproject.toml
# scopes it to the typed public modules when it is available.
if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (typed public modules) =="
    mypy
else
    echo "== mypy not installed; skipping =="
fi

echo "All checks passed."
