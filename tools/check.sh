#!/bin/sh
# One-shot correctness gate: static analysis, then the full test suite
# with the runtime invariant sanitizer enabled.  Run from the repo root:
#
#     sh tools/check.sh
#
# Exits non-zero on the first failing stage.
set -eu

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== replint static analysis (src/repro, tests) =="
python -m repro.lint src/repro tests

echo "== lint + sanitizer suite (pytest -m lint) =="
REPRO_SANITIZE=1 python -m pytest -q -m lint

echo "== full test suite (sanitizer on) =="
REPRO_SANITIZE=1 python -m pytest -q

# mypy is optional tooling; the [tool.mypy] config in pyproject.toml
# scopes it to the typed public modules when it is available.
if command -v mypy >/dev/null 2>&1; then
    echo "== mypy (typed public modules) =="
    mypy
else
    echo "== mypy not installed; skipping =="
fi

echo "All checks passed."
