#!/usr/bin/env python3
"""Figure 1 as a narrative: tables, projections, segments (§3).

Recreates the paper's sales example — a super projection sorted by
date segmented by HASH(sale_id), and a narrow (cust, price) projection
sorted by cust segmented by HASH(cust) — and shows how the optimizer
picks between them, how encodings differ per projection, and how
buddies place rows for K-safety.

Run:  python examples/projections_and_segmentation.py
"""

import tempfile

from repro import Database, types
from repro.projections import (
    HashSegmentation,
    ProjectionColumn,
    ProjectionDefinition,
)

SALES = [
    (1, 11, "Andrew", "2006-01-01", 100.0),
    (2, 17, "Chuck", "2006-01-05", 98.0),
    (3, 27, "Nga", "2006-01-02", 90.0),
    (4, 28, "Matt", "2006-01-03", 101.0),
    (5, 89, "Ben", "2006-01-01", 103.0),
    (1000, 89, "Ben", "2006-01-02", 103.0),
    (1001, 11, "Andrew", "2006-01-03", 95.0),
]


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_fig1_"),
                  node_count=3, k_safety=1)
    db.sql(
        "CREATE TABLE sales (sale_id INTEGER, cid INTEGER, cust VARCHAR,"
        " sale_date DATE, price FLOAT, PRIMARY KEY (sale_id))"
    )

    print("== the figure's second projection, via SQL DDL ==")
    db.sql(
        "CREATE PROJECTION sales_cust_price (cust ENCODING RLE, price) AS"
        " SELECT cust, price FROM sales ORDER BY cust"
        " SEGMENTED BY HASH(cust) ALL NODES"
    )

    rows = [f"{sid}|{cid}|{cust}|{date}|{price}"
            for sid, cid, cust, date, price in SALES]
    db.sql("COPY sales FROM STDIN", copy_rows=rows)
    db.run_tuple_movers()
    db.analyze_statistics()

    print("\n== catalog ==")
    for family in db.cluster.catalog.families_for_table("sales"):
        for copy in family.all_copies:
            marker = "buddy " if copy.buddy_offset else ""
            print(f"  {marker}{copy.describe()}")

    print("\n== physical placement (the figure's bottom half) ==")
    for family in db.cluster.catalog.families_for_table("sales"):
        print(f"  {family.primary.name}:")
        for node in db.cluster.nodes:
            stored = node.manager.read_visible_rows(
                family.primary.name, db.latest_epoch)
            keys = [str(r.get("sale_id", r.get("cust"))) for r in stored]
            print(f"    {node.name}: {', '.join(keys) or '(empty)'}")

    print("\n== buddies never co-locate a row with the primary ==")
    family = db.cluster.catalog.super_projection_for("sales")
    for node in db.cluster.nodes:
        primary_ids = {r["sale_id"] for r in node.manager.read_visible_rows(
            family.primary.name, db.latest_epoch)}
        buddy_ids = {r["sale_id"] for r in node.manager.read_visible_rows(
            family.buddies[0].name, db.latest_epoch)}
        print(f"  {node.name}: primary {sorted(primary_ids)} "
              f"| buddy {sorted(buddy_ids)} "
              f"| overlap {sorted(primary_ids & buddy_ids)}")

    print("\n== the optimizer picks the projection per query ==")
    for sql in (
        "SELECT cust, sum(price) AS total FROM sales GROUP BY cust",
        "SELECT sale_id, sale_date FROM sales WHERE sale_id = 1000",
    ):
        plan = db.sql("EXPLAIN " + sql)
        scan_line = next(line for line in plan.splitlines() if "Scan" in line)
        print(f"  {sql}")
        print(f"    -> {scan_line.strip()}")

    print("\n== per-projection encodings on real storage ==")
    for family in db.cluster.catalog.families_for_table("sales"):
        name = family.primary.name
        for node in db.cluster.nodes:
            state = node.manager.storage(name)
            for container in state.containers.values():
                encodings = {
                    column: container.column_reader(column).blocks[0].encoding
                    for column in container.meta.columns
                }
                print(f"  {name} on {node.name}: {encodings}")
                break
            break


if __name__ == "__main__":
    main()
