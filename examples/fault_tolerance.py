#!/usr/bin/env python3
"""K-safety, node failure, recovery, rebalance and backup (§5).

Demonstrates the cluster behaviours the paper describes: buddy
projections keeping queries alive through a node failure, incremental
two-phase recovery, the AHM holding while a node is down, elastic
rebalance to more nodes, and hard-link-style backup/restore.

Run:  python examples/fault_tolerance.py
"""

import tempfile

from repro import Database
from repro.cluster import create_backup, rebalance, restore_backup


def count(db):
    return db.sql("SELECT count(*) AS n FROM events")[0]["n"]


def main() -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_ha_"),
                  node_count=3, k_safety=1)
    db.sql("CREATE TABLE events (eid INTEGER, v FLOAT, PRIMARY KEY (eid))")
    db.sql("COPY events FROM STDIN",
           copy_rows=[{"eid": i, "v": float(i)} for i in range(5000)])
    db.run_tuple_movers()
    print(f"loaded {count(db)} rows on 3 nodes "
          f"(K=1: every row also lives on a buddy node)")

    print("\n== node 1 crashes ==")
    db.fail_node(1)
    print("   up nodes:", db.cluster.membership.up_nodes())
    print("   queries still answer via buddy projections:",
          count(db), "rows")

    print("\n== DML lands while the node is down ==")
    db.sql("COPY events FROM STDIN",
           copy_rows=[{"eid": i, "v": 0.0} for i in range(5000, 7000)])
    db.sql("DELETE FROM events WHERE eid < 500")
    print("   table now:", count(db), "rows")
    db.cluster.epochs.advance_ahm()
    print("   AHM held at", db.cluster.epochs.ahm,
          "(history preserved for recovery replay)")

    print("\n== recovery (historical phase, then current phase) ==")
    report = db.recover_node(1, historical_lag=1)
    print(f"   truncated {report.truncated_rows} post-LGE rows, "
          f"replayed {report.historical_rows} historical + "
          f"{report.current_rows} current rows")
    print("   up nodes:", db.cluster.membership.up_nodes(),
          "->", count(db), "rows")

    print("\n== elastic rebalance: 3 -> 5 nodes ==")
    result = rebalance(db.cluster, 5)
    print(f"   moved {result.rows_moved} row-copies; "
          f"cluster is now {db.cluster.node_count} nodes")
    print("   all data intact:", count(db), "rows")

    print("\n== backup and restore ==")
    backup_dir = tempfile.mkdtemp(prefix="repro_backup_")
    image = create_backup(db.cluster, backup_dir)
    print(f"   backup: {len(image.entries)} hard-linked containers "
          f"at epoch {image.epoch}")
    # simulate catastrophic data loss on every node, then restore
    family = db.cluster.catalog.super_projection_for("events")
    for node in db.cluster.nodes:
        for copy in family.all_copies:
            state = node.manager.storage(copy.name)
            node.manager.remove_containers(copy.name, list(state.containers))
    print("   after wipe:", count(db), "rows")
    restored = restore_backup(db.cluster, image)
    print(f"   restored {restored} containers ->", count(db), "rows")


if __name__ == "__main__":
    main()
