#!/usr/bin/env python3
"""Table 3 as a script: Vertica-style engine vs the C-Store baseline.

Loads the C-Store benchmark (TPC-H-derived lineitem/orders), runs the
seven queries on both engines, verifies they agree, and prints the
per-query times plus the disk comparison — the interactive version of
`benchmarks/bench_table3_cstore_vs_vertica.py`.

Run:  python examples/cstore_shootout.py [scale]
"""

import sys
import tempfile
import time

from repro import Database
from repro.cstore import CStoreDatabase, CStoreEngine
from repro.workloads import cstore_benchmark as bench


def best_of(fn, repeats=3):
    fn()
    return min(
        (lambda s: (fn(), time.perf_counter() - s)[1])(time.perf_counter())
        for _ in range(repeats)
    ) * 1000


def main(scale: float = 0.25) -> None:
    data = bench.generate(scale=scale)
    print(f"benchmark data: {data.lineitem_rows} lineitem rows, "
          f"{data.orders_rows} orders rows (scale {scale})")

    print("\nloading the C-Store-2005-style baseline...")
    baseline = CStoreDatabase(tempfile.mkdtemp(prefix="repro_cstore_"))
    baseline.create_table(bench.lineitem_table())
    baseline.create_table(bench.orders_table())
    baseline.load("lineitem", data.lineitem)
    baseline.load("orders", data.orders)
    engine = CStoreEngine(baseline)

    print("loading the Vertica-style engine...")
    vertica = Database(tempfile.mkdtemp(prefix="repro_vertica_"), node_count=1)
    vertica.create_table(bench.lineitem_table())
    vertica.create_table(bench.orders_table())
    vertica.load("lineitem", data.lineitem, direct_to_ros=True)
    vertica.load("orders", data.orders, direct_to_ros=True)
    vertica.run_tuple_movers()
    vertica.analyze_statistics()

    def normalize(rows):
        return sorted(
            tuple(sorted((k, round(v, 6) if isinstance(v, float) else v)
                         for k, v in row.items()))
            for row in rows
        )

    print(f"\n{'query':6} {'cstore ms':>10} {'vertica ms':>11} {'speedup':>8}")
    total_c = total_v = 0.0
    for spec in bench.queries():
        assert normalize(engine.run(spec)) == normalize(vertica.sql(spec.sql)), \
            f"{spec.name}: engines disagree!"
        ms_c = best_of(lambda s=spec: engine.run(s))
        ms_v = best_of(lambda s=spec: vertica.sql(s.sql))
        total_c += ms_c
        total_v += ms_v
        print(f"{spec.name:6} {ms_c:10.1f} {ms_v:11.1f} {ms_c / ms_v:7.2f}x")
    print(f"{'Total':6} {total_c:10.1f} {total_v:11.1f} "
          f"{total_c / total_v:7.2f}x   (paper: 1.95x)")

    disk_c = baseline.total_data_bytes()
    disk_v = vertica.cluster.total_data_bytes()
    print(f"\ndisk: baseline {disk_c / 1e6:.2f} MB, "
          f"vertica {disk_v / 1e6:.2f} MB -> {disk_c / disk_v:.2f}x smaller "
          "(paper: 2.09x)")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
