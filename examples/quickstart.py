#!/usr/bin/env python3
"""Quickstart: create a 3-node K-safe cluster, load data, run SQL.

Walks through the basic lifecycle of the repro analytic database:
DDL, bulk load (with rejected-record handling), queries with
aggregation and joins, UPDATE/DELETE with historical (AT EPOCH)
queries, and EXPLAIN.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import Database


def main() -> None:
    # A simulated 3-node shared-nothing cluster, 1-safe (every row has
    # a buddy copy on another node).
    db = Database(tempfile.mkdtemp(prefix="repro_quickstart_"),
                  node_count=3, k_safety=1)

    print("== DDL ==")
    db.sql(
        "CREATE TABLE sales ("
        "  sale_id INTEGER, cid INTEGER, cust VARCHAR,"
        "  sale_date DATE, price FLOAT,"
        "  PRIMARY KEY (sale_id))"
    )
    db.sql(
        "CREATE TABLE customers ("
        "  cid INTEGER, name VARCHAR, region VARCHAR,"
        "  PRIMARY KEY (cid))"
    )
    print("created tables:", db.cluster.catalog.table_names())

    print("\n== bulk load (COPY) ==")
    customers = [f"{c}|customer_{c}|{'east' if c % 2 else 'west'}"
                 for c in range(100)]
    customers.append("oops|not_a_number|east")  # a bad record
    result = db.sql("COPY customers (cid, name, region) FROM STDIN",
                    copy_rows=customers)
    print(f"loaded {result.loaded} customers, "
          f"rejected {len(result.rejected)} bad record(s):")
    for line_number, text, reason in result.rejected:
        print(f"  line {line_number}: {text!r} -> {reason}")

    sales = [
        {"sale_id": i, "cid": i % 100, "cust": f"customer_{i % 100}",
         "sale_date": i % 365, "price": round(10 + (i % 90) * 1.5, 2)}
        for i in range(10_000)
    ]
    db.sql("COPY sales FROM STDIN", copy_rows=sales)
    db.analyze_statistics()

    print("\n== queries ==")
    for sql in (
        "SELECT count(*) AS sales_count FROM sales",
        "SELECT region, count(*) AS n, sum(price) AS revenue "
        "  FROM sales JOIN customers ON sales.cid = customers.cid "
        "  GROUP BY region ORDER BY region",
        "SELECT cust, sum(price) AS total FROM sales "
        "  GROUP BY cust ORDER BY total DESC LIMIT 3",
    ):
        print(f"\n  {sql.strip()}")
        for row in db.sql(sql):
            print(f"    {row}")

    print("\n== updates, deletes and time travel ==")
    before = db.latest_epoch
    db.sql("UPDATE sales SET price = 0.0 WHERE sale_id = 7")
    db.sql("DELETE FROM sales WHERE cid = 13")
    print("  now:   ", db.sql("SELECT count(*) AS n FROM sales")[0])
    print("  before:", db.sql(
        f"AT EPOCH {before} SELECT count(*) AS n FROM sales")[0])

    print("\n== EXPLAIN ==")
    print(db.sql(
        "EXPLAIN SELECT region, count(*) FROM sales "
        "JOIN customers ON sales.cid = customers.cid GROUP BY region"
    ))

    print("\n== maintenance: tuple mover ==")
    family = db.cluster.catalog.super_projection_for("sales")
    node = db.cluster.nodes[0]
    print("  WOS rows before moveout:",
          node.manager.wos_row_count(family.primary.name))
    db.run_tuple_movers()
    print("  WOS rows after moveout: ",
          node.manager.wos_row_count(family.primary.name))
    print("  ROS containers on node00:",
          node.manager.container_count(family.primary.name))


if __name__ == "__main__":
    main()
