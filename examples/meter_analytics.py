#!/usr/bin/env python3
"""Meter telemetry analytics: the paper's customer workload (§8.2.2).

Loads the 4-column meter/metric/timestamp/value data set whose
compression Table 4 measures, lets the Database Designer propose a
projection design for the analytic queries, and runs the queries —
including SQL-99 window functions (the Analytic operator of §6.1).

Run:  python examples/meter_analytics.py [rows]
"""

import sys
import tempfile

from repro import Database
from repro.designer import DatabaseDesigner
from repro.workloads import meters


def main(target_rows: int = 100_000) -> None:
    db = Database(tempfile.mkdtemp(prefix="repro_meters_"),
                  node_count=3, k_safety=1)

    print(f"== generating ~{target_rows} telemetry rows ==")
    spec = meters.spec_for_rows(target_rows)
    rows = list(meters.generate(spec))
    print(f"   {spec.metrics} metrics x {spec.meters} meters x "
          f"{spec.readings_per_series} readings = {len(rows)} rows")

    db.create_table(meters.meters_table(),
                    sort_order=["metric", "meter", "ts"])
    db.load("meter_readings", rows, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()

    raw_bytes = sum(len(meters.csv_line(row)) + 1 for row in rows)
    stored = db.cluster.total_data_bytes()
    print(f"   raw CSV {raw_bytes / 1e6:.1f} MB -> stored "
          f"{stored / 1e6:.1f} MB across the cluster "
          f"({raw_bytes / (stored / 2):.1f}x per copy; "
          "the cluster keeps 2 copies for K-safety)")

    workload = [
        "SELECT metric, count(*) AS readings, avg(value) AS mean "
        "  FROM meter_readings GROUP BY metric",
        "SELECT meter, max(value) AS peak FROM meter_readings "
        "  WHERE metric = 'metric_0001' GROUP BY meter",
    ]

    print("\n== Database Designer ==")
    designer = DatabaseDesigner(db)
    proposal = designer.design_sql(workload, policy="balanced")
    print(proposal.summary())
    created = designer.deploy(proposal)
    print(f"   deployed {created} projection(s)")
    db.analyze_statistics()

    print("\n== analytics ==")
    for sql in workload:
        print(f"\n  {sql.strip()}")
        for row in db.sql(sql)[:5]:
            print(f"    {row}")

    print("\n== window functions: top reading per meter ==")
    sql = (
        "SELECT meter, ts, value, "
        "  RANK() OVER (PARTITION BY meter ORDER BY value DESC) AS r "
        "FROM meter_readings WHERE metric = 'metric_0002'"
    )
    top = [row for row in db.sql(sql) if row["r"] == 1][:5]
    for row in top:
        print(f"    {row}")

    print("\n== fast bulk deletion by partition-style predicate ==")
    before = db.sql("SELECT count(*) AS n FROM meter_readings")[0]["n"]
    db.sql("DELETE FROM meter_readings WHERE metric = 'metric_0000'")
    after = db.sql("SELECT count(*) AS n FROM meter_readings")[0]["n"]
    print(f"   {before} -> {after} rows "
          "(historical snapshots still see the deleted series)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
