"""Repo-root pytest configuration.

Puts ``src/`` on sys.path so the test and benchmark suites run against
the in-tree package even when it has not been pip-installed (useful in
offline environments where editable installs are awkward).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
