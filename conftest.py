"""Repo-root pytest configuration.

Puts ``src/`` on sys.path so the test and benchmark suites run against
the in-tree package even when it has not been pip-installed (useful in
offline environments where editable installs are awkward), and turns
on the replint runtime sanitizer for the whole suite so every test run
doubles as an invariant check (CI sets nothing; opt out locally with
``REPRO_SANITIZE=0``).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

import pytest  # noqa: E402


@pytest.fixture(autouse=True)
def _repro_sanitize():
    """Enable runtime invariant checks for every test.

    ``REPRO_SANITIZE=0`` disables (e.g. for timing-sensitive benchmark
    runs); any other setting — including unset — leaves them on.
    """
    from repro.lint import sanitizer

    if os.environ.get("REPRO_SANITIZE", "") == "0":
        yield
        return
    with sanitizer.override(True):
        yield
