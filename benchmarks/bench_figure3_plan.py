"""Figure 3: the parallel group-by plan.

The figure shows the plan for::

    SELECT dept_id, count(*) FROM departments
    GROUP BY dept_id HAVING count(*) < 10;

as a tree: Scans feeding a StorageUnion that locally resegments into
parallel prepass GroupBys, a ParallelUnion over final GroupBys and a
Filter.  This bench (a) prints the optimizer's plan for the same SQL,
(b) builds the figure's exact operator tree out of the execution
engine's operators and runs it, verifying both agree.
"""

from __future__ import annotations

import time

import pytest

from conftest import _emit, env_int

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution.kernels import force_row_engine
from repro.monitor import METRICS
from repro.execution import (
    AggregateSpec,
    ColumnRef,
    FilterOperator,
    GroupByHashOperator,
    Literal,
    ParallelUnionOperator,
    PrepassGroupByOperator,
    ScanOperator,
    StorageUnionOperator,
)

C = ColumnRef
L = Literal

SQL = (
    "SELECT dept_id, count(*) AS count FROM departments "
    "GROUP BY dept_id HAVING count(*) < 10"
)


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("fig3")), node_count=1)
    db.create_table(
        TableDefinition(
            "departments",
            [ColumnDef("dept_id", types.INTEGER), ColumnDef("emp", types.VARCHAR)],
        ),
        sort_order=["dept_id"],
    )
    rows = []
    for dept in range(40):
        # departments 0..19 small (< 10 employees), 20..39 large
        size = 3 if dept < 20 else 25
        for employee in range(size):
            rows.append({"dept_id": dept, "emp": f"e{dept}_{employee}"})
    db.load("departments", rows, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db


def test_optimizer_plan_shape(benchmark, db):
    """The optimizer's plan for the figure's SQL."""
    text = db.sql("EXPLAIN " + SQL)
    _emit("\n=== Figure 3 — optimizer plan for the figure's query ===")
    _emit(text)
    assert "GroupBy" in text
    assert "HAVING" in text
    assert "Scan" in text
    benchmark.pedantic(lambda: db.sql('EXPLAIN ' + SQL), rounds=1, iterations=1)


def test_handbuilt_figure3_tree(benchmark, db):
    """Build the figure's exact operator topology and execute it."""
    family = db.cluster.catalog.super_projection_for("departments")
    manager = db.cluster.nodes[0].manager
    # bottom: scans over ROS regions feeding a StorageUnion that
    # resegments by dept_id across two local pipelines
    scan = ScanOperator(manager, family.primary.name, db.latest_epoch, ["dept_id"])
    union = StorageUnionOperator(
        [scan], resegment_exprs=[C("dept_id")], fanout=2
    )
    aggregates = [AggregateSpec("COUNT", None, "count")]
    pipelines = []
    for pipe_index in range(2):
        prepass = PrepassGroupByOperator(
            union.pipeline_source(pipe_index),
            [C("dept_id")], ["dept_id"], aggregates, table_size=8,
        )
        final = GroupByHashOperator(
            prepass, [C("dept_id")], ["dept_id"], aggregates,
            merge_partials=True,
        )
        pipelines.append(FilterOperator(final, C("count") < L(10)))
    plan = ParallelUnionOperator(pipelines, threads=2)
    _emit("\n=== Figure 3 — hand-built operator tree ===")
    _emit(plan.explain())
    rows = plan.rows()
    # exactly the 20 small departments pass the HAVING filter
    assert sorted(row["dept_id"] for row in rows) == list(range(20))
    assert all(row["count"] == 3 for row in rows)
    # and the SQL path agrees
    sql_rows = db.sql(SQL)
    assert sorted(
        (row["dept_id"], row["count"]) for row in sql_rows
    ) == sorted((row["dept_id"], row["count"]) for row in rows)
    benchmark.pedantic(lambda: db.sql(SQL), rounds=1, iterations=1)


def test_figure3_query_benchmark(benchmark, db):
    benchmark(lambda: db.sql(SQL))


# -- operate-on-compressed speedup ---------------------------------------

#: Rows for the kernel-vs-row timing table (sorted dept_id -> long RLE
#: runs, exactly the layout run arithmetic exploits).
FIG3_KERNEL_ROWS = env_int("REPRO_FIG3_ROWS", 120000)


@pytest.fixture(scope="module")
def big_departments(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("fig3big")), node_count=1)
    db.create_table(
        TableDefinition(
            "departments",
            [ColumnDef("dept_id", types.INTEGER), ColumnDef("emp", types.VARCHAR)],
        ),
        sort_order=["dept_id"],
    )
    per_dept = max(1, FIG3_KERNEL_ROWS // 40)
    rows = [
        {"dept_id": dept, "emp": f"e{employee % 50}"}
        for dept in range(40)
        for employee in range(per_dept)
    ]
    db.load("departments", rows, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db


def _best_ms(fn, repeats: int = 9) -> float:
    fn()  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000


def test_figure3_kernel_vs_row_speedup(benchmark, big_departments):
    """The figure's workload shape on compressed blocks: RLE run
    arithmetic and range selections vs. the per-row fallback.  The
    best ratio lands in BENCH_PR9.json as a x100 counter."""
    db = big_departments
    queries = [
        "SELECT count(*) AS n FROM departments WHERE dept_id = 7",
        "SELECT dept_id, count(*) AS n FROM departments "
        "WHERE dept_id BETWEEN 5 AND 9 GROUP BY dept_id",
    ]
    table = []
    best_ratio = 0.0
    for sql in queries:
        kernel_ms = _best_ms(lambda s=sql: db.sql(s))
        with force_row_engine():
            row_ms = _best_ms(lambda s=sql: db.sql(s))
        ratio = row_ms / kernel_ms
        best_ratio = max(best_ratio, ratio)
        table.append([sql[:60], f"{kernel_ms:.2f}", f"{row_ms:.2f}", f"{ratio:.1f}x"])
    from conftest import print_table

    print_table(
        f"Figure 3 workload — kernel vs row engine "
        f"({FIG3_KERNEL_ROWS} rows)",
        ["query", "kernel ms", "row ms", "speedup"],
        table,
    )
    METRICS.inc("bench.figure3_kernel_speedup_x100", int(best_ratio * 100))
    assert best_ratio >= 5.0, (
        f"operate-on-compressed should win >=5x on RLE runs, got "
        f"{best_ratio:.1f}x"
    )
    benchmark.pedantic(lambda: db.sql(queries[0]), rounds=1, iterations=1)
