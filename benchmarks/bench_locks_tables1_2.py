"""Tables 1 and 2: the lock compatibility and conversion matrices.

Regenerates both matrices from the *live lock manager* (not from the
constants), by probing grant/convert behaviour through the public API,
and prints them in the paper's layout.
"""

from __future__ import annotations

from repro.errors import LockTimeoutError
from repro.txn import LockManager, LockMode

from conftest import print_table

MODES = LockManager.modes()


def probed_compatibility() -> dict[tuple[str, str], bool]:
    """Probe Table 1 through actual acquire calls."""
    out = {}
    for requested in MODES:
        for granted in MODES:
            manager = LockManager()
            manager.acquire(1, "t", LockMode(granted))
            try:
                manager.acquire(2, "t", LockMode(requested))
                out[(requested, granted)] = True
            except LockTimeoutError:
                out[(requested, granted)] = False
    return out


def probed_conversion() -> dict[tuple[str, str], str]:
    """Probe Table 2 through actual re-acquire (conversion) calls."""
    out = {}
    for requested in MODES:
        for granted in MODES:
            manager = LockManager()
            manager.acquire(1, "t", LockMode(granted))
            out[(requested, granted)] = manager.acquire(
                1, "t", LockMode(requested)
            ).value
    return out


def test_table1_report(benchmark):
    cells = probed_compatibility()
    rows = [
        [requested]
        + ["Yes" if cells[(requested, granted)] else "No" for granted in MODES]
        for requested in MODES
    ]
    print_table(
        "Table 1 — Lock Compatibility Matrix (probed from live manager)",
        ["Requested \\ Granted"] + MODES,
        rows,
    )
    # spot-check the paper's load-concurrency property
    assert cells[("I", "I")] is True
    assert cells[("X", "S")] is False
    assert all(not cells[("O", granted)] for granted in MODES)
    benchmark.pedantic(probed_compatibility, rounds=1, iterations=1)


def test_table2_report(benchmark):
    cells = probed_conversion()
    rows = [
        [requested] + [cells[(requested, granted)] for granted in MODES]
        for requested in MODES
    ]
    print_table(
        "Table 2 — Lock Conversion Matrix (probed from live manager)",
        ["Requested \\ Granted"] + MODES,
        rows,
    )
    assert cells[("S", "I")] == "SI"
    assert cells[("U", "U")] == "U"
    assert all(cells[("O", granted)] == "O" for granted in MODES)
    benchmark.pedantic(probed_conversion, rounds=1, iterations=1)


def test_lock_throughput(benchmark):
    """pytest-benchmark: acquire/release cycles through the manager."""

    def cycle():
        manager = LockManager()
        for txn in range(50):
            manager.acquire(txn, "t", LockMode.I)
        manager.release_all(0)
        for txn in range(1, 50):
            manager.release(txn, "t")

    benchmark(cycle)
