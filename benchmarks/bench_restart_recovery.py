"""Cold-restart recovery bench (section 4.3's durability story).

No figure in the paper, but a load-bearing operational claim: restart
cost is bounded by the journal *tail*, not by database size.  Commits
at or below the durable floor are recovered from on-disk ROS
containers by scavenge; only the tail past the floor is re-applied
from the write-ahead journal.  This bench opens the same database
cold at several journal-tail lengths and reports replay work and wall
time; checkpointed histories must replay a bounded tail regardless of
how many commits preceded the checkpoint.

Scale is environment-tunable via ``REPRO_RESTART_COMMITS`` (total
commits in the longest history, default 24).
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types

from conftest import env_int, print_table

ROWS_PER_COMMIT = 250


def definition():
    return TableDefinition(
        "events",
        [ColumnDef("eid", types.INTEGER), ColumnDef("v", types.FLOAT)],
        primary_key=("eid",),
    )


def batch(start, count=ROWS_PER_COMMIT):
    return [{"eid": i, "v": float(i)} for i in range(start, start + count)]


def build_history(root, commits, mover_every):
    """A database with ``commits`` commits, running the tuple movers
    (floor + checkpoint opportunity) every ``mover_every`` commits;
    ``mover_every=0`` never runs them, leaving the whole history in
    the journal tail."""
    db = Database(
        str(root), node_count=3, k_safety=1, journal_checkpoint_interval=8
    )
    db.create_table(definition(), sort_order=["eid"])
    for index in range(commits):
        db.load("events", batch(index * ROWS_PER_COMMIT))
        if mover_every and (index + 1) % mover_every == 0:
            db.run_tuple_movers()
    expected = db.sql("SELECT count(*) AS n FROM events")[0]["n"]
    del db
    return expected


def timed_open(root):
    started = time.perf_counter()
    db = Database.open(str(root))
    elapsed = time.perf_counter() - started
    return db, elapsed


def test_restart_cost_tracks_journal_tail(benchmark, tmp_path):
    commits = max(env_int("REPRO_RESTART_COMMITS", 24), 8)
    # mover cadences deliberately do not divide the commit counts, so
    # the floor sits a few commits behind shutdown and the journal
    # keeps a short live tail past it
    scenarios = [
        ("tail-only (no floor)", commits // 4, 0),
        ("mixed (floor mid-history)", commits // 2, max(commits // 4 - 1, 2)),
        ("checkpointed (bounded tail)", commits, max(commits // 3 - 1, 3)),
    ]
    rows = []
    reopened = None
    for label, count, mover_every in scenarios:
        root = tmp_path / label.split(" ")[0]
        expected = build_history(root, count, mover_every)
        db, elapsed = timed_open(root)
        report = db.replay_report
        assert db.sql("SELECT count(*) AS n FROM events")[0]["n"] == expected
        rows.append(
            [
                label,
                count,
                "yes" if report.checkpoint_used else "no",
                report.commits_replayed,
                report.rows_reinserted,
                f"{elapsed * 1000:.1f}",
            ]
        )
        if label.startswith("checkpoint"):
            reopened = (root, report, count)
        del db
    print_table(
        "Cold restart — replay work vs journal tail",
        ["scenario", "commits", "ckpt", "replayed", "rows replayed", "open ms"],
        rows,
    )

    # the claim: a checkpointed history replays a bounded tail even
    # though it has the most commits of the three scenarios.
    root, report, count = reopened
    assert report.checkpoint_used
    assert report.commits_replayed < count
    assert report.containers_quarantined == 0

    benchmark.pedantic(
        lambda: timed_open(root)[0], rounds=3, iterations=1
    )


def test_restart_after_mover_cycle_replays_nothing(benchmark, tmp_path):
    """Best case: all-up mover cycle right before shutdown — the floor
    covers every commit, so cold start re-inserts zero rows."""
    root = tmp_path / "drained"
    db = Database(
        str(root), node_count=3, k_safety=1, journal_checkpoint_interval=4
    )
    db.create_table(definition(), sort_order=["eid"])
    for index in range(6):
        db.load("events", batch(index * ROWS_PER_COMMIT))
    db.run_tuple_movers()
    expected = db.sql("SELECT count(*) AS n FROM events")[0]["n"]
    del db

    db, _ = timed_open(root)
    assert db.sql("SELECT count(*) AS n FROM events")[0]["n"] == expected
    assert db.replay_report.rows_reinserted == 0
    assert db.replay_report.containers_quarantined == 0
    del db
    benchmark.pedantic(lambda: timed_open(root)[0], rounds=3, iterations=1)
