"""Figure 2: physical storage layout within a node.

The figure shows a table partitioned by EXTRACT(month, year) and
segmented by HASH(cid), stored on one node as 14 ROS containers (one
per partition key x local segment after tuple-mover activity), each
column a separate pair of files.  This bench loads four months of data
into a node configured with 3 local segments and prints the resulting
container/file inventory.
"""

from __future__ import annotations

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.projections import HashSegmentation

from conftest import _emit, print_table

MONTHS = [(2012, 3), (2012, 4), (2012, 5), (2012, 6)]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(
        str(tmp_path_factory.mktemp("fig2")),
        node_count=1,
        segments_per_node=3,
    )
    table = TableDefinition(
        "readings",
        [ColumnDef("cid", types.INTEGER), ColumnDef("value", types.FLOAT),
         ColumnDef("month_key", types.INTEGER)],
        partition_by=lambda row: row["month_key"],
        partition_by_text="EXTRACT MONTH, YEAR FROM TIMESTAMP (as month_key)",
    )
    db.create_table(
        table,
        sort_order=["cid"],
        segmentation=HashSegmentation(("cid",)),
    )
    rows = []
    for index, (year, month) in enumerate(MONTHS):
        for cid in range(500):
            rows.append(
                {"cid": cid, "value": float(cid), "month_key": year * 100 + month}
            )
    db.load("readings", rows, direct_to_ros=True)
    db.run_tuple_movers()
    return db


def test_figure2_report(benchmark, db):
    """Print the node's ROS container inventory and check the figure's
    invariants: one (partition, local segment) per container, two files
    per column, data fully segregated."""
    family = db.cluster.catalog.super_projection_for("readings")
    manager = db.cluster.nodes[0].manager
    state = manager.storage(family.primary.name)
    rows = []
    user_files = 0
    for container_id in sorted(state.containers):
        container = state.containers[container_id]
        files = container.file_inventory()
        dat_files = [
            f for f in files if f.endswith(".dat") and not f.startswith("_epoch")
        ]
        user_files += len(dat_files)
        rows.append(
            [
                f"ros_{container_id:06d}",
                repr(container.meta.partition_key),
                container.meta.local_segment,
                container.row_count,
                len(dat_files),
            ]
        )
    print_table(
        "Figure 2 — ROS containers on node00 "
        "(partitioned by month, segmented by HASH(cid), 3 local segments)",
        ["container", "partition key", "local segment", "rows", "column .dat files"],
        rows,
    )
    containers = list(state.containers.values())
    # every container holds exactly one partition key & one local segment
    keys = {(repr(c.meta.partition_key), c.meta.local_segment) for c in containers}
    assert len(keys) == len(containers)
    # 4 months x 3 local segments = 12 containers after mergeout
    assert len(containers) == len(MONTHS) * 3
    # two files per column per container (the paper's 28-file count at
    # its 14x2 configuration; here 12 containers x 3 user columns)
    for container in containers:
        files = set(container.file_inventory())
        for column in ("cid", "value", "month_key"):
            assert f"{column}.dat" in files and f"{column}.pidx" in files
    benchmark.pedantic(lambda: db.sql('SELECT count(*) AS n FROM readings'), rounds=1, iterations=1)


def test_partition_drop_is_file_deletion(benchmark, db):
    """The figure's point: dropping a month only deletes whole files."""
    family = db.cluster.catalog.super_projection_for("readings")
    manager = db.cluster.nodes[0].manager
    before = manager.container_count(family.primary.name)
    reclaimed = manager.drop_partition(family.primary.name, 201203)
    after = manager.container_count(family.primary.name)
    _emit(
        f"\nFigure 2 — dropped partition 2012-03: {reclaimed} rows reclaimed, "
        f"{before - after} containers deleted instantly"
    )
    assert reclaimed == 500
    assert before - after == 3  # that month's three local segments
    # remaining data untouched
    remaining = db.sql("SELECT count(*) AS n FROM readings")[0]["n"]
    assert remaining == 1500
    benchmark.pedantic(lambda: db.sql('SELECT count(*) AS n FROM readings'), rounds=1, iterations=1)


def test_pruning_via_partition_minmax(benchmark, db):
    """Partition separation keeps min/max pruning effective: a
    one-month query touches one month's containers."""
    from repro.execution.executor import DistributedExecutor
    from repro.execution import ColumnRef, Literal
    from repro.optimizer import ScanNode

    def run():
        plan = ScanNode(
            "readings",
            ["cid"],
            predicate=ColumnRef("month_key") == Literal(201204),
        )
        executor = DistributedExecutor(db.cluster, db.latest_epoch)
        rows = executor.run(db.planner().plan(plan))
        return executor, rows

    executor, rows = run()
    assert len(rows) == 500
    assert executor.stats.rows_scanned == 500  # other months never read
    benchmark(lambda: run()[1])
