"""Recovery behaviour bench (section 5.2).

No figure in the paper, but an explicit behavioural claim: recovery is
*online* and *incremental* — a rejoining node replays only the DML it
missed (historical phase, no locks) plus a small current phase, while
queries keep answering from buddy projections throughout.  This bench
kills a node mid-load, measures what recovery copies, and shows query
availability at every stage.
"""

from __future__ import annotations

import pytest

from repro import ColumnDef, Database, TableDefinition, types

from conftest import print_table


@pytest.fixture()
def db(tmp_path):
    db = Database(str(tmp_path / "rec"), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "events",
            [ColumnDef("eid", types.INTEGER), ColumnDef("v", types.FLOAT)],
            primary_key=("eid",),
        ),
        sort_order=["eid"],
    )
    return db


def batch(start, count):
    return [{"eid": i, "v": float(i)} for i in range(start, start + count)]


def test_incremental_recovery_report(benchmark, db):
    # phase A: load while healthy, make it durable
    db.load("events", batch(0, 3000))
    db.run_tuple_movers()
    count_sql = "SELECT count(*) AS n FROM events"
    assert db.sql(count_sql)[0]["n"] == 3000

    # phase B: node 1 dies; queries keep answering via buddies
    db.fail_node(1)
    assert db.sql(count_sql)[0]["n"] == 3000

    # phase C: more DML lands while the node is down
    for start in range(3000, 6000, 1000):
        db.load("events", batch(start, 1000))
    db.sql("DELETE FROM events WHERE eid < 100")
    assert db.sql(count_sql)[0]["n"] == 5900

    # phase D: recovery — replay only the missed epochs
    report = db.recover_node(1, historical_lag=2)
    total_rows = 6000
    replayed = report.historical_rows + report.current_rows
    print_table(
        "Recovery — incremental replay after a mid-load failure",
        ["metric", "value"],
        [
            ["rows in table", total_rows],
            ["rows truncated on rejoin (post-LGE garbage)", report.truncated_rows],
            ["rows replayed in historical phase (no locks)", report.historical_rows],
            ["rows replayed in current phase (S lock)", report.current_rows],
            ["fraction of table replayed",
             f"{replayed / (2 * total_rows):.1%} (both copies)"],
        ],
    )
    # incremental: the node missed 3000 of 6000 rows per copy (primary
    # + buddy), so replay should be well below a full rebuild.
    assert 0 < replayed
    per_copy = replayed / 2
    assert per_copy < total_rows * 0.75
    assert report.current_rows > 0
    assert report.historical_rows > report.current_rows

    # phase E: the recovered node serves queries again, consistently
    assert db.sql(count_sql)[0]["n"] == 5900
    family = db.cluster.catalog.super_projection_for("events")
    own = db.cluster.nodes[1].manager.read_visible_rows(
        family.primary.name, db.latest_epoch
    )
    expected = {
        row["eid"]
        for row in batch(0, 6000)
        if row["eid"] >= 100
        and family.primary.segmentation.node_for_row(row, 3) == 1
    }
    assert {row["eid"] for row in own} == expected
    benchmark.pedantic(lambda: db.sql(count_sql), rounds=1, iterations=1)


def test_recovery_benchmark(benchmark, db):
    db.load("events", batch(0, 2000))
    db.run_tuple_movers()

    def cycle():
        db.fail_node(2)
        db.load("events", batch(10_000, 500))
        report = db.recover_node(2)
        return report

    benchmark.pedantic(cycle, rounds=3, iterations=1)
