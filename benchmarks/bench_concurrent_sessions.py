"""Concurrent multi-session throughput and latency (section 7).

The workload-management claim is that a governed service stays
responsive as sessions multiply past the pool's concurrency: admitted
statements keep their latency, excess demand queues, and throughput
plateaus at the pool limit instead of collapsing.  This bench drives a
mixed read/write workload through the :class:`repro.service.SqlService`
at 8, 64 and 256 sessions over a fixed pool, recording per-statement
wall latency, and reports QPS plus p50/p99 per level into
``BENCH_PR9.json``.

Sessions beyond the worker-thread count are *simulated*: statements of
all N sessions are interleaved round-robin over a bounded OS-thread
pool (each session still issues its own statements in order through
its own governed session object), which is exactly how a real server
multiplexes thousands of connections over a worker pool.
"""

from __future__ import annotations

import threading
import time

import pytest

from conftest import env_int, print_table

from repro import ColumnDef, Database, TableDefinition, types
from repro.service import PoolConfig, SqlService

SESSION_LEVELS = (8, 64, 256)
STATEMENTS_PER_SESSION = env_int("REPRO_SESSION_STATEMENTS", 4)
WORKER_THREADS = env_int("REPRO_SESSION_WORKERS", 8)
WRITE_EVERY = 4  # one INSERT per this many statements; the rest read

SQL_READ = "SELECT region, COUNT(*) AS n FROM events GROUP BY region"


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(
        str(tmp_path_factory.mktemp("sessions")), node_count=3, k_safety=1
    )
    db.create_table(
        TableDefinition(
            "events",
            [
                ColumnDef("event_id", types.INTEGER),
                ColumnDef("region", types.INTEGER),
            ],
            primary_key=("event_id",),
        ),
        sort_order=["event_id"],
    )
    db.load(
        "events",
        [{"event_id": i, "region": i % 16} for i in range(20000)],
        direct_to_ros=True,
    )
    db.analyze_statistics()
    return db


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(
        int(fraction * len(sorted_values)), len(sorted_values) - 1
    )
    return sorted_values[index]


def run_level(db, sessions):
    """Drive ``sessions`` governed sessions; returns (qps, p50, p99, shed)."""
    service = SqlService(
        db,
        pools=[
            PoolConfig(
                "general",
                max_concurrency=WORKER_THREADS,
                queue_depth=sessions,
                queue_timeout_ticks=1_000_000,
            )
        ],
        lock_timeout_seconds=60.0,
    )
    try:
        handles = [service.connect() for _ in range(sessions)]
        # each work item is (session_index, statement_index); a session's
        # items run in order because the queue is FIFO per session slice.
        work = [
            (s, i)
            for i in range(STATEMENTS_PER_SESSION)
            for s in range(sessions)
        ]
        work_iter = iter(work)
        work_lock = threading.Lock()
        latencies: list[float] = []
        shed = [0]
        errors: list[BaseException] = []
        next_key = [1_000_000]

        def worker():
            while True:
                with work_lock:
                    item = next(work_iter, None)
                if item is None:
                    return
                session_index, statement_index = item
                session = handles[session_index]
                writes = (
                    session_index * STATEMENTS_PER_SESSION + statement_index
                ) % WRITE_EVERY == 0
                if writes:
                    with work_lock:
                        key = next_key[0]
                        next_key[0] += 1
                    statement = (
                        f"INSERT INTO events VALUES ({key}, {key % 16})"
                    )
                else:
                    statement = SQL_READ
                started = time.perf_counter()
                try:
                    session.execute(statement)
                except Exception as exc:  # noqa: BLE001 - audited below
                    from repro.errors import AdmissionTimeoutError

                    if isinstance(exc, AdmissionTimeoutError):
                        with work_lock:
                            shed[0] += 1
                        return
                    errors.append(exc)
                    return
                with work_lock:
                    latencies.append(time.perf_counter() - started)

        threads = [
            threading.Thread(target=worker) for _ in range(WORKER_THREADS)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        assert not errors, errors
        for session in handles:
            session.close()
        service.governor.assert_idle()
        latencies.sort()
        qps = len(latencies) / wall if wall > 0 else 0.0
        return (
            qps,
            percentile(latencies, 0.50) * 1000.0,
            percentile(latencies, 0.99) * 1000.0,
            shed[0],
        )
    finally:
        service.shutdown()


def test_concurrent_session_levels(db):
    rows = []
    for sessions in SESSION_LEVELS:
        qps, p50_ms, p99_ms, shed = run_level(db, sessions)
        rows.append(
            [
                sessions,
                sessions * STATEMENTS_PER_SESSION,
                f"{qps:.0f}",
                f"{p50_ms:.2f}",
                f"{p99_ms:.2f}",
                shed,
            ]
        )
        # the governed service must complete the workload at every
        # level; shedding is for overload *storms*, not steady state
        # with an effectively unbounded queue deadline.
        assert shed == 0
    print_table(
        "Concurrent sessions: mixed read/write over one governed pool "
        f"({WORKER_THREADS} workers)",
        ["sessions", "statements", "qps", "p50 ms", "p99 ms", "shed"],
        rows,
    )
