"""Ablation: encoding effectiveness by data pattern (section 3.4).

The paper: "The same encoding schemes in Vertica are often far more
effective than in other systems because of Vertica's sorted physical
storage."  This bench builds a size grid — every encoding against
every characteristic data pattern — and checks that each encoding wins
(or ties) on the pattern the paper prescribes it for, and that sorting
amplifies RLE and the delta family.
"""

from __future__ import annotations

import random

import pytest

from repro import types
from repro.storage.encodings import ENCODINGS

from conftest import print_table

N = 50_000
RNG = random.Random(99)


def patterns() -> dict[str, tuple[list, object]]:
    unsorted_lowcard = [RNG.choice(["a", "b", "c"]) for _ in range(N)]
    random_ints = [RNG.randrange(1, 10_000_000) for _ in range(N)]
    return {
        "sorted low-card strings": (sorted(unsorted_lowcard), types.VARCHAR),
        "unsorted low-card strings": (unsorted_lowcard, types.VARCHAR),
        "sorted random ints": (sorted(random_ints), types.INTEGER),
        "unsorted random ints": (random_ints, types.INTEGER),
        "periodic timestamps": (
            [i * 300 + (86_400 if i % 5_000 == 0 else 0) for i in range(N)],
            types.INTEGER,
        ),
        "few-valued floats": (
            [RNG.choice([10.25, 10.5, 10.75, 11.0]) for _ in range(N)],
            types.FLOAT,
        ),
        "narrow-range ints": (
            [1_000_000 + RNG.randrange(100) for _ in range(N)],
            types.INTEGER,
        ),
    }


ENCODING_NAMES = [
    "PLAIN", "COMPRESSED_PLAIN", "RLE", "DELTAVAL", "BLOCK_DICT",
    "DELTARANGE_COMP", "COMMONDELTA_COMP",
]


def size_grid() -> dict[str, dict[str, int | None]]:
    grid: dict[str, dict[str, int | None]] = {}
    for pattern_name, (values, dtype) in patterns().items():
        grid[pattern_name] = {}
        for encoding_name in ENCODING_NAMES:
            encoding = ENCODINGS[encoding_name]
            if not encoding.supports(dtype, values[:4096]):
                grid[pattern_name][encoding_name] = None
                continue
            grid[pattern_name][encoding_name] = len(encoding.encode(values))
    return grid


def test_encoding_grid_report(benchmark):
    grid = size_grid()
    rows = []
    for pattern_name, sizes in grid.items():
        best = min(size for size in sizes.values() if size is not None)
        rows.append(
            [pattern_name]
            + [
                ("n/a" if sizes[name] is None else
                 f"{sizes[name] / 1024:.0f}K" + ("*" if sizes[name] == best else ""))
                for name in ENCODING_NAMES
            ]
        )
    print_table(
        f"Ablation — encoded size by (encoding x data pattern), {N} values "
        "(* = best)",
        ["pattern"] + ENCODING_NAMES,
        rows,
    )
    # the paper's prescriptions hold:
    assert grid["sorted low-card strings"]["RLE"] == min(
        s for s in grid["sorted low-card strings"].values() if s is not None
    )
    # RLE on sorted low-card is radically better than on unsorted
    assert (
        grid["sorted low-card strings"]["RLE"]
        < grid["unsorted low-card strings"]["RLE"] / 100
    )
    # delta-from-previous dominates on sorted ints but not unsorted
    assert (
        grid["sorted random ints"]["DELTARANGE_COMP"]
        < grid["unsorted random ints"]["DELTARANGE_COMP"] / 2
    )
    # common-delta is the timestamp winner
    timestamps = grid["periodic timestamps"]
    assert timestamps["COMMONDELTA_COMP"] == min(
        s for s in timestamps.values() if s is not None
    )
    # block dictionary beats plain on few-valued unsorted data
    assert (
        grid["few-valued floats"]["BLOCK_DICT"]
        < grid["few-valued floats"]["PLAIN"] / 4
    )
    # delta-from-minimum shines on narrow ranges
    assert (
        grid["narrow-range ints"]["DELTAVAL"]
        < grid["narrow-range ints"]["PLAIN"] / 2
    )
    benchmark.pedantic(lambda: ENCODINGS['RLE'].encode(sorted(['a', 'b'] * 1000)), rounds=1, iterations=1)


@pytest.mark.parametrize("encoding_name", ["RLE", "DELTARANGE_COMP", "BLOCK_DICT"])
def test_encode_benchmark(benchmark, encoding_name):
    values = sorted(RNG.randrange(1, 10_000_000) for _ in range(20_000))
    encoding = ENCODINGS[encoding_name]
    benchmark(lambda: encoding.encode(values))


def test_decode_benchmark(benchmark):
    values = sorted(RNG.randrange(1, 10_000_000) for _ in range(20_000))
    encoding = ENCODINGS["DELTARANGE_COMP"]
    payload = encoding.encode(values)
    benchmark(lambda: encoding.decode(payload, len(values)))
