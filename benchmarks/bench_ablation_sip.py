"""Ablation: Sideways Information Passing (section 6.1).

The paper: "SIP has been effective in improving join performance by
filtering data as early as possible in the plan."  This bench runs a
selective fact-dimension join with SIP on and off and reports the rows
that travel through the pipeline and the wall time.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.execution import ColumnRef, HashJoinOperator, JoinType, Literal, RowSource, ScanOperator

from conftest import print_table

C = ColumnRef
L = Literal

FACT_ROWS = 60_000
DIM_MATCHES = 5  # dims that actually join


@pytest.fixture(scope="module")
def manager(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("sip")), node_count=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER)],
        ),
        sort_order=["f_id"],
    )
    rows = [{"f_id": i, "dim_id": i % 1000} for i in range(FACT_ROWS)]
    db.load("fact", rows, direct_to_ros=True)
    db.run_tuple_movers()
    return db.cluster.nodes[0].manager, db.latest_epoch


def _join(manager, epoch, use_sip: bool):
    scan = ScanOperator(manager, "fact_super", epoch, ["f_id", "dim_id"])
    dims = [{"d_id": i, "d_name": str(i)} for i in range(DIM_MATCHES)]
    join = HashJoinOperator(
        scan,
        RowSource(dims, ["d_id", "d_name"]),
        [C("dim_id")],
        [C("d_id")],
        JoinType.INNER,
        left_columns=["f_id", "dim_id"],
        right_columns=["d_id", "d_name"],
    )
    if use_sip:
        sip = join.make_sip_filter([C("dim_id")])
        scan.sip_filters.append(sip)
    start = time.perf_counter()
    rows = join.rows()
    elapsed = (time.perf_counter() - start) * 1000
    return rows, scan, elapsed


def test_sip_ablation_report(benchmark, manager):
    manager, epoch = manager
    rows_off, scan_off, ms_off = _join(manager, epoch, use_sip=False)
    rows_on, scan_on, ms_on = _join(manager, epoch, use_sip=True)
    assert len(rows_on) == len(rows_off)  # same answer
    print_table(
        "Ablation — SIP on a selective fact-dim hash join "
        f"({FACT_ROWS} fact rows, {DIM_MATCHES}/1000 dims match)",
        ["configuration", "rows out of scan", "join output", "time (ms)"],
        [
            ["SIP off", scan_off.rows_produced, len(rows_off), f"{ms_off:.1f}"],
            ["SIP on", scan_on.rows_produced, len(rows_on), f"{ms_on:.1f}"],
        ],
    )
    # SIP eliminates ~99.5% of scan output before it enters the plan
    assert scan_on.rows_produced < scan_off.rows_produced / 50
    benchmark.pedantic(lambda: _join(manager, epoch, use_sip=True)[0], rounds=1, iterations=1)


def test_sip_join_benchmark_on(benchmark, manager):
    manager, epoch = manager
    benchmark(lambda: _join(manager, epoch, use_sip=True)[0])


def test_sip_join_benchmark_off(benchmark, manager):
    manager, epoch = manager
    benchmark(lambda: _join(manager, epoch, use_sip=False)[0])
