"""Degraded-mode query latency: healthy vs one node down vs mid-query
failover (section 5.2-5.3).

The paper's availability claim is not just that queries *survive* node
loss but that the degraded cluster keeps serving at reasonable cost:
with one node down, that node's ring segments are scanned from the
buddy copies hosted on the survivors, concentrating their rows onto
fewer nodes.  This bench records the same aggregate query

* on the healthy 3-node cluster,
* with one node down (buddy scans, before any recovery), and
* with the node killed *mid-query* (one failover retry included),

so ``BENCH_PR9.json`` shows the three latencies side by side, then
lets the supervisor heal the cluster and verifies the healthy latency
path is restored.
"""

from __future__ import annotations

import pytest

from conftest import env_int, print_table

from repro import ColumnDef, Database, TableDefinition, types
from repro.faults import FaultPlan

SQL = (
    "SELECT cid, COUNT(*) AS n, SUM(price) AS total "
    "FROM sales GROUP BY cid ORDER BY cid"
)

ROWS = env_int("REPRO_FAILOVER_ROWS", 30000)


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(
        str(tmp_path_factory.mktemp("failover")), node_count=3, k_safety=1
    )
    db.create_table(
        TableDefinition(
            "sales",
            [
                ColumnDef("sale_id", types.INTEGER),
                ColumnDef("cid", types.INTEGER),
                ColumnDef("price", types.FLOAT),
            ],
            primary_key=("sale_id",),
        ),
        sort_order=["sale_id"],
    )
    db.load(
        "sales",
        [
            {"sale_id": i, "cid": i % 64, "price": float(i % 97)}
            for i in range(ROWS)
        ],
        direct_to_ros=True,
    )
    db.run_tuple_movers()
    db.analyze_statistics()
    return db


@pytest.fixture(scope="module")
def timings():
    return {}


def test_query_healthy(benchmark, db, timings):
    """Baseline: all nodes up, primary copies scanned."""
    rows = benchmark(lambda: db.sql(SQL))
    assert len(rows) == 64
    timings["healthy"] = benchmark.stats.stats.mean


def test_query_mid_query_failover(benchmark, db, timings):
    """One failover retry inside the measurement: the victim dies on
    its first scan batch, the executor re-resolves against buddies and
    reruns the query at the same epoch.  Healing between rounds keeps
    every round's starting state identical."""

    def killed_mid_query():
        plan = FaultPlan(seed=1).arm("executor.scan", "crash", node=2)
        with plan:
            rows = db.sql(SQL)
        assert plan.fired
        db.cluster.supervisor.run_until_converged()
        return rows

    rows = benchmark.pedantic(killed_mid_query, rounds=3, iterations=1)
    assert len(rows) == 64
    timings["mid-query failover"] = benchmark.stats.stats.mean


def test_query_degraded_one_node_down(benchmark, db, timings):
    """Steady-state degraded mode: node 2 stays down, its segments are
    served by the buddy copies on the survivors."""
    db.fail_node(2)
    rows = benchmark(lambda: db.sql(SQL))
    assert len(rows) == 64
    timings["degraded (1 node down)"] = benchmark.stats.stats.mean


def test_supervisor_heals_and_latency_recovers(benchmark, db, timings):
    """After supervisor-driven recovery the healthy scan path (and its
    latency) is back."""
    db.cluster.supervisor.run_until_converged()
    assert db.cluster.membership.down_nodes() == []
    rows = benchmark(lambda: db.sql(SQL))
    assert len(rows) == 64
    timings["healed"] = benchmark.stats.stats.mean
    print_table(
        f"Degraded-mode query latency ({ROWS} rows, 3 nodes, K=1)",
        ["mode", "mean ms"],
        [
            [mode, f"{seconds * 1000:.2f}"]
            for mode, seconds in timings.items()
        ],
    )
