"""Ablation: prepass (L1-sized) aggregation and its runtime shutoff.

Section 6.1: the prepass operator "cheaply reduce[s] the amount of
data before sending it through other operators", and "the EE will
decide at runtime to stop if it is not actually reducing the number of
rows which pass."  This bench shows both halves: massive row reduction
on a low-cardinality key, and automatic shutoff on a high-cardinality
key.
"""

from __future__ import annotations

import pytest

from repro.execution import (
    AggregateSpec,
    ColumnRef,
    GroupByHashOperator,
    PrepassGroupByOperator,
    RowSource,
)

from conftest import print_table

C = ColumnRef
ROWS = 50_000


def _run(cardinality: int):
    rows = [{"g": i % cardinality, "v": 1} for i in range(ROWS)]
    aggregates = [AggregateSpec("COUNT", None, "n")]
    prepass = PrepassGroupByOperator(
        RowSource(rows, ["g", "v"], block_rows=2048),
        [C("g")], ["g"], aggregates, table_size=1024,
    )
    final = GroupByHashOperator(
        prepass, [C("g")], ["g"], aggregates, merge_partials=True
    )
    out = final.rows()
    assert len(out) == cardinality
    assert sum(row["n"] for row in out) == ROWS
    return prepass


def test_prepass_ablation_report(benchmark):
    results = []
    for cardinality in (4, 256, 4096, 40_000):
        prepass = _run(cardinality)
        results.append(
            [
                cardinality,
                prepass.rows_in,
                prepass.rows_out_partial,
                f"{prepass.rows_in / max(prepass.rows_out_partial, 1):.1f}x",
                "yes" if prepass.shut_off else "no",
            ]
        )
    print_table(
        f"Ablation — prepass aggregation over {ROWS} rows",
        ["group-by cardinality", "rows in", "partial rows out",
         "pipeline reduction", "shut off?"],
        results,
    )
    low = _run(4)
    high = _run(40_000)
    assert low.rows_out_partial < ROWS / 100  # big reduction
    assert not low.shut_off
    assert high.shut_off  # runtime decision to stop
    benchmark.pedantic(lambda: _run(16), rounds=1, iterations=1)


def test_prepass_benchmark_low_cardinality(benchmark):
    benchmark(lambda: _run(16))


def test_prepass_benchmark_high_cardinality(benchmark):
    benchmark(lambda: _run(40_000))
