"""Table 4: compression achieved for random integers and customer data.

Two sections, exactly as the paper:

* **1M random integers** (section 8.2.1; scaled by REPRO_T4A_COUNT) —
  raw text, gzip, gzip+sort, and Vertica's storage of a sorted
  projection.  Paper shape: raw 7.9 B/row, gzip ~2.1x, gzip+sort
  ~3.3x, Vertica ~12.5x (0.6 B/row).
* **200M customer meter records** (section 8.2.2; scaled by
  REPRO_T4B_ROWS) — raw CSV vs gzip vs Vertica with a
  (metric, meter, ts) sort order, including the paper's per-column
  narrative (metric ~ nothing, meter and timestamp small, value
  dominating).
"""

from __future__ import annotations

import zlib

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.workloads import meters, random_integers

from conftest import env_int, print_table

T4A_COUNT = env_int("REPRO_T4A_COUNT", 200_000)
T4B_ROWS = env_int("REPRO_T4B_ROWS", 400_000)


@pytest.fixture(scope="module")
def integer_values():
    return random_integers.generate(T4A_COUNT)


@pytest.fixture(scope="module")
def integers_db(tmp_path_factory, integer_values):
    db = Database(str(tmp_path_factory.mktemp("t4a")), node_count=1)
    db.create_table(
        TableDefinition("ints", [ColumnDef("n", types.INTEGER)]),
        sort_order=["n"],
    )
    db.load("ints", [{"n": value} for value in integer_values], direct_to_ros=True)
    db.run_tuple_movers()
    return db


def _vertica_bytes(db, table):
    family = db.cluster.catalog.super_projection_for(table)
    return sum(
        node.manager.total_data_bytes(family.primary.name)
        for node in db.cluster.nodes
    )


def test_random_integers_report(benchmark, integers_db, integer_values):
    """Table 4, top section."""
    sizes = random_integers.table4a_rows(integer_values)
    vertica = _vertica_bytes(integers_db, "ints")
    raw = sizes["raw"]
    count = len(integer_values)
    rows = []
    for label, size in (
        ("Raw", raw),
        ("gzip", sizes["gzip"]),
        ("gzip+sort", sizes["gzip+sort"]),
        ("Vertica", vertica),
    ):
        rows.append(
            [
                label,
                f"{size / 1e6:.2f} MB",
                f"{raw / size:.1f}",
                f"{size / count:.2f}",
            ]
        )
    print_table(
        f"Table 4a — {count} random integers in [1, 10M]",
        ["storage", "size", "ratio", "bytes/row"],
        rows,
    )
    # paper shape: Vertica >> gzip+sort > gzip > raw
    assert sizes["gzip"] < raw
    assert sizes["gzip+sort"] < sizes["gzip"]
    assert vertica < sizes["gzip+sort"]
    assert raw / vertica > 6  # paper: 12.5x at 1M rows
    benchmark.pedantic(lambda: _vertica_bytes(integers_db, 'ints'), rounds=1, iterations=1)


def test_random_integers_roundtrip(benchmark, integers_db, integer_values):
    """The compressed storage is still the data: full readback."""
    rows = integers_db.sql("SELECT n FROM ints")
    assert sorted(row["n"] for row in rows) == sorted(integer_values)
    benchmark.pedantic(lambda: integers_db.sql('SELECT count(*) AS n FROM ints'), rounds=1, iterations=1)


@pytest.fixture(scope="module")
def meter_rows():
    spec = meters.spec_for_rows(T4B_ROWS)
    return list(meters.generate(spec))


@pytest.fixture(scope="module")
def meters_db(tmp_path_factory, meter_rows):
    db = Database(str(tmp_path_factory.mktemp("t4b")), node_count=1)
    db.create_table(
        meters.meters_table(),
        sort_order=["metric", "meter", "ts"],
    )
    db.load("meter_readings", meter_rows, direct_to_ros=True)
    db.run_tuple_movers()
    return db


def test_customer_data_report(benchmark, meters_db, meter_rows):
    """Table 4, bottom section, plus the per-column breakdown."""
    csv_payload = (
        "\n".join(meters.csv_line(row) for row in meter_rows) + "\n"
    ).encode()
    raw = len(csv_payload)
    gz = len(zlib.compress(csv_payload, level=6))
    vertica = _vertica_bytes(meters_db, "meter_readings")
    count = len(meter_rows)
    print_table(
        f"Table 4b — {count} customer meter records",
        ["storage", "size", "ratio", "bytes/row"],
        [
            ["Raw CSV", f"{raw / 1e6:.2f} MB", "1", f"{raw / count:.1f}"],
            ["gzip", f"{gz / 1e6:.2f} MB", f"{raw / gz:.1f}", f"{gz / count:.2f}"],
            ["Vertica", f"{vertica / 1e6:.2f} MB", f"{raw / vertica:.1f}",
             f"{vertica / count:.2f}"],
        ],
    )
    # per-column breakdown (paper: metric ~ 5KB, meter 35MB, ts 20MB,
    # value 363MB of 418MB total)
    family = meters_db.cluster.catalog.super_projection_for("meter_readings")
    manager = meters_db.cluster.nodes[0].manager
    state = manager.storage(family.primary.name)
    per_column: dict[str, int] = {}
    import os

    for container in state.containers.values():
        for name in container.meta.columns:
            per_column[name] = per_column.get(name, 0) + os.path.getsize(
                os.path.join(container.path, f"{name}.dat")
            )
    print_table(
        "Table 4b — per-column Vertica storage",
        ["column", "bytes", "share"],
        [
            [name, size, f"{100 * size / max(sum(per_column.values()), 1):.1f}%"]
            for name, size in sorted(per_column.items())
        ],
    )
    # shape assertions
    assert gz < raw
    assert vertica < gz  # Vertica ratio beats gzip (paper: 14.8 vs 5.9)
    assert per_column["metric"] < per_column["value"] / 50
    assert per_column["ts"] < per_column["value"]
    assert per_column["value"] == max(per_column.values())
    benchmark.pedantic(lambda: _vertica_bytes(meters_db, 'meter_readings'), rounds=1, iterations=1)


def test_customer_query_benchmark(benchmark, meters_db):
    """Timing of the motivating query pattern (restrict by metric)."""
    benchmark(
        lambda: meters_db.sql(
            "SELECT meter, count(*) AS n FROM meter_readings "
            "WHERE metric = 'metric_0001' GROUP BY meter"
        )
    )
