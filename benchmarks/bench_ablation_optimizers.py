"""Ablation: the three optimizer generations (section 6.2).

Runs a star query and a non-star (fact-fact) query through StarOpt,
StarifiedOpt and V2Opt, reporting plannability, the chosen join
strategy, estimated cost and measured runtime — the paper's narrative:
StarOpt handles only co-located stars; StarifiedOpt "bridges the gap"
by starifying everything (broadcasts); V2Opt moves data on the fly and
wins on fact-fact joins.
"""

from __future__ import annotations

import time

import pytest

from repro import ColumnDef, Database, TableDefinition, types
from repro.errors import PlanningError
from repro.execution import ColumnRef
from repro.execution.operators.join import JoinType
from repro.optimizer import JoinNode, PhysJoin, ScanNode
from repro.projections import Replicated

from conftest import print_table

C = ColumnRef


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("opt")), node_count=3, k_safety=1)
    db.create_table(
        TableDefinition(
            "fact",
            [ColumnDef("f_id", types.INTEGER), ColumnDef("dim_id", types.INTEGER),
             ColumnDef("v", types.FLOAT)],
            primary_key=("f_id",),
        )
    )
    db.create_table(
        TableDefinition(
            "dim",
            [ColumnDef("d_id", types.INTEGER), ColumnDef("label", types.VARCHAR)],
            primary_key=("d_id",),
        ),
        segmentation=Replicated(),
    )
    db.create_table(
        TableDefinition(
            "fact2",
            [ColumnDef("g_id", types.INTEGER), ColumnDef("link", types.INTEGER)],
            primary_key=("g_id",),
        )
    )
    db.load("dim", [{"d_id": i, "label": f"d{i}"} for i in range(50)])
    db.load(
        "fact",
        [{"f_id": i, "dim_id": i % 50, "v": float(i)} for i in range(20_000)],
    )
    db.load(
        "fact2",
        [{"g_id": i, "link": i % 5_000} for i in range(20_000)],
    )
    db.analyze_statistics()
    return db


def star_query():
    return JoinNode(
        ScanNode("fact", ["f_id", "dim_id", "v"]),
        ScanNode("dim", ["d_id", "label"]),
        JoinType.INNER,
        [C("dim_id")],
        [C("d_id")],
    )


def fact_fact_query():
    return JoinNode(
        ScanNode("fact", ["f_id", "dim_id"]),
        ScanNode("fact2", ["g_id", "link"]),
        JoinType.INNER,
        [C("f_id")],
        [C("link")],
    )


def _evaluate(db, optimizer: str, query):
    try:
        plan = db.planner(optimizer).plan(query)
    except PlanningError:
        return None
    join = next(n for n in plan.walk() if isinstance(n, PhysJoin))
    start = time.perf_counter()
    rows = db.query(query, optimizer=optimizer)
    elapsed = (time.perf_counter() - start) * 1000
    return {
        "strategy": join.strategy,
        "cost": plan.est_cost.total,
        "ms": elapsed,
        "rows": len(rows),
    }


def test_optimizer_generations_report(benchmark, db):
    table = []
    outcomes = {}
    for query_name, query in (("star", star_query()), ("fact-fact", fact_fact_query())):
        for optimizer in ("star", "starified", "v2"):
            outcome = _evaluate(db, optimizer, query)
            outcomes[(query_name, optimizer)] = outcome
            if outcome is None:
                table.append([query_name, optimizer, "CANNOT PLAN", "-", "-", "-"])
            else:
                table.append(
                    [
                        query_name,
                        optimizer,
                        outcome["strategy"],
                        f"{outcome['cost']:.0f}",
                        f"{outcome['ms']:.0f}",
                        outcome["rows"],
                    ]
                )
    print_table(
        "Ablation — three optimizer generations on star and non-star joins",
        ["query", "optimizer", "join strategy", "est cost", "time (ms)", "rows"],
        table,
    )
    # StarOpt plans the co-located star...
    assert outcomes[("star", "star")] is not None
    assert outcomes[("star", "star")]["strategy"] == "colocated"
    # ...but cannot place the non-co-located fact-fact join
    assert outcomes[("fact-fact", "star")] is None
    # StarifiedOpt starifies it (broadcast); V2Opt plans it too
    assert outcomes[("fact-fact", "starified")]["strategy"] == "broadcast_inner"
    assert outcomes[("fact-fact", "v2")] is not None
    # all planners that succeed agree on the answer
    counts = {
        key: outcome["rows"]
        for key, outcome in outcomes.items()
        if outcome is not None
    }
    assert counts[("star", "star")] == counts[("star", "v2")] == 20_000
    assert counts[("fact-fact", "starified")] == counts[("fact-fact", "v2")]
    # V2's cost model never regresses vs StarifiedOpt on these queries
    assert (
        outcomes[("fact-fact", "v2")]["cost"]
        <= outcomes[("fact-fact", "starified")]["cost"] * 1.01
    )
    benchmark.pedantic(lambda: db.planner('v2').plan(star_query()), rounds=1, iterations=1)


@pytest.mark.parametrize("optimizer", ["starified", "v2"])
def test_fact_fact_benchmark(benchmark, db, optimizer):
    query = fact_fact_query()
    benchmark.pedantic(
        lambda: db.query(query, optimizer=optimizer), rounds=2, iterations=1
    )
