"""Table 3: Vertica vs. C-Store on the C-Store benchmark queries.

Regenerates the paper's head-to-head: per-query time for the
C-Store-2005-style baseline engine and the full Vertica-style stack,
the total query time, and the disk space each needs.  The paper's
absolute numbers came from a 2005 Pentium 4 and the real systems; the
*shape* to reproduce is: Vertica wins every query, roughly 2x total,
with roughly half the disk (949 MB vs 1987 MB).
"""

from __future__ import annotations

import time

import pytest

from repro import Database
from repro.cstore import CStoreDatabase, CStoreEngine
from repro.execution.kernels import force_row_engine
from repro.monitor import METRICS
from repro.workloads import cstore_benchmark as bench

from conftest import env_float, print_table

SCALE = env_float("REPRO_T3_SCALE", 0.25)

#: Scale for the kernel-vs-row head-to-head: at tiny smoke scales
#: per-query fixed costs (parse, plan) drown the execution delta, so
#: this table never runs below scale 1.0.
KERNEL_SCALE = max(SCALE, 1.0)

#: The paper's Table 3 milliseconds, for side-by-side display.
PAPER_MS = {
    "Q1": (30, 14),
    "Q2": (360, 71),
    "Q3": (4900, 4833),
    "Q4": (2090, 280),
    "Q5": (310, 93),
    "Q6": (8500, 4143),
    "Q7": (2540, 161),
}


@pytest.fixture(scope="module")
def data():
    return bench.generate(scale=SCALE)


@pytest.fixture(scope="module")
def cstore(tmp_path_factory, data):
    db = CStoreDatabase(str(tmp_path_factory.mktemp("cstore")))
    db.create_table(bench.lineitem_table())
    db.create_table(bench.orders_table())
    db.load("lineitem", data.lineitem)
    db.load("orders", data.orders)
    return CStoreEngine(db)


@pytest.fixture(scope="module")
def vertica(tmp_path_factory, data):
    db = Database(str(tmp_path_factory.mktemp("vertica")), node_count=1)
    db.create_table(bench.lineitem_table())
    db.create_table(bench.orders_table())
    db.load("lineitem", data.lineitem, direct_to_ros=True)
    db.load("orders", data.orders, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db


def _time_ms(fn, repeats: int = 3) -> float:
    fn()  # warm
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000


@pytest.mark.parametrize("spec", bench.queries(), ids=lambda s: s.name)
def test_query_vertica(benchmark, spec, vertica):
    """pytest-benchmark timing of the Vertica-style engine per query."""
    benchmark(lambda: vertica.sql(spec.sql))


@pytest.mark.parametrize("spec", bench.queries(), ids=lambda s: s.name)
def test_query_cstore(benchmark, spec, cstore):
    """pytest-benchmark timing of the C-Store baseline per query."""
    benchmark(lambda: cstore.run(spec))


def test_table3_report(benchmark, cstore, vertica, data):
    """Regenerate the full Table 3 (relative shape)."""
    rows = []
    total_cstore = 0.0
    total_vertica = 0.0
    wins = 0
    for spec in bench.queries():
        cstore_ms = _time_ms(lambda s=spec: cstore.run(s))
        vertica_ms = _time_ms(lambda s=spec: vertica.sql(s.sql))
        total_cstore += cstore_ms
        total_vertica += vertica_ms
        if vertica_ms < cstore_ms:
            wins += 1
        paper = PAPER_MS[spec.name]
        rows.append(
            [
                spec.name,
                f"{cstore_ms:.1f}",
                f"{vertica_ms:.1f}",
                f"{cstore_ms / vertica_ms:.2f}x",
                f"{paper[0]}",
                f"{paper[1]}",
                f"{paper[0] / paper[1]:.2f}x",
            ]
        )
    cstore_bytes = cstore.db.total_data_bytes()
    vertica_bytes = vertica.cluster.total_data_bytes()
    rows.append(
        [
            "Total",
            f"{total_cstore:.1f}",
            f"{total_vertica:.1f}",
            f"{total_cstore / total_vertica:.2f}x",
            "18700",
            "9600",
            "1.95x",
        ]
    )
    rows.append(
        [
            "Disk",
            f"{cstore_bytes / 1e6:.2f} MB",
            f"{vertica_bytes / 1e6:.2f} MB",
            f"{cstore_bytes / vertica_bytes:.2f}x",
            "1987 MB",
            "949 MB",
            "2.09x",
        ]
    )
    print_table(
        f"Table 3 — C-Store vs Vertica (scale={SCALE}: "
        f"{data.lineitem_rows} lineitem / {data.orders_rows} orders rows)",
        ["query", "cstore ms", "vertica ms", "speedup",
         "paper cstore", "paper vertica", "paper speedup"],
        rows,
    )
    # the shape assertions: Vertica wins the total and most queries,
    # and uses materially less disk.
    assert total_vertica < total_cstore
    assert wins >= 5
    assert vertica_bytes < cstore_bytes * 0.8
    benchmark.pedantic(lambda: vertica.sql(bench.queries()[0].sql), rounds=1, iterations=1)


# -- operate-on-compressed speedup ---------------------------------------

@pytest.fixture(scope="module")
def vertica_kernel_scale(tmp_path_factory):
    """Vertica-style stack at KERNEL_SCALE for the engine head-to-head."""
    data = bench.generate(scale=KERNEL_SCALE)
    db = Database(str(tmp_path_factory.mktemp("vkern")), node_count=1)
    db.create_table(bench.lineitem_table())
    db.create_table(bench.orders_table())
    db.load("lineitem", data.lineitem, direct_to_ros=True)
    db.load("orders", data.orders, direct_to_ros=True)
    db.run_tuple_movers()
    db.analyze_statistics()
    return db, data


def test_table3_kernel_vs_row_speedup(benchmark, vertica_kernel_scale):
    """Same queries, two engines: vectorized kernels vs. the per-row
    fallback (REPRO_FORCE_ROW_ENGINE).  The scan-heavy queries lean on
    sorted-column binary search (Q1-Q3) and dictionary/bulk aggregation
    (Q5); the best ratio lands in BENCH_PR9.json as a x100 counter."""
    db, data = vertica_kernel_scale
    rows = []
    best = ("", 0.0)
    for spec in bench.queries():
        if spec.name not in ("Q1", "Q2", "Q3", "Q5"):
            continue  # joins (Q6, Q7) are probe-dominated either way
        kernel_ms = _time_ms(lambda s=spec: db.sql(s.sql), repeats=5)
        with force_row_engine():
            row_ms = _time_ms(lambda s=spec: db.sql(s.sql), repeats=5)
        ratio = row_ms / kernel_ms
        if ratio > best[1]:
            best = (spec.name, ratio)
        rows.append(
            [spec.name, f"{kernel_ms:.2f}", f"{row_ms:.2f}", f"{ratio:.1f}x"]
        )
    print_table(
        f"C-Store queries — kernel vs row engine (scale={KERNEL_SCALE}: "
        f"{data.lineitem_rows} lineitem rows)",
        ["query", "kernel ms", "row ms", "speedup"],
        rows,
    )
    METRICS.inc("bench.table3_kernel_speedup_x100", int(best[1] * 100))
    assert best[1] >= 5.0, (
        f"operate-on-compressed should win >=5x on at least one query, "
        f"best was {best[0]} at {best[1]:.1f}x"
    )
    benchmark.pedantic(
        lambda: db.sql(bench.queries()[0].sql), rounds=1, iterations=1
    )


