"""Data Collector overhead bench: collector-on vs collector-off.

Vertica's justification for recording *everything* in DC tables is
that the collection path is cheap enough to leave on in production.
This bench makes the same claim for the reproduction: the same
statement mix runs with the collector enabled and disabled (the
``DataCollector.enabled`` kill switch, same as ``REPRO_DC_DISABLE``),
best-of-``REPRO_DC_REPEATS`` each, and the enabled run must cost at
most 10% throughput.

Scale is environment-tunable via ``REPRO_DC_STATEMENTS`` (statements
per measured run, default 300).
"""

from __future__ import annotations

import time

from repro import ColumnDef, Database, TableDefinition, types

from conftest import env_int, print_table

#: Acceptance ceiling: collector-on may cost at most this fraction.
MAX_OVERHEAD = 0.10


def build(root):
    db = Database(str(root), node_count=3, durable=False)
    db.create_table(
        TableDefinition(
            "metrics_t",
            [ColumnDef("k", types.INTEGER), ColumnDef("v", types.INTEGER)],
        ),
        sort_order=["k"],
    )
    db.load("metrics_t", [{"k": i, "v": i % 13} for i in range(2000)])
    return db


def run_statements(db, count):
    """The measured mix: point reads, scans and small inserts."""
    for i in range(count):
        which = i % 4
        if which == 0:
            db.sql(f"SELECT v FROM metrics_t WHERE k = {i % 2000}")
        elif which == 1:
            db.sql("SELECT count(*) AS n FROM metrics_t WHERE v = 3")
        elif which == 2:
            db.sql(f"SELECT k FROM metrics_t WHERE v = {i % 13}")
        else:
            db.sql(f"INSERT INTO metrics_t VALUES ({100_000 + i}, 1)")


def best_seconds(db, count, repeats):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run_statements(db, count)
        best = min(best, time.perf_counter() - started)
    return best


def test_collector_overhead_within_budget(tmp_path):
    count = env_int("REPRO_DC_STATEMENTS", 300)
    repeats = env_int("REPRO_DC_REPEATS", 3)
    db = build(tmp_path / "db")

    run_statements(db, 50)  # warm caches on both paths

    db.cluster.dc.enabled = False
    off = best_seconds(db, count, repeats)
    db.cluster.dc.enabled = True
    on = best_seconds(db, count, repeats)

    overhead = on / off - 1.0
    print_table(
        "Data Collector overhead (statement mix, best of "
        f"{repeats} x {count} statements)",
        ["collector", "seconds", "stmts/sec"],
        [
            ["off", f"{off:.4f}", f"{count / off:,.0f}"],
            ["on", f"{on:.4f}", f"{count / on:,.0f}"],
            ["overhead", f"{overhead * 100:+.1f}%", ""],
        ],
    )
    assert db.cluster.dc.counts()["requests"] > 0  # it really collected
    assert overhead <= MAX_OVERHEAD, (
        f"collector-on costs {overhead * 100:.1f}% "
        f"(> {MAX_OVERHEAD * 100:.0f}% budget)"
    )
