"""Shared fixtures and reporting helpers for the benchmark suite.

Every bench prints the paper artifact it regenerates (table rows or
figure description) so that ``pytest benchmarks/ --benchmark-only -s``
reproduces the evaluation section end to end.  Scale factors are
environment-tunable:

* ``REPRO_T3_SCALE``  — C-Store benchmark scale (default 0.25)
* ``REPRO_T4A_COUNT`` — random integers count (default 200000)
* ``REPRO_T4B_ROWS``  — meter telemetry rows (default 400000)
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.monitor import METRICS

#: Counters recorded per bench in BENCH_PR9.json — the ones whose
#: movement the paper's evaluation section argues about, plus the
#: self-healing runtime's failover/recovery activity and the
#: vectorized engine's kernel-vs-row block split.
TRACKED_COUNTERS = (
    "storage.blocks_decoded",
    "storage.bytes_decoded",
    "storage.blocks_vectorized",
    "storage.blocks_pruned",
    "storage.containers_scanned",
    "storage.containers_pruned",
    "storage.wos_spills",
    "tuple_mover.moveouts",
    "tuple_mover.mergeouts",
    "queries.executed",
    "executor.query_retries",
    "executor.kernel_blocks",
    "executor.row_fallback_blocks",
    "bench.figure3_kernel_speedup_x100",
    "bench.table3_kernel_speedup_x100",
    "cluster.nodes_failed",
    "supervisor.ticks",
    "supervisor.recoveries",
    "service.statements",
    "service.admitted",
    "service.admission_queued",
    "service.admission_rejected",
    "service.admission_timeouts",
    "service.statement_errors",
    "journal.appends",
    "journal.bytes_written",
    "journal.checkpoints",
    "journal.cold_starts",
    "journal.segments_pruned",
    "journal.replay.commits",
    "journal.replay.rows",
    "dc.records",
    "dc.records_evicted",
    "dc.flushes",
    "dc.bytes_written",
    "dc.alerts_raised",
    "dc.alerts_cleared",
)

BENCH_REPORT = "BENCH_PR9.json"

#: name -> {"seconds": float, "metrics": {counter: delta}}
_RESULTS: dict = {}


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


#: pytest config, captured at startup so _emit can suspend output
#: capture — the regenerated paper tables then appear in every
#: benchmark run's output with or without ``-s``.
_CONFIG = None


def pytest_configure(config):
    global _CONFIG
    _CONFIG = config


def _emit(line: str) -> None:
    capman = (
        _CONFIG.pluginmanager.get_plugin("capturemanager")
        if _CONFIG is not None
        else None
    )
    if capman is not None:
        with capman.global_and_fixture_disabled():
            print(line, flush=True)
    else:  # pragma: no cover - direct invocation outside pytest
        print(line)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small aligned table, bypassing pytest capture."""
    widths = [len(h) for h in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    _emit("")
    _emit(f"=== {title} ===")
    _emit("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    _emit("  ".join("-" * w for w in widths))
    for row in rendered:
        _emit("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))


@pytest.fixture(scope="session")
def report():
    """The table printer, as a fixture."""
    return print_table


# -- BENCH_PR9.json: wall time + metrics deltas per bench ----------------

@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Wrap every bench body: wall time plus the registry's movement."""
    with METRICS.capture(TRACKED_COUNTERS) as captured:
        started = time.perf_counter()
        yield
        elapsed = time.perf_counter() - started
    _RESULTS[item.nodeid] = {
        "seconds": round(elapsed, 6),
        "metrics": captured.deltas,
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the per-bench report next to the repo root."""
    if not _RESULTS:
        return
    path = os.path.join(os.path.dirname(__file__), os.pardir, BENCH_REPORT)
    payload = {
        "suite": "benchmarks",
        "exit_status": int(exitstatus),
        "benches": dict(sorted(_RESULTS.items())),
    }
    with open(os.path.abspath(path), "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
