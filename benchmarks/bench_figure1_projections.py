"""Figure 1: relationship between tables, projections and segments.

Recreates the paper's running example: a ``sales`` table with (1) a
super projection sorted by date, segmented by HASH(sale_id) and (2) a
narrow (cust, price) projection sorted by cust, segmented by
HASH(cust) — then prints what each node of a 3-node cluster actually
stores, which is the content of the figure.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.projections import (
    HashSegmentation,
    ProjectionColumn,
    ProjectionDefinition,
)
from repro import types

from conftest import _emit, print_table

FIGURE_ROWS = [
    (1, 11, "Andrew", 0, 100.0),
    (2, 17, "Chuck", 4, 98.0),
    (3, 27, "Nga", 1, 90.0),
    (4, 28, "Matt", 2, 101.0),
    (5, 89, "Ben", 0, 103.0),
    (1000, 89, "Ben", 1, 103.0),
    (1001, 11, "Andrew", 2, 95.0),
]


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    db = Database(str(tmp_path_factory.mktemp("fig1")), node_count=3, k_safety=1)
    db.sql(
        "CREATE TABLE sales (sale_id INTEGER, cid INTEGER, cust VARCHAR, "
        "sale_date DATE, price FLOAT, PRIMARY KEY (sale_id))"
    )
    narrow = ProjectionDefinition(
        name="sales_cust_price",
        anchor_table="sales",
        columns=[
            ProjectionColumn("cust", types.VARCHAR),
            ProjectionColumn("price", types.FLOAT),
        ],
        sort_order=["cust"],
        segmentation=HashSegmentation(("cust",)),
    )
    db.add_projection(narrow)
    rows = [
        dict(zip(("sale_id", "cid", "cust", "sale_date", "price"), values))
        for values in FIGURE_ROWS
    ]
    db.load("sales", rows)
    db.run_tuple_movers()
    return db


def test_figure1_report(benchmark, db):
    """Print each projection's per-node contents (the figure's bottom
    half) and assert the figure's structural properties."""
    catalog = db.cluster.catalog
    _emit("\n=== Figure 1 — projections of table `sales` ===")
    for family in catalog.families_for_table("sales"):
        _emit(f"  {family.primary.describe()}")
    for family in catalog.families_for_table("sales"):
        rows = []
        total = 0
        for node in db.cluster.nodes:
            stored = node.manager.read_visible_rows(
                family.primary.name, db.latest_epoch
            )
            total += len(stored)
            rows.append(
                [
                    node.name,
                    len(stored),
                    ", ".join(
                        str(row.get("sale_id", row.get("cust")))
                        for row in stored
                    )
                    or "(empty)",
                ]
            )
        print_table(
            f"Figure 1 — {family.primary.name} per node",
            ["node", "rows", "contents"],
            rows,
        )
        assert total == len(FIGURE_ROWS)  # segmentation partitions rows

    # structural assertions matching the figure
    super_family = catalog.super_projection_for("sales")
    assert super_family.primary.segmentation.columns == ("sale_id",)
    narrow = catalog.family("sales_cust_price")
    assert narrow.primary.column_names == ["cust", "price"]
    assert narrow.primary.sort_order == ["cust"]
    assert not narrow.primary.is_super_for(catalog.table("sales"))
    benchmark.pedantic(lambda: db.sql('SELECT count(*) AS n FROM sales'), rounds=1, iterations=1)


def test_projections_answer_identically(benchmark, db):
    """Any projection answers covered queries with the same multiset."""
    via_narrow = db.sql("SELECT cust, price FROM sales")
    catalog = db.cluster.catalog
    super_name = catalog.super_projection_for("sales").primary.name
    by_super = []
    for node_index, projection_name in db.cluster.scan_sources(
        catalog.family(super_name)
    ):
        for row in db.cluster.nodes[node_index].manager.read_visible_rows(
            projection_name, db.latest_epoch
        ):
            by_super.append({"cust": row["cust"], "price": row["price"]})
    normalize = lambda rows: sorted(
        (row["cust"], row["price"]) for row in rows
    )
    assert normalize(via_narrow) == normalize(by_super)
    benchmark.pedantic(lambda: db.sql('SELECT cust, price FROM sales'), rounds=1, iterations=1)


def test_narrow_projection_query(benchmark, db):
    """pytest-benchmark: the narrow-projection query of the figure."""
    benchmark(
        lambda: db.sql("SELECT cust, sum(price) AS total FROM sales GROUP BY cust")
    )
