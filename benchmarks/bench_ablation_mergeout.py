"""Ablation: stratified mergeout vs naive alternatives (section 4).

The tuple mover "must balance its moveout work so that it is not
overzealous ... but also not too lazy", and exponential strata bound
how many times a tuple is re-merged.  This bench trickle-loads many
small batches and compares three policies:

* **never merge** — container count explodes;
* **always merge everything** — container count stays at 1 but every
  tuple is rewritten on every batch (quadratic write amplification);
* **stratified (the paper's design)** — few containers *and* low
  rewrite amplification.
"""

from __future__ import annotations

import pytest

from repro import types
from repro.core.schema import ColumnDef, TableDefinition
from repro.projections import super_projection
from repro.storage import StorageManager
from repro.tuple_mover import MergePolicy, TupleMover

from conftest import print_table

BATCHES = 60
BATCH_ROWS = 200


def _run(tmp_path, mode: str):
    table = TableDefinition(
        "t", [ColumnDef("k", types.INTEGER), ColumnDef("v", types.VARCHAR)]
    )
    projection = super_projection(table, sort_order=["k"])
    manager = StorageManager(str(tmp_path / mode))
    manager.register_projection(projection, table)
    mover = TupleMover(manager, MergePolicy(base_size=2048, multiplier=4, min_inputs=4))
    total_rows = 0
    for batch in range(BATCHES):
        rows = [
            {"k": batch * BATCH_ROWS + i, "v": f"v{i % 11}"}
            for i in range(BATCH_ROWS)
        ]
        total_rows += len(rows)
        manager.insert("t_super", rows, epoch=batch + 1, direct_to_ros=True)
        if mode == "stratified":
            mover.mergeout("t_super")
        elif mode == "merge_all":
            state = manager.storage("t_super")
            if len(state.containers) > 1:
                mover._merge_containers(
                    state, "t_super", sorted(state.containers), 0,
                    __import__("repro.tuple_mover.mover", fromlist=["MergeResult"]).MergeResult(),
                )
    # verify no data loss in any mode
    visible = manager.read_visible_rows("t_super", epoch=BATCHES)
    assert len(visible) == total_rows
    return {
        "containers": manager.container_count("t_super"),
        "rows_rewritten": mover.stats.rows_written,
        "amplification": mover.stats.rows_written / total_rows,
    }


def test_mergeout_ablation_report(benchmark, tmp_path):
    results = {mode: _run(tmp_path, mode) for mode in ("never", "merge_all", "stratified")}
    print_table(
        f"Ablation — mergeout policy under trickle load "
        f"({BATCHES} batches x {BATCH_ROWS} rows)",
        ["policy", "final containers", "rows rewritten", "write amplification"],
        [
            [
                mode,
                result["containers"],
                result["rows_rewritten"],
                f"{result['amplification']:.1f}x",
            ]
            for mode, result in results.items()
        ],
    )
    never, merge_all, stratified = (
        results["never"], results["merge_all"], results["stratified"],
    )
    assert never["containers"] == BATCHES  # explosion
    assert merge_all["containers"] == 1
    # stratified: order-of-log containers with far less rewriting
    assert stratified["containers"] < BATCHES / 6
    assert stratified["rows_rewritten"] < merge_all["rows_rewritten"] / 3
    # strata bound the per-tuple merge count logarithmically (well
    # below the quadratic merge-all policy)
    assert stratified["amplification"] < merge_all["amplification"] / 2
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_stratified_mergeout_benchmark(benchmark, tmp_path_factory):
    def cycle():
        return _run(tmp_path_factory.mktemp("bench"), "stratified")

    benchmark.pedantic(cycle, rounds=2, iterations=1)
