"""Setuptools entry point.

Kept alongside pyproject.toml so that ``pip install -e .`` works even
in offline environments where PEP 517 build isolation cannot download
build dependencies (pip falls back to the legacy setup.py path).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "A Python reproduction of the Vertica Analytic Database "
        "(C-Store 7 Years Later, VLDB 2012)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
